"""repro — scalable composable workflows in hyper-heterogeneous environments.

A from-scratch reproduction of the five systems presented in
*"Novel Approaches Toward Scalable Composable Workflows in
Hyper-Heterogeneous Computing Environments"* (SC-W / WORKS 2023):

- :mod:`repro.llm` — LLM-driven workflow composition (§2),
- :mod:`repro.cws` — the Common Workflow Scheduler Interface (§3),
- :mod:`repro.entk` / :mod:`repro.exaam` — the EnTK ensemble toolkit
  and the ExaAM UQ pipeline (§4),
- :mod:`repro.atlas` — the Transcriptomics Atlas pipeline (§5),
- :mod:`repro.jaws` — the JGI Analysis Workflow Service (§6),

all running on shared simulated substrates: :mod:`repro.simkernel`
(discrete events), :mod:`repro.cluster` (heterogeneous machines),
:mod:`repro.data` (storage/transfers), :mod:`repro.rm` (resource
managers), :mod:`repro.core` (workflow DAGs and futures),
:mod:`repro.engines` (WMS engines), and :mod:`repro.workloads`
(synthetic workflow generators).

See README.md for a map, DESIGN.md for the substitution rationale, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = [
    "atlas",
    "cluster",
    "core",
    "cws",
    "data",
    "engines",
    "entk",
    "exaam",
    "jaws",
    "llm",
    "rm",
    "simkernel",
    "viz",
    "workloads",
]
