"""The Fig 7 cloud architecture: SQS → ASG of EC2 instances → S3.

"Each SRR file is processed on a single EC2 instance from start to
finish of the pipeline.  We use Auto-Scaling Group in order to
automatically scale the number of instances.  The final results are
uploaded to an S3 bucket."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.atlas.records import PipelineRecord
from repro.atlas.steps import (
    EnvironmentProfile,
    cloud_profile,
    derive_stream,
    pipeline_steps,
    run_step_model,
    star_index_load_seconds,
)
from repro.atlas.workload import SraAccession
from repro.data.storage import StorageSite
from repro.simkernel import Environment, Interrupt, Store


@dataclass
class CloudRunResult:
    """Outcome of one cloud experiment."""

    records: list = field(default_factory=list)
    t_start: float = 0.0
    t_end: Optional[float] = None
    peak_instances: int = 0
    instance_hours: float = 0.0
    hourly_usd: float = 0.0
    spot_interruptions: int = 0
    done: object = None

    @property
    def cost_usd(self) -> float:
        """Fleet cost: instance-hours x the instance type's rate (the
        §5.2.1 cost-efficiency consideration behind picking c6a.large
        for Salmon vs a memory-optimized type for STAR)."""
        return self.instance_hours * self.hourly_usd

    def cost_per_file_usd(self) -> float:
        return self.cost_usd / len(self.records) if self.records else 0.0

    @property
    def makespan(self) -> Optional[float]:
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    @property
    def failures(self) -> int:
        return sum(1 for r in self.records if r.failed)


class CloudDeployment:
    """Auto-scaling EC2-like fleet consuming an SQS-like queue.

    Parameters
    ----------
    max_instances:
        ASG capacity ceiling.
    instance_boot_s:
        EC2 launch-to-ready latency (AMI boot).
    scale_check_s:
        ASG controller evaluation period.
    """

    def __init__(
        self,
        env: Environment,
        profile: Optional[EnvironmentProfile] = None,
        max_instances: int = 12,
        instance_boot_s: float = 60.0,
        scale_check_s: float = 30.0,
        upload_s: float = 3.0,
        pathway: str = "salmon",
        hourly_usd: Optional[float] = None,
        spot_mtbf_s: Optional[float] = None,
        preempt_schedule: Optional[list] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if max_instances < 1:
            raise ValueError("max_instances must be >= 1")
        if spot_mtbf_s is not None and spot_mtbf_s <= 0:
            raise ValueError("spot_mtbf_s must be positive")
        for t in preempt_schedule or ():
            if t < env.now:
                raise ValueError(
                    f"preemption time {t} is in the past (now={env.now})"
                )
        self.env = env
        self.profile = profile or cloud_profile()
        #: "salmon" (2 vCPU / 8 GiB instances) or "star" (memory-
        #: optimized instances holding the 90 GB index resident).
        self.steps = pipeline_steps(pathway)
        self.pathway = pathway
        #: On-demand hourly rate; defaults per pathway to the natural
        #: instance family (c6a.large-like vs x1e-like for STAR's RAM).
        self.hourly_usd = (
            hourly_usd
            if hourly_usd is not None
            else (0.0765 if pathway == "salmon" else 3.336)
        )
        self.max_instances = max_instances
        self.instance_boot_s = instance_boot_s
        self.scale_check_s = scale_check_s
        self.upload_s = upload_s
        #: Spot-market interruptions: mean time between reclaims per
        #: instance (None = on-demand, never reclaimed).  The SQS-based
        #: architecture makes reclaims cheap: the in-flight accession
        #: goes back on the queue and the ASG launches a replacement.
        self.spot_mtbf_s = spot_mtbf_s
        self.rng = rng or np.random.default_rng(0)
        # Root entropy for per-entity child streams (one construction-
        # time draw; see steps.derive_stream for why workers must not
        # share a sequentially-consumed generator).
        self._entropy = int(self.rng.integers(1 << 63))
        #: Result bucket (byte accounting only).
        self.bucket = StorageSite(env, "s3-results", egress_mbps=500, ingress_mbps=500)
        self._queue = Store(env)
        self._live_instances = 0
        self._next_instance = 0
        #: Live instance id -> kernel process (preemption targets).
        self._instances: dict = {}
        #: Scheduled preemptions actually delivered.
        self.preemptions = 0
        for t in preempt_schedule or ():
            env.process(self._scheduled_preemption(t), name=f"preempt@{t}")

    def run(self, workload: list) -> CloudRunResult:
        """Start processing ``workload``; returns a live result."""
        if not workload:
            raise ValueError("workload must be non-empty")
        result = CloudRunResult(t_start=self.env.now, hourly_usd=self.hourly_usd)
        result.done = self.env.event()
        self.env.process(self._drive(list(workload), result), name="cloud-driver")
        return result

    # -- internals --------------------------------------------------------------

    def _drive(self, workload: list, result: CloudRunResult):
        for acc in workload:
            yield self._queue.put(acc)
        remaining = {"n": len(workload)}
        finished = self.env.event()
        # ASG controller: scale out while the queue is deep.
        while remaining["n"] > 0:
            backlog = len(self._queue.items)
            want = min(self.max_instances, max(1, backlog))
            while self._live_instances < want:
                self._live_instances += 1
                result.peak_instances = max(
                    result.peak_instances, self._live_instances
                )
                iid = f"i-{self._next_instance:05d}"
                self._next_instance += 1
                self.env.process(
                    self._instance(iid, remaining, result, finished),
                    name=f"ec2:{iid}",
                )
            yield self.env.timeout(self.scale_check_s)
        if not finished.triggered:
            yield finished
        result.t_end = self.env.now
        result.done.succeed(result)

    def _instance(self, iid: str, remaining: dict, result: CloudRunResult, finished):
        boot_t = self.env.now
        reclaimer = None
        self._instances[iid] = self.env.active_process
        try:
            if self.spot_mtbf_s is not None:
                me = self.env.active_process
                reclaimer = self.env.process(
                    self._spot_reclaimer(me), name=f"spot:{iid}"
                )
            yield self.env.timeout(self.instance_boot_s)
            if self.pathway == "star":
                # Memory-optimized instance loads the genome index once
                # and keeps it resident across the files it processes.
                yield self.env.timeout(star_index_load_seconds(self.profile))
            while self._queue.items:
                acc: SraAccession = yield self._queue.get()
                file_span = self.env.tracer.start(
                    str(acc.accession),
                    category="atlas.file",
                    component="cloud",
                    tags={"worker": iid, "pathway": self.pathway},
                )
                try:
                    record = PipelineRecord(
                        accession=acc,
                        environment=self.profile.name,
                        t_start=self.env.now,
                        worker=iid,
                    )
                    file_rng = derive_stream(self._entropy, "file", acc.accession)
                    for step in self.steps:
                        sample = run_step_model(
                            step, acc.size_gb, self.profile, file_rng
                        )
                        step_span = self.env.tracer.start(
                            str(step),
                            category="atlas.step",
                            component="cloud",
                            parent=file_span,
                            tags={"file": str(acc.accession)},
                        )
                        yield self.env.timeout(sample.duration_s)
                        step_span.finish()
                        record.steps[step] = sample
                    # Upload results + metadata to S3 (Fig 7).
                    yield self.env.process(self.bucket.write(2_000_000))
                    yield self.env.timeout(self.upload_s)
                except Interrupt:
                    # Spot reclaim mid-file: the accession goes back on
                    # the queue for another instance; partial work lost.
                    file_span.tag(state="reclaimed").finish()
                    result.spot_interruptions += 1
                    self._queue.put(acc)
                    return
                record.t_end = self.env.now
                file_span.tag(state="completed").finish()
                result.records.append(record)
                remaining["n"] -= 1
                if remaining["n"] == 0 and not finished.triggered:
                    finished.succeed()
        except Interrupt:
            # Reclaimed while idle/booting: nothing in flight to requeue.
            result.spot_interruptions += 1
        finally:
            if reclaimer is not None and reclaimer.is_alive:
                reclaimer.interrupt()
            # Instance gone (drained or reclaimed): scale in + billing.
            self._instances.pop(iid, None)
            self._live_instances -= 1
            result.instance_hours += (self.env.now - boot_t) / 3600.0

    def _spot_reclaimer(self, instance_proc):
        iid = getattr(instance_proc, "name", "")
        rng = derive_stream(self._entropy, "spot", iid)
        try:
            yield self.env.timeout(float(rng.exponential(self.spot_mtbf_s)))
        except Interrupt:
            return  # instance finished first
        if instance_proc.is_alive:
            instance_proc.interrupt(cause="spot-reclaim")

    def _scheduled_preemption(self, t: float):
        """Deterministic capacity event: reclaim the lowest-id live
        instance at ``t`` (no-op if the fleet is empty)."""
        yield self.env.timeout(t - self.env.now)
        if not self._instances:
            return
        victim = self._instances[min(self._instances)]
        if victim.is_alive:
            self.preemptions += 1
            victim.interrupt(cause="preempt")
