"""Execution records shared by the cloud and HPC deployments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.atlas.workload import SraAccession


@dataclass
class PipelineRecord:
    """One accession's trip through the four pipeline steps."""

    accession: SraAccession
    environment: str
    steps: dict = field(default_factory=dict)  # step name -> StepSample
    t_start: Optional[float] = None
    t_end: Optional[float] = None
    worker: str = ""
    failed: bool = False

    @property
    def total_duration(self) -> Optional[float]:
        if self.t_start is None or self.t_end is None:
            return None
        return self.t_end - self.t_start

    def step_duration(self, step: str) -> float:
        return self.steps[step].duration_s

    def cpu_efficiency(self, cores: int = 2) -> float:
        """Duration-weighted CPU fraction across steps (job efficiency)."""
        total = sum(s.duration_s for s in self.steps.values())
        if total == 0:
            return 0.0
        busy = sum(s.duration_s * s.cpu_pct_mean / 100.0 for s in self.steps.values())
        return busy / total
