"""Synthetic SRA workload generation.

Stand-in for the NCBI corpus: the paper processes 99 SRA files in one
experiment, out of an 8.6 TB / 20-tissue atlas.  Sizes follow a
log-normal — the empirical shape of SRA archives — calibrated so the
per-step time distributions land in the Table 1/2 range (mean ≈ 0.9 GB,
long right tail to a few GB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class SraAccession:
    """One input dataset: accession id + archive size + tissue label."""

    accession: str
    size_gb: float
    tissue: str = "unknown"

    def __post_init__(self):
        if self.size_gb <= 0:
            raise ValueError("size_gb must be positive")


_TISSUES = (
    "liver", "brain", "heart", "kidney", "lung",
    "muscle", "skin", "spleen", "pancreas", "thyroid",
)


def make_workload(
    n_files: int = 99,
    mean_gb: float = 0.9,
    cv: float = 0.85,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> list:
    """Generate ``n_files`` accessions with log-normal sizes.

    ``cv`` (coefficient of variation) controls the tail: the paper's
    max/mean time ratios (~4-6x) need a heavy-ish tail.
    """
    if n_files < 1:
        raise ValueError("n_files must be >= 1")
    if mean_gb <= 0 or cv <= 0:
        raise ValueError("mean_gb and cv must be positive")
    rng = rng or np.random.default_rng(seed)
    sigma2 = np.log(1 + cv**2)
    mu = np.log(mean_gb) - sigma2 / 2
    sizes = rng.lognormal(mu, np.sqrt(sigma2), size=n_files)
    return [
        SraAccession(
            accession=f"SRR{10_000_000 + i}",
            size_gb=float(max(0.02, s)),
            tissue=_TISSUES[i % len(_TISSUES)],
        )
        for i, s in enumerate(sizes)
    ]
