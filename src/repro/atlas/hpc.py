"""HPC execution of the Salmon pipeline (§5.1 "Containerization for HPC").

"In order to execute several instances of Salmon Pipeline on HPC the
best approach is to containerize the pipeline and start multiple jobs
with the container."  One batch job per accession; Apptainer pulls and
translates the Docker image once, then each job pays a small container
start cost.  Scheduling granularity is a 2-core slot (SLURM shares
Ares nodes between jobs; we model each slot as a schedulable unit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.atlas.records import PipelineRecord
from repro.atlas.steps import (
    EnvironmentProfile,
    derive_stream,
    hpc_profile,
    pipeline_steps,
    run_step_model,
    star_index_load_seconds,
)
from repro.cluster import Cluster, NodeSpec
from repro.rm.base import Job, ResourceRequest
from repro.rm.batch import BatchScheduler
from repro.simkernel import Environment


@dataclass
class HpcRunResult:
    """Outcome of one HPC experiment."""

    records: list = field(default_factory=list)
    t_start: float = 0.0
    t_end: Optional[float] = None
    image_pull_s: float = 0.0
    done: object = None

    @property
    def makespan(self) -> Optional[float]:
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    def job_efficiency(self) -> float:
        """Mean CPU efficiency across jobs (the paper reports ~72%)."""
        if not self.records:
            return 0.0
        return float(
            np.mean([r.cpu_efficiency(cores=2) for r in self.records])
        )


class HpcDeployment:
    """Batch-scheduled containerized pipeline runs on an Ares-like cluster."""

    def __init__(
        self,
        env: Environment,
        profile: Optional[EnvironmentProfile] = None,
        slots: int = 24,
        container_start_s: float = 6.0,
        image_pull_s: float = 180.0,
        walltime_s: float = 6 * 3600.0,
        pathway: str = "salmon",
        rng: Optional[np.random.Generator] = None,
    ):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.env = env
        self.profile = profile or hpc_profile()
        #: "salmon" (2-core slots) or "star" (fat-node slots; the 90 GB
        #: index lives on SCRATCH and is loaded per job, §5.1).
        self.steps = pipeline_steps(pathway)
        self.pathway = pathway
        self.container_start_s = container_start_s
        self.image_pull_s = image_pull_s
        self.walltime_s = walltime_s
        self.rng = rng or np.random.default_rng(0)
        # Root entropy for per-file child streams (one construction-
        # time draw; see steps.derive_stream for why jobs must not
        # share a sequentially-consumed generator).
        self._entropy = int(self.rng.integers(1 << 63))
        # Each 2-core slot is one schedulable unit on the shared cluster.
        self.cluster = Cluster(
            env,
            name="ares",
            pools=[(NodeSpec("ares-slot", cores=2, memory_gb=8.0), slots)],
        )
        self.batch = BatchScheduler(env, self.cluster, backfill=True)

    def run(self, workload: list) -> HpcRunResult:
        if not workload:
            raise ValueError("workload must be non-empty")
        result = HpcRunResult(t_start=self.env.now, image_pull_s=self.image_pull_s)
        result.done = self.env.event()
        self.env.process(self._drive(list(workload), result), name="hpc-driver")
        return result

    def _drive(self, workload: list, result: HpcRunResult):
        # One-time Apptainer pull + .sif translation on the login node.
        yield self.env.timeout(self.image_pull_s)
        jobs = []
        for acc in workload:
            record = PipelineRecord(accession=acc, environment=self.profile.name)
            result.records.append(record)
            job = Job(
                request=ResourceRequest(
                    nodes=1, cores_per_node=2, memory_gb_per_node=8.0,
                    walltime_s=self.walltime_s,
                ),
                work=self._job_work(acc, record),
                name=f"salmon-{acc.accession}",
                user="atlas",
            )
            self.batch.submit(job)
            jobs.append(job)
        yield self.env.all_of([j.completion for j in jobs])
        from repro.rm.base import JobState

        for job, record in zip(jobs, result.records):
            if job.state != JobState.COMPLETED:
                record.failed = True
        result.t_end = self.env.now
        result.done.succeed(result)

    def _job_work(self, acc, record: PipelineRecord):
        def work(env, job, nodes):
            record.t_start = env.now
            record.worker = nodes[0].id
            file_span = env.tracer.start(
                str(acc.accession),
                category="atlas.file",
                component="hpc",
                tags={"worker": nodes[0].id, "pathway": self.pathway},
            )
            yield env.timeout(self.container_start_s)
            if self.pathway == "star":
                # Index mounted from SCRATCH, loaded into RAM per job.
                yield env.timeout(star_index_load_seconds(self.profile))
            file_rng = derive_stream(self._entropy, "file", acc.accession)
            for step in self.steps:
                sample = run_step_model(step, acc.size_gb, self.profile, file_rng)
                step_span = env.tracer.start(
                    str(step),
                    category="atlas.step",
                    component="hpc",
                    parent=file_span,
                    tags={"file": str(acc.accession)},
                )
                yield env.timeout(sample.duration_s)
                step_span.finish()
                record.steps[step] = sample
            record.t_end = env.now
            file_span.tag(state="completed").finish()

        return work
