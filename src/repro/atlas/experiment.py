"""Experiment drivers regenerating Table 1 and Table 2.

Table 1 — "Aggregated instance-wide metrics during execution of each
pipeline step": per-step mean/max of CPU usage, CPU iowait and memory
over all processed files (cloud run).

Table 2 — "Performance comparison between Cloud and HPC.  Calculated
as an average of relative difference in execution time": per-step
mean/max execution times in both environments and the per-file-averaged
relative difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.atlas.cloud import CloudDeployment
from repro.atlas.hpc import HpcDeployment
from repro.atlas.steps import PIPELINE_STEPS
from repro.atlas.workload import make_workload
from repro.simkernel import Environment


@dataclass(frozen=True)
class Table1Row:
    """One pipeline step's aggregated instance metrics."""

    step: str
    cpu_mean_pct: float
    cpu_max_pct: float
    iowait_mean_pct: float
    iowait_max_pct: float
    mem_mean_mb: float
    mem_max_mb: float

    def format(self) -> str:
        return (
            f"{self.step:<13} CPU {self.cpu_mean_pct:5.1f}%/{self.cpu_max_pct:5.1f}%  "
            f"iowait {self.iowait_mean_pct:5.1f}%/{self.iowait_max_pct:5.1f}%  "
            f"mem {self.mem_mean_mb:7.0f}MB/{self.mem_max_mb:7.0f}MB"
        )


@dataclass(frozen=True)
class Table2Row:
    """One step's cloud vs HPC execution-time comparison."""

    step: str
    cloud_mean_s: float
    cloud_max_s: float
    hpc_mean_s: float
    hpc_max_s: float
    #: Mean over files of (hpc - cloud) / cloud; positive = HPC slower.
    hpc_relative_diff: float

    @property
    def verdict(self) -> str:
        if abs(self.hpc_relative_diff) < 0.05:
            return "No difference"
        if self.hpc_relative_diff > 0:
            return f"{self.hpc_relative_diff * 100:.0f}% slower"
        return f"{-self.hpc_relative_diff * 100:.0f}% faster"

    def format(self) -> str:
        return (
            f"{self.step:<13} cloud {self.cloud_mean_s / 60:5.1f}/{self.cloud_max_s / 60:5.1f} min  "
            f"hpc {self.hpc_mean_s / 60:5.1f}/{self.hpc_max_s / 60:5.1f} min  "
            f"HPC {self.verdict}"
        )


def run_experiment(
    environment: str,
    n_files: int = 99,
    seed: int = 0,
    max_instances: int = 12,
    slots: int = 24,
    pathway: str = "salmon",
    env: Optional[Environment] = None,
):
    """Run the full pipeline over a synthetic corpus in one environment.

    ``environment`` is ``"cloud"``, ``"hpc"``, or ``"hybrid"`` (the
    §5.3 split-workload architecture); ``pathway`` selects the Salmon
    or STAR path.  Returns the deployment result.  The same seed
    produces the same workload everywhere, so Table 2's per-file
    comparison is apples to apples.  Pass ``env`` (e.g. with tracing
    enabled) to observe the run; by default a fresh environment is
    created.
    """
    workload = make_workload(n_files=n_files, seed=seed)
    env = env if env is not None else Environment()
    rng = np.random.default_rng(seed + 1)
    if environment == "cloud":
        deployment = CloudDeployment(
            env, max_instances=max_instances, pathway=pathway, rng=rng
        )
    elif environment == "hpc":
        deployment = HpcDeployment(env, slots=slots, pathway=pathway, rng=rng)
    elif environment == "hybrid":
        from repro.atlas.hybrid import HybridDeployment

        deployment = HybridDeployment(
            env,
            CloudDeployment(
                env, max_instances=max_instances, pathway=pathway, rng=rng
            ),
            HpcDeployment(
                env, slots=slots, pathway=pathway,
                rng=np.random.default_rng(seed + 2),
            ),
        )
    else:
        raise ValueError("environment must be 'cloud', 'hpc', or 'hybrid'")
    result = deployment.run(workload)
    env.run(until=result.done)
    return result


def table1(records: list) -> list:
    """Aggregate per-step instance metrics over all pipeline records."""
    if not records:
        raise ValueError("no records")
    rows = []
    # Step order comes from the records themselves (insertion-ordered),
    # so Salmon- and STAR-pathway runs both render correctly.
    steps = list(records[0].steps)
    for step in steps:
        samples = [r.steps[step] for r in records if step in r.steps]
        if not samples:
            continue
        rows.append(
            Table1Row(
                step=step,
                cpu_mean_pct=float(np.mean([s.cpu_pct_mean for s in samples])),
                cpu_max_pct=float(np.max([s.cpu_pct_max for s in samples])),
                iowait_mean_pct=float(np.mean([s.iowait_pct_mean for s in samples])),
                iowait_max_pct=float(np.max([s.iowait_pct_max for s in samples])),
                mem_mean_mb=float(np.mean([s.mem_mb_mean for s in samples])),
                mem_max_mb=float(np.max([s.mem_mb_max for s in samples])),
            )
        )
    return rows


def compare_cloud_hpc(cloud_records: list, hpc_records: list) -> list:
    """Per-step Table 2 comparison.

    Records are matched by accession id; the relative difference is
    averaged per file, exactly as the table caption specifies.
    """
    cloud_by_acc = {r.accession.accession: r for r in cloud_records}
    hpc_by_acc = {r.accession.accession: r for r in hpc_records}
    common = sorted(set(cloud_by_acc) & set(hpc_by_acc))
    if not common:
        raise ValueError("no common accessions between the two runs")
    rows = []
    for step in list(cloud_by_acc[common[0]].steps):
        cloud_t = np.array([cloud_by_acc[a].step_duration(step) for a in common])
        hpc_t = np.array([hpc_by_acc[a].step_duration(step) for a in common])
        rel = (hpc_t - cloud_t) / cloud_t
        rows.append(
            Table2Row(
                step=step,
                cloud_mean_s=float(cloud_t.mean()),
                cloud_max_s=float(cloud_t.max()),
                hpc_mean_s=float(hpc_t.mean()),
                hpc_max_s=float(hpc_t.max()),
                hpc_relative_diff=float(rel.mean()),
            )
        )
    return rows
