"""Hybrid cloud + HPC execution (§5.3 future work).

"Interesting architecture may be obtained with hybrid approach where
we split the workload among HPC and Cloud."

:class:`HybridDeployment` partitions a workload across a cloud fleet
and an HPC allocation and runs both sides concurrently.  Two policies:

- ``"balance"`` — longest-processing-time-first assignment against
  each backend's estimated per-file cost and parallel capacity
  (classic makespan-balancing heuristic),
- ``"size"`` — small files to the cloud (its S3-internal prefetch
  dominates small-file time), large files to HPC (its faster cores
  dominate large-file time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.atlas.cloud import CloudDeployment
from repro.atlas.hpc import HpcDeployment
from repro.atlas.steps import pipeline_steps, step_components
from repro.simkernel import Environment


@dataclass
class HybridRunResult:
    """Combined outcome: both sides' records plus the split."""

    cloud_result: object = None
    hpc_result: object = None
    cloud_share: int = 0
    hpc_share: int = 0
    done: object = None

    @property
    def records(self) -> list:
        return list(self.cloud_result.records) + list(self.hpc_result.records)

    @property
    def makespan(self) -> Optional[float]:
        ends = [
            r.t_end for r in (self.cloud_result, self.hpc_result) if r.t_end
        ]
        starts = [
            r.t_start for r in (self.cloud_result, self.hpc_result)
        ]
        if not ends:
            return None
        return max(ends) - min(starts)


class HybridDeployment:
    """Route each accession to the cloud or the HPC backend."""

    def __init__(
        self,
        env: Environment,
        cloud: CloudDeployment,
        hpc: HpcDeployment,
        policy: str = "balance",
    ):
        if policy not in ("balance", "size"):
            raise ValueError(f"Unknown policy {policy!r}")
        if cloud.pathway != hpc.pathway:
            raise ValueError("Both backends must run the same pathway")
        self.env = env
        self.cloud = cloud
        self.hpc = hpc
        self.policy = policy

    # -- cost estimation -------------------------------------------------------

    def _estimate(self, deployment, size_gb: float) -> float:
        """Deterministic per-file seconds on a backend (no noise)."""
        steps = pipeline_steps(deployment.pathway)
        return sum(
            sum(step_components(step, size_gb, deployment.profile))
            for step in steps
        )

    def partition(self, workload: list) -> tuple:
        """Split the workload; returns (cloud_files, hpc_files)."""
        if self.policy == "size":
            ordered = sorted(workload, key=lambda a: a.size_gb)
            cut = len(ordered) // 2
            return ordered[:cut], ordered[cut:]
        # balance: LPT against capacity-weighted estimated load.
        cloud_cap = self.cloud.max_instances
        hpc_cap = len(self.hpc.cluster.nodes)
        loads = {"cloud": 0.0, "hpc": 0.0}
        split = {"cloud": [], "hpc": []}
        for acc in sorted(workload, key=lambda a: -a.size_gb):
            cost = {
                "cloud": self._estimate(self.cloud, acc.size_gb) / cloud_cap,
                "hpc": self._estimate(self.hpc, acc.size_gb) / hpc_cap,
            }
            target = min(
                ("cloud", "hpc"),
                key=lambda side: loads[side] + cost[side],
            )
            loads[target] += cost[target]
            split[target].append(acc)
        return split["cloud"], split["hpc"]

    # -- execution ----------------------------------------------------------------

    def run(self, workload: list) -> HybridRunResult:
        if not workload:
            raise ValueError("workload must be non-empty")
        cloud_files, hpc_files = self.partition(list(workload))
        result = HybridRunResult(
            cloud_share=len(cloud_files), hpc_share=len(hpc_files)
        )
        result.done = self.env.event()
        self.env.process(
            self._drive(cloud_files, hpc_files, result), name="hybrid-driver"
        )
        return result

    def _drive(self, cloud_files, hpc_files, result: HybridRunResult):
        waits = []
        if cloud_files:
            result.cloud_result = self.cloud.run(cloud_files)
            waits.append(result.cloud_result.done)
        else:
            result.cloud_result = _EmptyResult(self.env.now)
        if hpc_files:
            result.hpc_result = self.hpc.run(hpc_files)
            waits.append(result.hpc_result.done)
        else:
            result.hpc_result = _EmptyResult(self.env.now)
        if waits:
            yield self.env.all_of(waits)
        result.done.succeed(result)


@dataclass
class _EmptyResult:
    t_start: float
    t_end: Optional[float] = None
    records: list = field(default_factory=list)

    def __post_init__(self):
        self.t_end = self.t_start
