"""Pipeline step models and reference algorithms.

Each step is decomposed into **network**, **IO**, and **CPU** seconds
as a function of the input ``.sra`` size and an
:class:`EnvironmentProfile`.  Observable metrics follow:

- duration = net + io + cpu (serial phases within a step),
- CPU% ≈ cpu / duration (compute fraction of the instance),
- iowait% ≈ io / duration (what procstat reports as iowait),
- memory = base + slope × size (tool working sets).

The environment profiles encode the §5.2 findings: the cloud downloads
straight from S3 over the AWS backbone ("report-cloud-instance-
identity"), so prefetch is much faster there, while the HPC cluster
has faster scratch IO and slightly faster cores (fasterq-dump 30%,
Salmon 19% faster).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

#: Pipeline step names in execution order (the Salmon pathway, §5.1).
PIPELINE_STEPS = ("prefetch", "fasterq_dump", "salmon", "deseq2")

#: The STAR pathway (§5.3, the paper's named future work): full
#: alignment instead of pseudo-alignment — slower, far more memory
#: (the 90 GB whole-genome index must sit in RAM), but enables splice-
#: variant analysis.
PIPELINE_STEPS_STAR = ("prefetch", "fasterq_dump", "star", "deseq2")


def pipeline_steps(pathway: str = "salmon") -> tuple:
    """Step sequence for a pathway (``"salmon"`` or ``"star"``)."""
    if pathway == "salmon":
        return PIPELINE_STEPS
    if pathway == "star":
        return PIPELINE_STEPS_STAR
    raise ValueError(f"Unknown pathway {pathway!r}")


@dataclass(frozen=True)
class EnvironmentProfile:
    """Execution-environment parameters for the step models."""

    name: str
    #: .sra download bandwidth in MB/s (S3-backbone vs public internet).
    prefetch_bw_mbps: float
    #: Storage streaming bandwidth for fastq conversion (EBS vs scratch).
    fastq_io_mbps: float
    #: Relative CPU speed (1.0 = the cloud c6a baseline).
    cpu_speed: float
    #: Fixed per-operation latencies.
    request_latency_s: float = 2.0
    #: Expansion factor .sra -> .fastq bytes written + read.
    fastq_expand: float = 3.0
    #: Salmon CPU seconds per input GB at speed 1.0 (2-core instance).
    salmon_cpu_s_per_gb: float = 620.0
    #: DESeq2 CPU seconds (size-independent: counts, not reads).
    deseq2_cpu_s: float = 9.0
    #: STAR alignment CPU seconds per input GB at speed 1.0 — full
    #: alignment is several times costlier than pseudo-alignment.
    star_cpu_s_per_gb: float = 2100.0
    #: STAR whole-genome index size ("much bigger - 90GB").
    star_index_gb: float = 90.0


def cloud_profile() -> EnvironmentProfile:
    """EC2 c6a-like instance: 2 vCPU, 8 GiB, EBS, S3-internal download."""
    return EnvironmentProfile(
        name="cloud",
        prefetch_bw_mbps=28.0,
        fastq_io_mbps=95.0,
        cpu_speed=1.0,
    )


def hpc_profile() -> EnvironmentProfile:
    """Ares-like cluster node share: faster cores and scratch, but .sra
    downloads cross the public internet."""
    return EnvironmentProfile(
        name="hpc",
        prefetch_bw_mbps=28.0 / 1.87,  # ~87% slower prefetch on average
        fastq_io_mbps=136.0,           # scratch beats EBS (~30% on the step)
        cpu_speed=1.19,               # Salmon ~19% faster
        # DESeq2 is single-threaded R; the faster cores don't help it
        # (Table 2: "No difference").  10.7 / 1.19 ≈ the cloud's 9 s.
        deseq2_cpu_s=10.7,
    )


@dataclass(frozen=True)
class StepSample:
    """One executed step's observables (a procstat aggregate)."""

    step: str
    duration_s: float
    cpu_pct_mean: float
    cpu_pct_max: float
    iowait_pct_mean: float
    iowait_pct_max: float
    mem_mb_mean: float
    mem_mb_max: float

    def __post_init__(self):
        if self.duration_s < 0:
            raise ValueError("duration must be >= 0")


#: Memory model per step: (base MB, MB per input GB, burst factor).
#: Working sets saturate (indexes and buffers are bounded), so the
#: size term is capped at _MEM_SAT_GB.
_MEMORY_MODEL = {
    "prefetch": (310.0, 15.0, 1.15),
    "fasterq_dump": (350.0, 55.0, 1.5),
    "salmon": (560.0, 330.0, 2.2),
    # STAR holds the 90 GB genome index resident plus per-file buffers:
    # "requires significant amount (over 250GB) of RAM" (§5.1).
    "star": (262_000.0, 3_000.0, 1.05),
    "deseq2": (480.0, 60.0, 1.6),
}
_MEM_SAT_GB = 2.0

#: CPU burstiness: peak = min(100, mean * factor).
_CPU_BURST = {"prefetch": 3.2, "fasterq_dump": 1.7, "salmon": 1.07, "star": 1.05, "deseq2": 1.5}
_IOWAIT_BURST = {"prefetch": 12.0, "fasterq_dump": 3.5, "salmon": 50.0, "star": 30.0, "deseq2": 13.0}

#: Instance-wide scaling of the raw phase fractions.  CPU: how many of
#: the instance's 2 vCPUs the step can use (DESeq2 is single-threaded
#: R; prefetch overlaps checksum threads with the download).  iowait:
#: how much of the IO phase overlaps with compute (fasterq-dump
#: interleaves decompression with writes).
_CPU_SCALE = {"prefetch": 1.4, "fasterq_dump": 1.0, "salmon": 0.96, "star": 0.97, "deseq2": 0.42}
_IOWAIT_SCALE = {"prefetch": 0.8, "fasterq_dump": 0.56, "salmon": 1.0, "star": 1.0, "deseq2": 1.0}


def step_components(
    step: str, size_gb: float, profile: EnvironmentProfile
) -> tuple:
    """(net_s, io_s, cpu_s) phase durations for a step on one file."""
    if size_gb < 0:
        raise ValueError("size_gb must be >= 0")
    lat = profile.request_latency_s
    if step == "prefetch":
        net = lat + size_gb * 1000.0 / profile.prefetch_bw_mbps
        io = 0.045 * net         # writing the download to disk
        cpu = 0.18 * net         # checksumming / protocol handling
        return net, io, cpu
    if step == "fasterq_dump":
        io = lat + size_gb * profile.fastq_expand * 1000.0 / profile.fastq_io_mbps
        cpu = 1.15 * io          # decompression dominates, interleaved
        return 0.0, io, cpu
    if step == "salmon":
        cpu = lat + size_gb * profile.salmon_cpu_s_per_gb / profile.cpu_speed
        io = 0.016 * cpu         # index load + writing quant.sf
        return 0.0, io, cpu
    if step == "star":
        # Index already resident (loading is a per-worker one-time cost,
        # see the deployments); alignment is CPU-bound on all cores.
        cpu = lat + size_gb * profile.star_cpu_s_per_gb / profile.cpu_speed
        io = 0.02 * cpu          # reading fastq + writing the BAM
        return 0.0, io, cpu
    if step == "deseq2":
        cpu = profile.deseq2_cpu_s / profile.cpu_speed
        io = 0.035 * cpu
        return 0.0, io, cpu
    raise KeyError(f"Unknown step {step!r}")


def star_index_load_seconds(profile: EnvironmentProfile) -> float:
    """One-time per-worker cost of loading the 90 GB STAR index into
    memory (streamed from EBS on the cloud, from SCRATCH on HPC)."""
    return profile.star_index_gb * 1000.0 / profile.fastq_io_mbps


def derive_stream(entropy: int, *key_parts) -> np.random.Generator:
    """Derive an independent child RNG stream keyed by ``key_parts``.

    Concurrent workers used to draw step samples straight off one
    shared generator, which hands out draws in dispatch order: two
    workers picking up files at the same simulated instant swap their
    durations if the same-instant batch is permuted (found by the
    simsan permutation checker, ``python -m repro.sanitizer``).  A
    stream keyed by the entity it models — the accession, the instance
    id — makes every draw a function of that entity alone, so batch
    order cannot reassign randomness.
    """
    keys = [zlib.crc32(str(p).encode("utf-8")) for p in key_parts]
    return np.random.default_rng([entropy, *keys])


def run_step_model(
    step: str,
    size_gb: float,
    profile: EnvironmentProfile,
    rng: Optional[np.random.Generator] = None,
) -> StepSample:
    """Sample the observables for one step execution."""
    rng = rng or np.random.default_rng(0)
    net, io, cpu = step_components(step, size_gb, profile)
    noise = float(rng.lognormal(0, 0.12))
    duration = (net + io + cpu) * noise
    busy = net + io + cpu
    cpu_mean = min(100.0, 100.0 * cpu / busy * _CPU_SCALE[step])
    iowait_mean = min(100.0, 100.0 * io / busy * _IOWAIT_SCALE[step])
    # procstat-style within-step bursts.
    cpu_max = min(100.0, cpu_mean * _CPU_BURST[step] * float(rng.uniform(0.9, 1.1)))
    iowait_max = min(
        100.0, iowait_mean * _IOWAIT_BURST[step] * float(rng.uniform(0.8, 1.2))
    )
    base, slope, burst = _MEMORY_MODEL[step]
    mem_mean = (base + slope * min(size_gb, _MEM_SAT_GB)) * float(
        rng.uniform(0.95, 1.05)
    )
    mem_max = mem_mean * burst * float(rng.uniform(0.9, 1.1))
    return StepSample(
        step=step,
        duration_s=duration,
        cpu_pct_mean=cpu_mean,
        cpu_pct_max=cpu_max,
        iowait_pct_mean=iowait_mean,
        iowait_pct_max=iowait_max,
        mem_mb_mean=mem_mean,
        mem_mb_max=mem_max,
    )


# -- real reference algorithms -------------------------------------------------------


def pseudo_align(reads: list, index: dict, k: int = 8) -> dict:
    """Tiny Salmon-style pseudo-aligner: k-mer voting.

    ``index`` maps transcript name → sequence.  Each read votes for the
    transcripts sharing the most k-mers with it; ties split the count
    equally (Salmon's equivalence-class idea at toy scale).  Returns
    transcript → float count.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    kmer_index: dict[str, set] = {}
    for tname, seq in index.items():
        for i in range(max(0, len(seq) - k + 1)):
            kmer_index.setdefault(seq[i : i + k], set()).add(tname)
    counts = {t: 0.0 for t in index}
    for read in reads:
        votes: dict[str, int] = {}
        for i in range(max(0, len(read) - k + 1)):
            for t in kmer_index.get(read[i : i + k], ()):
                votes[t] = votes.get(t, 0) + 1
        if not votes:
            continue
        top = max(votes.values())
        winners = [t for t, v in votes.items() if v == top]
        for t in winners:
            counts[t] += 1.0 / len(winners)
    return counts


def median_of_ratios(counts: np.ndarray) -> tuple:
    """DESeq2 size-factor normalization (median-of-ratios).

    ``counts`` is genes × samples.  Size factor of sample j = median
    over genes of ``counts[g, j] / geometric_mean(counts[g, :])``,
    using only genes expressed in every sample.  Returns
    ``(size_factors, normalized_counts)``.
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 2:
        raise ValueError("counts must be 2-D (genes x samples)")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    expressed = (counts > 0).all(axis=1)
    if not expressed.any():
        raise ValueError("no gene is expressed in every sample")
    sub = counts[expressed]
    log_geo_mean = np.mean(np.log(sub), axis=1, keepdims=True)
    ratios = np.log(sub) - log_geo_mean
    size_factors = np.exp(np.median(ratios, axis=0))
    return size_factors, counts / size_factors
