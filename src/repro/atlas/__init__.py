"""Transcriptomics Atlas pipeline (§5): Salmon path, cloud vs HPC.

The pipeline per SRA accession: ``prefetch`` (download .sra) →
``fasterq-dump`` (convert to .fastq) → ``salmon`` (pseudo-alignment +
quantification) → ``DESeq2`` (count normalization).  This package
reproduces the §5 evaluation:

- :mod:`repro.atlas.steps` — per-step resource models decomposed into
  network/IO/CPU components (so Table 1's CPU%, iowait% and memory
  profiles *emerge* from the model rather than being pasted in), plus
  small real reference algorithms: a k-mer pseudo-aligner and DESeq2's
  median-of-ratios normalization.
- :mod:`repro.atlas.workload` — synthetic SRA accession generator with
  a log-normal size distribution calibrated to the paper's corpus.
- :mod:`repro.atlas.cloud` — the Fig 7 architecture: SQS-like work
  queue, auto-scaling group of EC2-like instances, S3 result bucket,
  CloudWatch-like metric collection.
- :mod:`repro.atlas.hpc` — the Ares-like execution: Apptainer container
  overhead, batch jobs through :class:`repro.rm.BatchScheduler`.
- :mod:`repro.atlas.experiment` — drivers that regenerate Table 1 and
  Table 2.
"""

from repro.atlas.steps import (
    EnvironmentProfile,
    PIPELINE_STEPS,
    PIPELINE_STEPS_STAR,
    StepSample,
    cloud_profile,
    hpc_profile,
    median_of_ratios,
    pipeline_steps,
    pseudo_align,
    run_step_model,
    star_index_load_seconds,
)
from repro.atlas.workload import SraAccession, make_workload
from repro.atlas.cloud import CloudDeployment
from repro.atlas.hpc import HpcDeployment
from repro.atlas.hybrid import HybridDeployment, HybridRunResult
from repro.atlas.experiment import (
    Table1Row,
    Table2Row,
    compare_cloud_hpc,
    run_experiment,
    table1,
)

__all__ = [
    "CloudDeployment",
    "EnvironmentProfile",
    "HpcDeployment",
    "HybridDeployment",
    "HybridRunResult",
    "PIPELINE_STEPS",
    "PIPELINE_STEPS_STAR",
    "pipeline_steps",
    "star_index_load_seconds",
    "SraAccession",
    "StepSample",
    "Table1Row",
    "Table2Row",
    "cloud_profile",
    "compare_cloud_hpc",
    "hpc_profile",
    "make_workload",
    "median_of_ratios",
    "pseudo_align",
    "run_experiment",
    "run_step_model",
    "table1",
]
