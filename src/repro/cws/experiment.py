"""The E1 experiment: workflow-aware scheduling vs the FIFO baseline.

"Prototype implementations show that the CWSI can reduce makespan up
to 25% with simple workflow-aware strategies [...] by implementing the
CWSI alongside basic scheduling approaches like rank and file size, we
achieve an average runtime reduction of 10.8%."

The driver runs each workflow of a mix through the Nextflow-like
engine on a heterogeneous Kubernetes-like cluster, once per strategy,
and reports per-workflow makespans and reductions relative to FIFO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.cluster import Cluster, NodeSpec
from repro.core.workflow import Workflow
from repro.cws.interface import CWSI
from repro.engines import NextflowLikeEngine
from repro.rm.kube import KubeScheduler
from repro.simkernel import Environment
from repro.workloads import workflow_mix

#: The heterogeneous testbed: three node classes, ~2.6x speed spread,
#: deliberately small so ready tasks outnumber slots (contention is
#: what scheduling policy acts on).
DEFAULT_POOLS = (
    (NodeSpec("small", cores=4, memory_gb=32, speed=1.0), 2),
    (NodeSpec("mid", cores=8, memory_gb=64, speed=1.1), 2),
    (NodeSpec("big", cores=8, memory_gb=128, speed=1.3), 1),
)

STRATEGIES = ("fifo", "rank", "filesize", "heft")


@dataclass(frozen=True)
class StrategyRow:
    """Makespans of one workflow under every strategy."""

    workflow: str
    makespans: tuple  # aligned with the strategies tuple passed in
    strategies: tuple

    def makespan(self, strategy: str) -> float:
        return self.makespans[self.strategies.index(strategy)]

    def reduction(self, strategy: str, baseline: str = "fifo") -> float:
        base = self.makespan(baseline)
        return 1.0 - self.makespan(strategy) / base if base else 0.0


def run_workflow_once(
    workflow: Workflow,
    strategy: str,
    pools: Sequence = DEFAULT_POOLS,
    env: Optional[Environment] = None,
) -> float:
    """Execute one workflow under one strategy; returns its makespan.

    Pass a pre-built ``env`` (e.g. one with tracing enabled via
    :func:`repro.obs.enable_tracing`) to observe the run; by default a
    fresh, untraced environment is used per call so grid sweeps stay
    independent.
    """
    env = env if env is not None else Environment()
    cluster = Cluster(env, pools=list(pools))
    scheduler = KubeScheduler(env, cluster)
    cwsi = CWSI(env, scheduler, strategy=strategy)
    engine = NextflowLikeEngine(env, scheduler, cwsi=cwsi)
    run = engine.run(workflow)
    env.run(until=run.done)
    if not run.succeeded:
        raise RuntimeError(f"{workflow.name} failed under {strategy}: {run.stats}")
    return run.makespan


def makespan_experiment(
    seeds: Sequence[int] = (0, 1, 2),
    strategies: Sequence[str] = STRATEGIES,
    pools: Sequence = DEFAULT_POOLS,
    mix_factory: Optional[Callable] = None,
) -> list:
    """Run the workflow mix × strategies × seeds grid.

    Returns one :class:`StrategyRow` per (workflow, seed).
    """
    mix_factory = mix_factory or workflow_mix
    rows = []
    for seed in seeds:
        for wf in mix_factory(seed=seed):
            makespans = tuple(
                run_workflow_once(wf, strategy, pools) for strategy in strategies
            )
            rows.append(
                StrategyRow(
                    workflow=f"{wf.name}@{seed}",
                    makespans=makespans,
                    strategies=tuple(strategies),
                )
            )
    return rows


def summarize(rows: list, baseline: str = "fifo") -> dict:
    """Aggregate reductions per strategy: mean, max, per-workflow table."""
    if not rows:
        raise ValueError("no rows")
    strategies = rows[0].strategies
    summary: dict = {"baseline": baseline, "per_strategy": {}}
    for strategy in strategies:
        if strategy == baseline:
            continue
        reductions = np.array([r.reduction(strategy, baseline) for r in rows])
        summary["per_strategy"][strategy] = {
            "mean_reduction": float(reductions.mean()),
            "max_reduction": float(reductions.max()),
            "min_reduction": float(reductions.min()),
            "wins": int((reductions > 0).sum()),
            "n": len(reductions),
        }
    return summary
