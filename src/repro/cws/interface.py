"""The Common Workflow Scheduler Interface itself.

One :class:`CWSI` instance binds to one resource manager (a
:class:`~repro.rm.kube.KubeScheduler`), installs a workflow-aware
strategy, and exposes the three calls WMS engines make:

- :meth:`CWSI.register_workflow` — hand over the DAG.
- :meth:`CWSI.task_submitted` — a ready task entered the RM queue.
- :meth:`CWSI.task_finished` — a task reached a terminal state; the
  CWSI records provenance and updates predictors.

"A resource manager has to implement the CWS with its interface once.
Conversely, a workflow engine needs to implement support for CWSI to
work with all resource managers already offering CWSI."
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cws.predictors import LotaruLikePredictor, MemoryPredictor
from repro.cws.provenance import ProvenanceStore, TaskTrace
from repro.cws.store import WorkflowStore
from repro.cws.strategies import (
    FileSizeStrategy,
    PredictiveHeftStrategy,
    RankStrategy,
)
from repro.core.workflow import Workflow
from repro.rm.base import JobState
from repro.rm.kube import KubeScheduler, Pod, SchedulingStrategy, FifoStrategy
from repro.simkernel import Environment


class CWSI:
    """Workflow-aware front door of a resource manager.

    Parameters
    ----------
    env, scheduler:
        The environment and the resource manager to make workflow-aware.
    strategy:
        ``"fifo"`` (baseline), ``"rank"``, ``"filesize"``, ``"heft"``,
        or any :class:`SchedulingStrategy` instance.
    place_fastest:
        For rank/filesize: also steer prioritized tasks onto the
        fastest fitting nodes.
    """

    def __init__(
        self,
        env: Environment,
        scheduler: KubeScheduler,
        strategy: Union[str, SchedulingStrategy] = "rank",
        place_fastest: bool = True,
    ):
        self.env = env
        self.scheduler = scheduler
        self.store = WorkflowStore()
        self.provenance = ProvenanceStore()
        self.runtime_predictor = LotaruLikePredictor()
        self.memory_predictor = MemoryPredictor()
        self.strategy = self._build_strategy(strategy, place_fastest)
        scheduler.set_strategy(self.strategy)

    def _build_strategy(
        self, strategy: Union[str, SchedulingStrategy], place_fastest: bool
    ) -> SchedulingStrategy:
        if isinstance(strategy, SchedulingStrategy):
            return strategy
        if strategy == "fifo":
            return FifoStrategy()
        if strategy == "rank":
            return RankStrategy(self.store, place_fastest=place_fastest)
        if strategy == "filesize":
            return FileSizeStrategy(self.store, place_fastest=place_fastest)
        if strategy == "heft":
            return PredictiveHeftStrategy(self.store, self.runtime_predictor)
        if strategy == "locality":
            from repro.cws.locality import DataLocalityStrategy

            return DataLocalityStrategy(self.store)
        if strategy == "fifo-staging":
            from repro.cws.locality import StagingAwareFifo

            return StagingAwareFifo(self.store)
        raise ValueError(f"Unknown strategy {strategy!r}")

    # -- the interface proper ------------------------------------------------

    def register_workflow(self, workflow: Workflow) -> None:
        """Receive a workflow graph from a WMS."""
        workflow.validate()
        self.store.register(workflow, now=self.env.now)

    def task_submitted(self, workflow_name: str, task_name: str, pod: Pod) -> None:
        """A ready task entered the queue; enrich its labels.

        Input sizes are attached so strategies need no store round-trip
        per scheduling cycle.
        """
        if workflow_name not in self.store:
            raise KeyError(
                f"Workflow {workflow_name!r} was never registered via CWSI"
            )
        pod.labels.setdefault("workflow", workflow_name)
        pod.labels.setdefault("task", task_name)
        pod.labels["input_bytes"] = self.store.input_bytes_of(
            workflow_name, task_name
        )

    def task_finished(self, workflow_name: str, task_name: str, pod: Pod) -> None:
        """Record a terminal task: provenance + predictor updates.

        The memory predictor learns the *observed peak* (what the
        monitoring agent reports, carried in the pod's labels), not the
        request — that difference is what right-sizing recovers (§3.4).
        """
        succeeded = pod.state == JobState.COMPLETED
        if succeeded:
            self.store.mark_completed(workflow_name, task_name)
            # Record where the task's outputs landed (node-local
            # scratch) for data-locality placement.
            stored = self.store.get(workflow_name)
            if pod.node is not None:
                for out in stored.workflow.task(task_name).outputs:
                    stored.file_locations[out.name] = pod.node.id
        node = pod.node
        observed_peak = float(pod.labels.get("peak_memory_gb", pod.memory_gb))
        trace = TaskTrace(
            workflow=workflow_name,
            task=task_name,
            attempt=int(pod.labels.get("attempt", 1)),
            node_id=node.id if node else "?",
            node_type=node.spec.name if node else "?",
            node_speed=node.spec.speed if node else 1.0,
            cores=pod.cores,
            memory_gb=observed_peak,
            input_bytes=int(pod.labels.get("input_bytes", 0)),
            submit_time=pod.submit_time,
            start_time=pod.start_time,
            end_time=pod.end_time,
            succeeded=succeeded,
        )
        self.provenance.add_trace(trace)
        self.runtime_predictor.observe(trace)
        if succeeded:
            self.memory_predictor.observe(task_name, observed_peak)

    def suggest_memory_gb(self, task_name: str, requested_gb: float) -> float:
        """Right-size a memory request from observed peaks (§3.4).

        Returns the predictor's peak × headroom when history exists,
        capped at the original request (never inflate a user's ask);
        otherwise the request stands.
        """
        predicted = self.memory_predictor.predict(task_name)
        if predicted is None:
            return requested_gb
        return min(requested_gb, predicted)
