"""Task runtime and resource predictors (§3.4).

Two runtime predictors for the ablation bench:

- :class:`LotaruLikePredictor` — heterogeneity-aware, after Lotaru
  (Bader et al., the paper's ref. 18): observed runtimes are
  normalized by the executing node's speed factor into *nominal*
  runtimes; predictions rescale by the target node's speed.  Learns
  online from provenance traces and falls back to an uncertainty-
  flagged estimate for unseen tasks.
- :class:`NaiveMeanPredictor` — the baseline that ignores where a task
  ran; systematically wrong on heterogeneous clusters.

Plus :class:`MemoryPredictor`, the peak-memory estimator used for
right-sizing requests (wastage ablation).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Optional

from repro.cws.provenance import TaskTrace


class _RunningStats:
    """Welford online mean/variance."""

    __slots__ = ("n", "mean", "_m2")

    def __init__(self):
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


class LotaruLikePredictor:
    """Online, machine-aware task runtime prediction.

    ``observe(trace)`` folds in one completed execution;
    ``predict(task, node_speed)`` returns the expected runtime on a
    node with that speed factor, or ``None`` for never-seen tasks
    (callers fall back to a default or structural scheduling).
    """

    def __init__(self):
        self._stats: dict[str, _RunningStats] = defaultdict(_RunningStats)

    def observe(self, trace: TaskTrace) -> None:
        if not trace.succeeded:
            return
        self._stats[trace.task].add(trace.nominal_runtime)

    def observations(self, task: str) -> int:
        return self._stats[task].n if task in self._stats else 0

    def predict(self, task: str, node_speed: float = 1.0) -> Optional[float]:
        stats = self._stats.get(task)
        if stats is None or stats.n == 0:
            return None
        return stats.mean / node_speed

    def uncertainty(self, task: str) -> Optional[float]:
        """Standard deviation of the nominal-runtime estimate."""
        stats = self._stats.get(task)
        if stats is None or stats.n == 0:
            return None
        return stats.stdev

    def relative_error(self, task: str, node_speed: float, actual: float) -> Optional[float]:
        """|predicted − actual| / actual, for accuracy benches."""
        pred = self.predict(task, node_speed)
        if pred is None or actual <= 0:
            return None
        return abs(pred - actual) / actual


class NaiveMeanPredictor:
    """Heterogeneity-blind baseline: plain mean of observed runtimes."""

    def __init__(self):
        self._stats: dict[str, _RunningStats] = defaultdict(_RunningStats)

    def observe(self, trace: TaskTrace) -> None:
        if not trace.succeeded:
            return
        self._stats[trace.task].add(trace.runtime)

    def observations(self, task: str) -> int:
        return self._stats[task].n if task in self._stats else 0

    def predict(self, task: str, node_speed: float = 1.0) -> Optional[float]:
        # node_speed accepted for interface parity, deliberately unused.
        stats = self._stats.get(task)
        if stats is None or stats.n == 0:
            return None
        return stats.mean

    def relative_error(self, task: str, node_speed: float, actual: float) -> Optional[float]:
        pred = self.predict(task, node_speed)
        if pred is None or actual <= 0:
            return None
        return abs(pred - actual) / actual


class MemoryPredictor:
    """Peak-memory prediction: observed max × a safety headroom.

    Under-prediction kills tasks (OOM); over-prediction wastes
    allocatable memory.  The default 10% headroom mirrors common
    right-sizing practice.
    """

    def __init__(self, headroom: float = 1.1):
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1.0")
        self.headroom = headroom
        self._peak: dict[str, float] = {}
        self._count: dict[str, int] = defaultdict(int)

    def observe(self, task: str, memory_gb: float) -> None:
        self._peak[task] = max(self._peak.get(task, 0.0), memory_gb)
        self._count[task] += 1

    def predict(self, task: str) -> Optional[float]:
        peak = self._peak.get(task)
        if peak is None:
            return None
        return peak * self.headroom

    def observations(self, task: str) -> int:
        return self._count[task]
