"""Tarema-style heterogeneity-aware allocation (§3.4, ref. 19).

Tarema labels cluster nodes into performance classes and workflow
tasks into demand classes, then matches classes at allocation time so
long tasks land on fast nodes and short tasks don't waste them.

Implementation: nodes are split into ``n_classes`` groups by speed
quantiles; tasks are classified by their observed nominal runtime
quantile (from provenance).  The resulting
:class:`~repro.rm.kube.SchedulingStrategy` steers each task toward its
matching node class, degrading gracefully (any fitting node) when the
preferred class is full.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cws.predictors import LotaruLikePredictor
from repro.cws.store import WorkflowStore
from repro.rm.kube import KubeScheduler, Pod, SchedulingStrategy
from repro.cluster import Cluster
from repro.cluster.node import Node


class TaremaAllocator(SchedulingStrategy):
    """Class-matching node selection with rank-based prioritization."""

    name = "tarema"

    def __init__(
        self,
        cluster: Cluster,
        store: WorkflowStore,
        predictor: LotaruLikePredictor,
        n_classes: int = 3,
    ):
        if n_classes < 1:
            raise ValueError("n_classes must be >= 1")
        self.cluster = cluster
        self.store = store
        self.predictor = predictor
        self.n_classes = n_classes
        self._node_class: dict[str, int] = {}
        self._speed_cuts: Optional[np.ndarray] = None
        self.label_nodes()

    # -- labelling ----------------------------------------------------------

    def label_nodes(self) -> dict:
        """(Re)compute node classes from speed quantiles.

        Class 0 is slowest, ``n_classes - 1`` fastest.  Returns
        node_id -> class for inspection.
        """
        speeds = np.array([n.spec.speed for n in self.cluster.nodes])
        qs = np.quantile(speeds, np.linspace(0, 1, self.n_classes + 1)[1:-1])
        self._speed_cuts = qs
        self._node_class = {
            n.id: int(np.searchsorted(qs, n.spec.speed, side="right"))
            for n in self.cluster.nodes
        }
        return dict(self._node_class)

    def node_class(self, node_id: str) -> int:
        return self._node_class[node_id]

    def task_class(self, task: str) -> Optional[int]:
        """Demand class from the task's predicted nominal runtime.

        Classified against the distribution of *all* known task
        predictions; None when the task has no history yet.
        """
        mine = self.predictor.predict(task, node_speed=1.0)
        if mine is None:
            return None
        known = [
            self.predictor.predict(t, node_speed=1.0)
            for t in self._known_tasks()
        ]
        known = [k for k in known if k is not None]
        if len(known) < 2:
            return self.n_classes - 1  # nothing to compare against: assume hungry
        cuts = np.quantile(known, np.linspace(0, 1, self.n_classes + 1)[1:-1])
        return int(np.searchsorted(cuts, mine, side="right"))

    def _known_tasks(self) -> list:
        return list(self.predictor._stats.keys())

    # -- scheduling hooks ------------------------------------------------------

    def prioritize(self, pending: list, scheduler: KubeScheduler) -> list:
        def key(item):
            idx, pod = item
            wf = pod.labels.get("workflow")
            task = pod.labels.get("task")
            if wf is None or task is None or wf not in self.store:
                return (0.0, idx)
            return (-float(self.store.rank_of(wf, task)), idx)

        return [p for _, p in sorted(enumerate(pending), key=key)]

    def select_node(self, pod: Pod, candidates: list, scheduler: KubeScheduler) -> Node:
        task = pod.labels.get("task")
        tclass = self.task_class(task) if task else None
        if tclass is None:
            return super().select_node(pod, candidates, scheduler)
        matching = [c for c in candidates if self._node_class[c.id] == tclass]
        pool = matching or candidates
        # Within the class: best fit; across classes (fallback): the
        # class nearest the task's, preferring slower-than-needed over
        # stealing top nodes.
        if not matching:
            pool = sorted(
                candidates,
                key=lambda c: (
                    abs(self._node_class[c.id] - tclass),
                    self._node_class[c.id],
                    c.id,
                ),
            )[:1]
        return min(pool, key=lambda n: (n.free_cores, n.id))
