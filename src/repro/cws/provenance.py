"""Centralized provenance (§3.3).

"By gathering and storing all metrics and task dependencies in a
centralized manner, provenance becomes more streamlined and
manageable [and] the data will be available across different WMS."

The store collects one :class:`TaskTrace` per task execution — merging
what the WMS knows (task identity, attempt, inputs) with what the
resource manager knows (node identity, node type, placement times).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TaskTrace:
    """One task execution seen from both sides of the CWSI."""

    workflow: str
    task: str
    attempt: int
    node_id: str
    node_type: str
    node_speed: float
    cores: int
    memory_gb: float
    input_bytes: int
    submit_time: float
    start_time: float
    end_time: float
    succeeded: bool = True

    @property
    def runtime(self) -> float:
        return self.end_time - self.start_time

    @property
    def queue_wait(self) -> float:
        return self.start_time - self.submit_time

    @property
    def nominal_runtime(self) -> float:
        """Runtime normalized to a speed-1.0 node — the machine-
        independent quantity Lotaru-style predictors learn."""
        return self.runtime * self.node_speed

    def as_row(self) -> dict:
        """Flat dict for tabular export."""
        return {
            "workflow": self.workflow,
            "task": self.task,
            "attempt": self.attempt,
            "node_id": self.node_id,
            "node_type": self.node_type,
            "runtime_s": self.runtime,
            "queue_wait_s": self.queue_wait,
            "input_bytes": self.input_bytes,
            "cores": self.cores,
            "memory_gb": self.memory_gb,
            "succeeded": self.succeeded,
        }


@dataclass(frozen=True)
class NodeStateEvent:
    """Resource-manager-side trace: a node changing state."""

    time: float
    node_id: str
    state: str


class ProvenanceStore:
    """Append-only store of task traces and node events with queries."""

    def __init__(self):
        self.traces: list[TaskTrace] = []
        self.node_events: list[NodeStateEvent] = []

    # -- ingestion -----------------------------------------------------------

    def add_trace(self, trace: TaskTrace) -> None:
        self.traces.append(trace)

    def add_node_event(self, time: float, node_id: str, state: str) -> None:
        self.node_events.append(NodeStateEvent(time, node_id, state))

    def __len__(self) -> int:
        return len(self.traces)

    # -- queries --------------------------------------------------------------

    def for_workflow(self, workflow: str) -> list[TaskTrace]:
        return [t for t in self.traces if t.workflow == workflow]

    def for_task(self, task: str, workflow: Optional[str] = None) -> list[TaskTrace]:
        """Traces for a task name, across workflows unless one is given.

        Cross-workflow visibility is the §3.3 selling point: task
        history survives even when a WMS has no provenance of its own.
        """
        return [
            t
            for t in self.traces
            if t.task == task and (workflow is None or t.workflow == workflow)
        ]

    def for_node(self, node_id: str) -> list[TaskTrace]:
        return [t for t in self.traces if t.node_id == node_id]

    def runtimes(self, task: str, node_type: Optional[str] = None) -> list[float]:
        return [
            t.runtime
            for t in self.traces
            if t.task == task
            and t.succeeded
            and (node_type is None or t.node_type == node_type)
        ]

    def summary(self, task: str) -> dict:
        """Mean/max runtime and memory over successful executions."""
        rts = self.runtimes(task)
        mems = [t.memory_gb for t in self.traces if t.task == task and t.succeeded]
        if not rts:
            return {"task": task, "executions": 0}
        return {
            "task": task,
            "executions": len(rts),
            "runtime_mean": statistics.fmean(rts),
            "runtime_max": max(rts),
            "runtime_stdev": statistics.stdev(rts) if len(rts) > 1 else 0.0,
            "memory_max_gb": max(mems) if mems else 0.0,
        }

    def export_rows(self, workflow: Optional[str] = None) -> list[dict]:
        """Tabular export of all (or one workflow's) traces."""
        traces = self.traces if workflow is None else self.for_workflow(workflow)
        return [t.as_row() for t in traces]

    def failure_rate(self) -> float:
        if not self.traces:
            return 0.0
        return sum(1 for t in self.traces if not t.succeeded) / len(self.traces)

    def to_prov_document(self, workflows: Optional[dict] = None) -> dict:
        """Export as a W3C-PROV-style JSON document.

        §3.3's interoperability argument: "all WMS represent provenance
        differently, so it is very heterogeneous" — a central store can
        emit one common representation.  Mapping:

        - **activity** — one per task execution (``wf:task:attempt``),
          with start/end times and the executing node as an attribute,
        - **agent** — one per node, one per workflow engine,
        - **entity** — one per file, when the workflow graphs are
          supplied (``workflows``: name → Workflow) so file producers
          and consumers are known,
        - **used / wasGeneratedBy / wasAssociatedWith** — the relations
          connecting them.
        """
        doc: dict = {
            "prefix": {"repro": "urn:repro:"},
            "activity": {},
            "agent": {},
            "entity": {},
            "used": [],
            "wasGeneratedBy": [],
            "wasAssociatedWith": [],
        }
        for trace in self.traces:
            aid = f"repro:{trace.workflow}/{trace.task}/{trace.attempt}"
            doc["activity"][aid] = {
                "prov:startTime": trace.start_time,
                "prov:endTime": trace.end_time,
                "repro:succeeded": trace.succeeded,
                "repro:cores": trace.cores,
            }
            agent_id = f"repro:node/{trace.node_id}"
            doc["agent"].setdefault(
                agent_id,
                {"repro:type": trace.node_type, "repro:speed": trace.node_speed},
            )
            doc["wasAssociatedWith"].append(
                {"prov:activity": aid, "prov:agent": agent_id}
            )
            if workflows and trace.workflow in workflows:
                wf = workflows[trace.workflow]
                if trace.task in wf:
                    spec = wf.task(trace.task)
                    for inp in spec.inputs:
                        eid = f"repro:file/{inp}"
                        doc["entity"].setdefault(eid, {})
                        doc["used"].append(
                            {"prov:activity": aid, "prov:entity": eid}
                        )
                    for out in spec.outputs:
                        eid = f"repro:file/{out.name}"
                        doc["entity"].setdefault(
                            eid, {"repro:size_bytes": out.size_bytes}
                        )
                        if trace.succeeded:
                            doc["wasGeneratedBy"].append(
                                {"prov:entity": eid, "prov:activity": aid}
                            )
        return doc

    def bottleneck_report(self, top: int = 5) -> list:
        """Tasks ranked by total time cost (runtime + queue wait).

        The §6.1 use case: "a modular framework assists in pinpointing
        bottlenecks and potential areas for refinement" — this is the
        query a centralized metrics store answers.  Each row carries
        the task's share of the total recorded time and its wait ratio
        (queue wait / runtime — high values indicate a scheduling
        bottleneck rather than a compute one).
        """
        if top < 1:
            raise ValueError("top must be >= 1")
        totals: dict[str, dict] = {}
        for t in self.traces:
            row = totals.setdefault(
                t.task, {"task": t.task, "runtime_s": 0.0, "queue_wait_s": 0.0,
                         "executions": 0}
            )
            row["runtime_s"] += t.runtime
            row["queue_wait_s"] += t.queue_wait
            row["executions"] += 1
        grand = sum(r["runtime_s"] + r["queue_wait_s"] for r in totals.values())
        rows = sorted(
            totals.values(),
            key=lambda r: -(r["runtime_s"] + r["queue_wait_s"]),
        )[:top]
        for r in rows:
            cost = r["runtime_s"] + r["queue_wait_s"]
            r["share"] = cost / grand if grand else 0.0
            r["wait_ratio"] = (
                r["queue_wait_s"] / r["runtime_s"] if r["runtime_s"] else float("inf")
            )
        return rows
