"""Common Workflow Scheduler (CWS) and its interface (CWSI).

Reproduces §3 of the paper (Lehmann, Bader, Thamsen, Leser): a
component living *inside* the resource manager that receives workflow
context from any WMS through a common interface, and uses it for

- **workflow-aware scheduling** (:mod:`repro.cws.strategies` — the
  rank and file-size strategies whose makespan reductions E1 reports),
- **provenance** (:mod:`repro.cws.provenance` — the central trace
  store of §3.3),
- **task runtime / resource prediction** (:mod:`repro.cws.predictors`
  — Lotaru-like heterogeneity-aware online prediction, §3.4),
- **heterogeneity-aware allocation** (:mod:`repro.cws.tarema` — the
  Tarema-style node/task labelling of §3.4).

Architecture mirrors Fig 2: the WMS engine calls :class:`CWSI`
(register workflow / submit task / task finished); the CWSI keeps the
graph in the :class:`WorkflowStore`, installs a strategy into the
:class:`~repro.rm.kube.KubeScheduler`, and feeds every completed task
into the provenance store and predictors.
"""

from repro.cws.store import StoredWorkflow, WorkflowStore
from repro.cws.provenance import ProvenanceStore, TaskTrace
from repro.cws.interface import CWSI
from repro.cws.predictors import (
    LotaruLikePredictor,
    MemoryPredictor,
    NaiveMeanPredictor,
)
from repro.cws.strategies import (
    FileSizeStrategy,
    PredictiveHeftStrategy,
    RankStrategy,
)
from repro.cws.locality import DataLocalityStrategy, StagingAwareFifo
from repro.cws.tarema import TaremaAllocator

__all__ = [
    "CWSI",
    "DataLocalityStrategy",
    "FileSizeStrategy",
    "StagingAwareFifo",
    "LotaruLikePredictor",
    "MemoryPredictor",
    "NaiveMeanPredictor",
    "PredictiveHeftStrategy",
    "ProvenanceStore",
    "RankStrategy",
    "StoredWorkflow",
    "TaremaAllocator",
    "TaskTrace",
    "WorkflowStore",
]
