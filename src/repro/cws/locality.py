"""Data-locality-aware scheduling through the CWSI.

The CWSI's whole premise (§3.1) is that the resource manager should
see "essential information, such as input files" — this strategy puts
that information to work.  The workflow store tracks which node each
produced file landed on (node-local scratch); the strategy then

- **prioritizes** by structural rank (as :class:`RankStrategy`), and
- **places** each task on the fitting node that minimizes the bytes it
  would have to pull over the interconnect, and
- **charges** the residual transfer honestly: the scheduler adds
  ``remote_bytes / interconnect_bandwidth`` to the task's start-up via
  the :meth:`~repro.rm.kube.SchedulingStrategy.stage_cost_s` hook.

Workflow-blind strategies pay the full staging penalty on every
placement; this one avoids most of it — the ablation bench
``bench_cws_locality`` quantifies the gap.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.node import Node
from repro.cws.store import WorkflowStore
from repro.cws.strategies import _StoreBackedStrategy
from repro.rm.kube import KubeScheduler, Pod


class DataLocalityStrategy(_StoreBackedStrategy):
    """Rank-ordered, locality-placed scheduling with honest staging costs.

    Parameters
    ----------
    store:
        The CWS workflow store (holds graphs and file locations).
    interconnect_mbps:
        Node-to-node transfer bandwidth for remote inputs (default
        1250 MB/s ≈ 10 GbE).
    shared_fs_mbps:
        Bandwidth for external inputs served from the shared
        filesystem (no producing node).
    """

    name = "locality"

    def __init__(
        self,
        store: WorkflowStore,
        interconnect_mbps: float = 1250.0,
        shared_fs_mbps: float = 500.0,
        delay_s: float = 45.0,
    ):
        super().__init__(store, place_fastest=False)
        if interconnect_mbps <= 0 or shared_fs_mbps <= 0:
            raise ValueError("bandwidths must be positive")
        if delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        self.interconnect_mbps = interconnect_mbps
        self.shared_fs_mbps = shared_fs_mbps
        #: Delay-scheduling patience: how long a pod may wait for its
        #: zero-transfer node before settling for an off-node slot.
        self.delay_s = delay_s

    # -- cost model -----------------------------------------------------------

    def _input_placement(self, wf_name: str, task_name: str) -> list:
        """[(bytes, node_id or None)] for each input of the task."""
        stored = self.store.get(wf_name)
        wf = stored.workflow
        spec = wf.task(task_name)
        out = []
        for inp in spec.inputs:
            producer = wf.producer_of(inp)
            if producer is None:
                out.append((0, None))  # external: size unknown, shared FS
                continue
            size = next(
                (o.size_bytes for o in wf.task(producer).outputs if o.name == inp),
                0,
            )
            out.append((size, stored.file_locations.get(inp)))
        return out

    def remote_bytes(self, wf_name: str, task_name: str, node: Node) -> tuple:
        """(bytes over interconnect, bytes from shared FS) if the task
        ran on ``node``."""
        remote = 0
        shared = 0
        for size, location in self._input_placement(wf_name, task_name):
            if location is None:
                shared += size
            elif location != node.id:
                remote += size
        return remote, shared

    def stage_cost_s(self, pod: Pod, node: Node, scheduler: KubeScheduler) -> float:
        ctx = self._context(pod)
        if ctx is None:
            return 0.0
        remote, shared = self.remote_bytes(*ctx, node)
        return (
            remote / 1e6 / self.interconnect_mbps
            + shared / 1e6 / self.shared_fs_mbps
        )

    # -- scheduling hooks ----------------------------------------------------------

    def prioritize(self, pending: list, scheduler: KubeScheduler) -> list:
        def key(item):
            idx, pod = item
            ctx = self._context(pod)
            if ctx is None:
                return (0.0, idx)
            return (-float(self.store.rank_of(*ctx)), idx)

        return [p for _, p in sorted(enumerate(pending), key=key)]

    def select_node(self, pod: Pod, candidates: list, scheduler: KubeScheduler):
        ctx = self._context(pod)
        if ctx is None:
            return super().select_node(pod, candidates, scheduler)
        best = min(
            candidates,
            key=lambda n: (
                self.stage_cost_s(pod, n, scheduler),
                n.free_cores,
                n.id,
            ),
        )
        best_cost = self.stage_cost_s(pod, best, scheduler)
        if best_cost <= 0:
            pod.labels.pop("locality_wait_since", None)
            return best
        # Delay scheduling: if some node in the cluster WOULD be free
        # of transfer cost but is currently full, wait (bounded) for it
        # rather than paying the transfer immediately.
        zero_cost_exists = any(
            n.is_up
            and self.stage_cost_s(pod, n, scheduler) <= 0
            and n.spec.cores >= pod.cores
            for n in scheduler.cluster.nodes
        )
        if zero_cost_exists and self.delay_s > 0:
            since = pod.labels.get("locality_wait_since")
            if since is None:
                pod.labels["locality_wait_since"] = scheduler.env.now
                return None
            if scheduler.env.now - since < self.delay_s:
                return None
        # Patience exhausted (or no better node exists): pay the cost.
        pod.labels.pop("locality_wait_since", None)
        return best

    def wake_deadline_s(self, pod, scheduler: KubeScheduler):
        """Exact patience expiry for a declined pod, so the (event-
        driven) scheduler re-examines it the moment its bounded wait
        ends rather than on a polling grid."""
        since = pod.labels.get("locality_wait_since")
        if since is None:
            return None
        return since + self.delay_s


class StagingAwareFifo(DataLocalityStrategy):
    """The fair baseline for locality experiments: pays the same
    transfer costs but schedules workflow-blind (FIFO order, best-fit
    placement).  Comparing :class:`DataLocalityStrategy` against plain
    FIFO would be unfair — plain FIFO's cost model has no staging at
    all."""

    name = "fifo-staging"

    def prioritize(self, pending: list, scheduler: KubeScheduler) -> list:
        return pending

    def select_node(self, pod: Pod, candidates: list, scheduler: KubeScheduler) -> Node:
        return min(candidates, key=lambda n: (n.free_cores, n.id))
