"""The CWS in-memory workflow store (Fig 2's "Storage" box).

"WMSs such as Airflow, Nextflow, or Argo send their requests, which
are then kept in memory of CWS.  From this storage, the CWS can fetch
the workflow graph and task dependencies and use this information for
scheduling."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.metrics import bottom_levels, upward_ranks
from repro.core.workflow import Workflow


@dataclass
class StoredWorkflow:
    """A registered workflow plus cached derived data."""

    workflow: Workflow
    registered_at: float = 0.0
    completed_tasks: set = field(default_factory=set)
    #: file name -> node id holding it (node-local scratch), filled in
    #: as tasks complete; consumed by data-locality strategies.
    file_locations: dict = field(default_factory=dict)
    #: Cached structural metrics (invalidated never — DAGs are static).
    _bottom_levels: Optional[dict] = None
    _upward_ranks: Optional[dict] = None

    @property
    def bottom_levels(self) -> dict:
        if self._bottom_levels is None:
            self._bottom_levels = bottom_levels(self.workflow)
        return self._bottom_levels

    @property
    def upward_ranks(self) -> dict:
        if self._upward_ranks is None:
            self._upward_ranks = upward_ranks(self.workflow)
        return self._upward_ranks

    @property
    def done(self) -> bool:
        return len(self.completed_tasks) == len(self.workflow)


class WorkflowStore:
    """Registry of workflows the resource manager currently knows about."""

    def __init__(self):
        self._workflows: dict[str, StoredWorkflow] = {}

    def register(self, workflow: Workflow, now: float = 0.0) -> StoredWorkflow:
        """Store a workflow graph; re-registering replaces the entry."""
        stored = StoredWorkflow(workflow=workflow, registered_at=now)
        self._workflows[workflow.name] = stored
        return stored

    def get(self, name: str) -> StoredWorkflow:
        return self._workflows[name]

    def __contains__(self, name: str) -> bool:
        return name in self._workflows

    def __len__(self) -> int:
        return len(self._workflows)

    def mark_completed(self, workflow_name: str, task_name: str) -> None:
        self._workflows[workflow_name].completed_tasks.add(task_name)

    # -- scheduling queries -----------------------------------------------------

    def rank_of(self, workflow_name: str, task_name: str) -> int:
        """Structural rank (bottom level): hops to the farthest sink."""
        return self.get(workflow_name).bottom_levels[task_name]

    def upward_rank_of(self, workflow_name: str, task_name: str) -> float:
        """Runtime-weighted HEFT rank using nominal runtimes."""
        return self.get(workflow_name).upward_ranks[task_name]

    def input_bytes_of(self, workflow_name: str, task_name: str) -> int:
        """Total bytes of the task's input files (producer-declared sizes)."""
        wf = self.get(workflow_name).workflow
        spec = wf.task(task_name)
        total = 0
        for inp in spec.inputs:
            producer = wf.producer_of(inp)
            if producer is None:
                continue  # external input: size unknown to the store
            for out in wf.task(producer).outputs:
                if out.name == inp:
                    total += out.size_bytes
        return total

    def dependents_of(self, workflow_name: str, task_name: str) -> list:
        return self.get(workflow_name).workflow.children(task_name)

    def active_workflows(self) -> list:
        return [s for s in self._workflows.values() if not s.done]
