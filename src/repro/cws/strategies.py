"""Workflow-aware scheduling strategies (§3.1/§3.5).

"By implementing the CWSI alongside basic scheduling approaches like
rank and file size, we achieve an average runtime reduction of 10.8%."

All strategies read workflow context from pod labels (``workflow`` /
``task``) resolved against the :class:`~repro.cws.store.WorkflowStore`.
Pods without labels (non-workflow traffic) sort last, preserving FIFO
among themselves — the scheduler keeps working for everyone.
"""

from __future__ import annotations

from typing import Optional

from repro.cws.store import WorkflowStore
from repro.rm.kube import KubeScheduler, Pod, SchedulingStrategy
from repro.cluster.node import Node


class _StoreBackedStrategy(SchedulingStrategy):
    """Common label-resolution plumbing."""

    def __init__(self, store: WorkflowStore, place_fastest: bool = True):
        self.store = store
        #: Place the highest-priority task on the fastest fitting node —
        #: the heterogeneity-aware half of workflow-aware scheduling.
        self.place_fastest = place_fastest

    def _context(self, pod: Pod) -> Optional[tuple]:
        wf = pod.labels.get("workflow")
        task = pod.labels.get("task")
        if wf is None or task is None or wf not in self.store:
            return None
        return wf, task

    def _trace_decision(self, pod: Pod, node: Node, scheduler: KubeScheduler) -> Node:
        ctx = self._context(pod)
        scheduler.env.tracer.instant(
            "decision",
            category="cws.strategy",
            component="cws",
            tags={
                "strategy": self.name,
                "workflow": ctx[0] if ctx else None,
                "task": ctx[1] if ctx else None,
                "pod": pod.name,
                "node": node.id,
            },
        )
        return node

    def select_node(self, pod: Pod, candidates: list, scheduler: KubeScheduler) -> Node:
        if self.place_fastest and self._context(pod) is not None:
            chosen = max(
                candidates, key=lambda n: (n.spec.speed, -n.free_cores, n.id)
            )
        else:
            chosen = super().select_node(pod, candidates, scheduler)
        return self._trace_decision(pod, chosen, scheduler)


class RankStrategy(_StoreBackedStrategy):
    """Prioritize by structural rank: distance to the farthest sink.

    Tasks deep in the DAG (large bottom level) gate the most downstream
    work; running them first keeps merge points fed.
    """

    name = "rank"

    def prioritize(self, pending: list, scheduler: KubeScheduler) -> list:
        def key(item):
            idx, pod = item
            ctx = self._context(pod)
            if ctx is None:
                return (0.0, idx)
            return (-float(self.store.rank_of(*ctx)), idx)

        return [p for _, p in sorted(enumerate(pending), key=key)]


class FileSizeStrategy(_StoreBackedStrategy):
    """Prioritize by total input bytes, largest first.

    Heavy-input tasks are usually the long ones in data-intensive
    workflows; starting them early shortens the tail.
    """

    name = "filesize"

    def prioritize(self, pending: list, scheduler: KubeScheduler) -> list:
        def key(item):
            idx, pod = item
            ctx = self._context(pod)
            if ctx is None:
                return (0.0, idx)
            return (-float(self.store.input_bytes_of(*ctx)), idx)

        return [p for _, p in sorted(enumerate(pending), key=key)]


class PredictiveHeftStrategy(_StoreBackedStrategy):
    """HEFT-like: upward rank from *predicted* runtimes, EFT placement.

    The §3.4 composition: CWSI provenance feeds a runtime predictor
    (Lotaru-like), whose estimates weight the upward rank and drive
    earliest-finish-time node selection.  Unseen tasks fall back to a
    unit runtime so structural rank still orders them.
    """

    name = "heft"

    def __init__(
        self,
        store: WorkflowStore,
        predictor,
        default_runtime_s: float = 1.0,
    ):
        super().__init__(store, place_fastest=True)
        self.predictor = predictor
        self.default_runtime_s = default_runtime_s

    def _predicted_upward_rank(self, wf_name: str, task: str) -> float:
        stored = self.store.get(wf_name)

        def runtime_of(name: str) -> float:
            est = self.predictor.predict(name, node_speed=1.0)
            return est if est is not None else self.default_runtime_s

        # Recompute with live predictions (cheap at our DAG sizes; the
        # stored structural ranks stay untouched for RankStrategy users).
        from repro.core.metrics import upward_ranks

        return upward_ranks(stored.workflow, runtime_of)[task]

    def prioritize(self, pending: list, scheduler: KubeScheduler) -> list:
        def key(item):
            idx, pod = item
            ctx = self._context(pod)
            if ctx is None:
                return (0.0, idx)
            return (-self._predicted_upward_rank(*ctx), idx)

        return [p for _, p in sorted(enumerate(pending), key=key)]

    def select_node(self, pod: Pod, candidates: list, scheduler: KubeScheduler) -> Node:
        ctx = self._context(pod)
        if ctx is None:
            chosen = SchedulingStrategy.select_node(self, pod, candidates, scheduler)
            return self._trace_decision(pod, chosen, scheduler)
        _, task = ctx
        nominal = self.predictor.predict(task, node_speed=1.0)
        if nominal is None:
            nominal = self.default_runtime_s
        # Earliest finish time: all candidates are free *now*, so EFT
        # reduces to fastest execution.
        chosen = min(
            candidates, key=lambda n: (nominal / n.spec.speed, n.free_cores, n.id)
        )
        return self._trace_decision(pod, chosen, scheduler)
