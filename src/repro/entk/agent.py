"""The pilot agent: EnTK's executor inside a batch allocation.

Models the RADICAL-Pilot agent measured in §4.3:

- **Bootstrap** — a fixed startup overhead before any task runs (the
  85 s "OVH" slice of Fig 4).
- **Scheduler** — moves submitted tasks to the pending-launch queue at
  a bounded throughput (the 269 tasks/s initial slope of Fig 5's blue
  line).
- **Launcher** — serially places pending tasks onto free nodes at a
  slower throughput (the 51 tasks/s slope of the orange line).
- **Executors** — one process per running task; register with their
  nodes so injected node failures interrupt them.
- **Failure handling** — a task touching a dead node fails after a
  detection delay; dead nodes are blacklisted after ``node_strikes``
  task failures (modelling delayed failure propagation — with a lag,
  one node failure cascades into several task failures, the "eight
  tasks failed due to a single node failure" of §4.3).  Failed tasks
  are retried in follow-up waves that preserve submission order.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cluster.node import Node
from repro.entk.pst import EnTask, TaskState
from repro.resilience import NodeHealth, QuarantineSpec, RetryPolicy
from repro.simkernel import (
    Environment,
    Interrupt,
    TimeSeriesMonitor,
    UtilizationTracker,
)


@dataclass(frozen=True)
class AgentConfig:
    """Tunable agent parameters (defaults = the Frontier run's rates)."""

    schedule_rate: float = 269.0   # tasks/s, submitted -> pending-launch
    launch_rate: float = 51.0      # tasks/s, pending-launch -> executing
    bootstrap_s: float = 85.0      # one-time agent startup overhead
    fail_detect_s: float = 10.0    # time for a dead-node launch to error out
    node_strikes: int = 1          # task failures before a node is blacklisted
    max_task_retries: int = 3      # resubmission waves per stage
    #: Opt-in resilience layer: a full retry policy (classification,
    #: backoff) instead of the bare wave count, and a quarantine spec
    #: that puts repeatedly-failing nodes on probation instead of the
    #: permanent blacklist.  ``None``/``None`` keeps legacy behaviour
    #: exactly (the golden E4 trace depends on it).
    retry_policy: Optional["RetryPolicy"] = None
    quarantine: Optional["QuarantineSpec"] = None

    def __post_init__(self):
        if self.schedule_rate <= 0 or self.launch_rate <= 0:
            raise ValueError("rates must be positive")
        if self.bootstrap_s < 0 or self.fail_detect_s < 0:
            raise ValueError("delays must be non-negative")
        if self.node_strikes < 1:
            raise ValueError("node_strikes must be >= 1")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")


class PilotAgent:
    """Task execution runtime over a set of allocated nodes."""

    def __init__(
        self,
        env: Environment,
        nodes: Iterable[Node],
        config: Optional[AgentConfig] = None,
        name: str = "pilot",
    ):
        self.env = env
        self.nodes = list(nodes)
        if not self.nodes:
            raise ValueError("PilotAgent needs at least one node")
        self.config = config or AgentConfig()
        self.name = name
        self._resilient = (
            self.config.retry_policy is not None
            or self.config.quarantine is not None
        )
        self.retry_policy = (
            self.config.retry_policy
            if self.config.retry_policy is not None
            else RetryPolicy.legacy(self.config.max_task_retries)
        )
        #: Optional NodeHealth circuit breaker built from the config's
        #: QuarantineSpec; its quarantine set extends the blacklist.
        self.health: Optional[NodeHealth] = (
            self.config.quarantine.build(env, name=f"{name}-health")
            if self.config.quarantine is not None
            else None
        )
        if self.health is not None:
            self.health.watch_release(self._on_quarantine_release)

        self._free: list[Node] = list(self.nodes)
        self._blacklist: set = set()
        self._strikes: dict[str, int] = defaultdict(int)
        # (cores_per_node, gpus_per_node) -> how many pilot nodes fit.
        # The node set is fixed at construction, so validation is a dict
        # hit instead of a full node scan per task.
        self._fit_cache: dict[tuple[int, int], int] = {}
        self._node_freed = env.event()
        # Plain deques + wake events instead of kernel Stores: a put is
        # an append (no StorePut/StoreGet event pair per task), and the
        # loops wake only when their queue goes non-empty.  Hand-off
        # timing is identical — a Store put succeeds immediately at the
        # same instant the wake fires.
        self._submit_q: deque = deque()
        self._launch_q: deque = deque()
        self._submit_wake = env.event()
        self._launch_wake = env.event()
        self._started = False
        self._shutdown = False
        self._bootstrapped_at: Optional[float] = None
        self._loops: list = []
        self._live_execs: set = set()

        t0 = env.now
        total_cores = sum(n.spec.cores for n in self.nodes)
        total_gpus = sum(n.spec.gpus for n in self.nodes)
        #: Fig 5 blue line: tasks scheduled, waiting to be launched.
        self.pending_launch = TimeSeriesMonitor("pending_launch", t0=t0)
        #: Fig 5 orange line: tasks executing concurrently.
        self.executing = TimeSeriesMonitor("executing", t0=t0)
        #: Cumulative completed tasks.
        self.done_count = TimeSeriesMonitor("done", t0=t0)
        #: Cumulative scheduled / launched counts (throughput measures).
        self.scheduled_cum = TimeSeriesMonitor("scheduled_cum", t0=t0)
        self.launched_cum = TimeSeriesMonitor("launched_cum", t0=t0)
        #: Fig 4 core/GPU busy tracking.
        self.core_util = UtilizationTracker(total_cores, name="cores", t0=t0)
        self.gpu_util = (
            UtilizationTracker(total_gpus, name="gpus", t0=t0) if total_gpus else None
        )
        #: All task failures observed (task name, time, cause).
        self.failures: list[tuple] = []

        # Adopt the live monitors into the trace registry (no-op when
        # tracing is disabled) so exported traces carry the exact
        # series the agent records — no parallel accounting.
        registry = env.tracer.metrics
        for monitor in (
            self.pending_launch,
            self.executing,
            self.done_count,
            self.scheduled_cum,
            self.launched_cum,
            self.core_util,
        ):
            registry.register(monitor, component=self.name)
        if self.gpu_util is not None:
            registry.register(self.gpu_util, component=self.name)

    # -- public API ------------------------------------------------------------

    @property
    def bootstrap_overhead(self) -> Optional[float]:
        """Seconds spent bootstrapping (None until bootstrapped)."""
        if self._bootstrapped_at is None:
            return None
        return self.config.bootstrap_s

    @property
    def usable_nodes(self) -> int:
        return len(self.nodes) - len(self._blacklist)

    def run_stage(self, tasks: list):
        """Process generator: run a set of independent tasks to completion.

        Retries failed tasks in order-preserving waves up to
        ``max_task_retries`` times.  Returns ``(done, failed)`` lists.
        """
        tasks = list(tasks)
        for task in tasks:
            self._validate_task(task)
        if not self._started:
            self._started = True
            boot_span = self.env.tracer.start(
                "bootstrap",
                category="entk.bootstrap",
                component=self.name,
                tags={"nodes": len(self.nodes)},
            )
            yield self.env.timeout(self.config.bootstrap_s)
            self._bootstrapped_at = self.env.now
            boot_span.finish()
            self._loops = [
                self.env.process(self._scheduler_loop(), name=f"{self.name}-sched"),
                self.env.process(self._launcher_loop(), name=f"{self.name}-launch"),
            ]

        wave = tasks
        for _wave_idx in range(self.retry_policy.max_retries + 1):
            if not wave or self._shutdown:
                break
            tracer = self.env.tracer
            traced = tracer.enabled
            terminal_events = []
            for task in wave:
                task.state = TaskState.NEW
                task.submit_time = self.env.now
                task._terminal = self.env.event()
                # Whole-lifecycle span (submit → terminal); the pending
                # and exec child spans nest inside it.
                task._obs_span = (
                    tracer.start(
                        task.name,
                        category="entk.task",
                        component=self.name,
                        tags={"wave": _wave_idx},
                    )
                    if traced
                    else None
                )
                terminal_events.append(task._terminal)
                self._submit_q.append(task)
            if self._submit_q and not self._submit_wake.triggered:
                self._submit_wake.succeed()
            yield self.env.all_of(terminal_events)
            failed = [t for t in wave if t.state == TaskState.FAILED]
            retryable = []
            for t in failed:
                cause = t.failure_causes[-1] if t.failure_causes else None
                if not self.retry_policy.should_retry(t.attempts, cause):
                    continue  # permanent/over-budget: stays FAILED
                if self._resilient:
                    self.env.tracer.instant(
                        t.name,
                        category="retry.task",
                        component=self.name,
                        tags={
                            "attempt": t.attempts,
                            "class": self.retry_policy.classify(cause).value,
                        },
                    )
                t.reset_for_retry()
                retryable.append(t)
            if retryable:
                delay = max(
                    self.retry_policy.backoff_s(t.attempts, key=t.name)
                    for t in retryable
                )
                if delay > 0:
                    yield self.env.timeout(delay)
            wave = retryable
        done = [t for t in tasks if t.state == TaskState.DONE]
        failed = [t for t in tasks if t.state != TaskState.DONE]
        for t in failed:
            t.state = TaskState.FAILED
        return done, failed

    def _validate_task(self, task: EnTask) -> None:
        key = (task.cores_per_node, task.gpus_per_node)
        fitting = self._fit_cache.get(key)
        if fitting is None:
            fitting = sum(
                1
                for n in self.nodes
                if n.spec.cores >= task.cores_per_node
                and n.spec.gpus >= task.gpus_per_node
            )
            self._fit_cache[key] = fitting
        if fitting < task.nodes:
            raise ValueError(
                f"{task!r} needs {task.nodes} nodes with "
                f"{task.cores_per_node}c/{task.gpus_per_node}g; pilot has "
                f"only {fitting} such nodes"
            )

    # -- agent loops ---------------------------------------------------------------

    def shutdown(self, cause: str = "pilot-shutdown") -> None:
        """Stop the agent: kill loops and interrupt in-flight executors.

        Called when the surrounding pilot job terminates (walltime).
        Executors mark their tasks FAILED with ``cause`` so the next
        pilot job resubmits them.
        """
        self._shutdown = True
        for proc in self._loops:
            if proc.is_alive:
                proc.interrupt(cause=cause)
        for proc in list(self._live_execs):
            if proc.is_alive:
                proc.interrupt(cause=cause)

    def _scheduler_loop(self):
        period = 1.0 / self.config.schedule_rate
        env = self.env
        queue = self._submit_q
        try:
            while True:
                while not queue:
                    yield self._submit_wake
                    self._submit_wake = env.event()
                task = queue.popleft()
                yield env.timeout(period)
                now = env.now
                task.state = TaskState.SCHEDULED
                task.schedule_time = now
                self.pending_launch.increment(now, +1)
                self.scheduled_cum.increment(now, +1)
                tracer = env.tracer
                if tracer.enabled:
                    task._obs_pending = tracer.start(
                        "pending",
                        category="entk.pending",
                        component=self.name,
                        parent=getattr(task, "_obs_span", None),
                        tags={"task": task.name},
                    )
                self._launch_q.append(task)
                if not self._launch_wake.triggered:
                    self._launch_wake.succeed()
        except Interrupt:
            return

    def _launcher_loop(self):
        period = 1.0 / self.config.launch_rate
        env = self.env
        queue = self._launch_q
        free = self._free
        try:
            while True:
                while not queue:
                    yield self._launch_wake
                    self._launch_wake = env.event()
                task = queue.popleft()
                yield env.timeout(period)
                count = task.nodes
                # Inline the no-avoid/no-wait acquire fast path (the
                # steady state): no generator delegation per task.
                if not self._avoid_set() and len(free) >= count:
                    nodes = free[-count:]
                    del free[-count:]
                else:
                    nodes = yield from self._acquire(count)
                now = env.now
                self.pending_launch.increment(now, -1)
                self.launched_cum.increment(now, +1)
                pending_span = getattr(task, "_obs_pending", None)
                if pending_span is not None:
                    pending_span.finish()
                proc = env.process(
                    self._execute(task, nodes),
                    name=f"exec:{task.name}#{task.attempts}",
                )
                self._live_execs.add(proc)
        except Interrupt:
            return

    def _avoid_set(self) -> set:
        """Blacklisted plus health-quarantined node ids."""
        if self.health is None:
            return self._blacklist
        quarantined = self.health.quarantined_ids()
        if not quarantined:
            return self._blacklist
        return self._blacklist | quarantined

    def _acquire(self, count: int):
        """Take ``count`` non-avoided nodes from the free pool, waiting
        as needed.  The avoid-set is the permanent blacklist plus any
        health quarantine.  Down-but-not-yet-avoided nodes are handed
        out like healthy ones (failure-detection lag)."""
        while True:
            avoid = self._avoid_set()
            if not avoid:
                # Fast path (the common case at Frontier scale): pop
                # from the end, no per-node filtering.
                if len(self._free) >= count:
                    taken = self._free[-count:]
                    del self._free[-count:]
                    return taken
            elif len(self._free) >= count:  # else: cannot fit, skip the filter
                usable = [n for n in self._free if n.id not in avoid]
                if len(usable) >= count:
                    taken = usable[:count]
                    for n in taken:
                        self._free.remove(n)
                    return taken
            yield self._node_freed
            # event is recreated by the releaser; loop re-checks

    def _release(self, nodes: list) -> None:
        for n in nodes:
            if n.id not in self._blacklist:
                self._free.append(n)
        if not self._node_freed.triggered:
            self._node_freed.succeed()
        self._node_freed = self.env.event()

    def _on_quarantine_release(self, node_id: str) -> None:
        """Probation ended: wake any launcher blocked on the free pool
        (the released node may already be sitting in it)."""
        if not self._node_freed.triggered:
            self._node_freed.succeed()
        self._node_freed = self.env.event()

    def _execute(self, task: EnTask, nodes: list):
        task.attempts += 1
        task.state = TaskState.EXECUTING
        task.start_time = self.env.now
        task.executed_on = [n.id for n in nodes]
        self.executing.increment(self.env.now, +1)
        cores, gpus = task.total_cores, task.total_gpus
        self.core_util.acquire(self.env.now, cores)
        if self.gpu_util and gpus:
            self.gpu_util.acquire(self.env.now, gpus)
        tracer = self.env.tracer
        exec_span = (
            tracer.start(
                "exec",
                category="entk.exec",
                component=self.name,
                parent=getattr(task, "_obs_span", None),
                tags={"task": task.name, "attempt": task.attempts,
                      "cores": cores, "gpus": gpus},
            )
            if tracer.enabled
            else None
        )

        me = self.env.active_process
        key = f"{self.name}:{task.name}:{task.attempts}"
        cause = None
        try:
            dead = [n for n in nodes if not n.is_up]
            if dead:
                yield self.env.timeout(self.config.fail_detect_s)
                cause = f"dead-node:{dead[0].id}"
            else:
                for n in nodes:
                    n.register_occupant(key, me)
                if task.duration is not None:
                    speed = min(n.effective_speed for n in nodes)
                    yield self.env.timeout(task.duration / speed)
                else:
                    yield self.env.process(
                        task.work(self.env, task, nodes), name=f"work:{task.name}"
                    )
        except Interrupt as intr:
            cause = intr.cause
        except BaseException as exc:
            cause = exc
        finally:
            for n in nodes:
                n.unregister_occupant(key)
            self.executing.increment(self.env.now, -1)
            self.core_util.release(self.env.now, cores)
            if self.gpu_util and gpus:
                self.gpu_util.release(self.env.now, gpus)
            task.end_time = self.env.now
            if cause is None:
                task.state = TaskState.DONE
                self.done_count.increment(self.env.now, +1)
                if self.health is not None:
                    for n in nodes:
                        self.health.record_success(n.id)
            else:
                task.state = TaskState.FAILED
                task.failure_causes.append(cause)
                self.failures.append((task.name, self.env.now, cause))
                for n in nodes:
                    if not n.is_up:
                        self._strikes[n.id] += 1
                        if self._strikes[n.id] >= self.config.node_strikes:
                            self._blacklist.add(n.id)
                        if self.health is not None:
                            self.health.record_failure(n.id, cause=cause)
            if exec_span is not None:
                exec_span.tag(state=task.state.value).finish()
            task_span = getattr(task, "_obs_span", None)
            if task_span is not None:
                task_span.tag(state=task.state.value).finish()
            self._release(nodes)
            self._live_execs.discard(self.env.active_process)
            task._terminal.succeed(task)

    # -- profiling helpers -----------------------------------------------------------

    def scheduling_throughput(self, horizon_s: float = 30.0) -> float:
        """Initial slope of the cumulative-scheduled curve (tasks/s)."""
        start = self._bootstrapped_at or 0.0
        return self.scheduled_cum.value_at(start + horizon_s) / horizon_s

    def launch_throughput(self, horizon_s: float = 30.0) -> float:
        """Initial slope of the cumulative-launched curve (tasks/s)."""
        start = self._bootstrapped_at or 0.0
        return self.launched_cum.value_at(start + horizon_s) / horizon_s

    def utilization(self, t_start=None, t_end=None) -> float:
        return self.core_util.utilization(t_start, t_end)
