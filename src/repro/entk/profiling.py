"""Run profiles: the quantities Figs 4 and 5 report.

Two equivalent construction paths feed the same computation:

- :meth:`RunProfile.from_agent` — from the live :class:`PilotAgent`'s
  monitors at the end of a simulated run (the historical path), and
- :meth:`RunProfile.from_trace` — post hoc, from a tracer (live or
  reloaded from JSONL), using the very same registry metrics the agent
  adopted into the trace plus the pilot's job/bootstrap spans.

Because the agent registers its monitors with the tracer's metrics
registry, both paths read identical series and must agree exactly —
a property the profiling tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.entk.agent import PilotAgent
from repro.obs.metrics import Gauge, UtilizationTracker


@dataclass
class RunProfile:
    """Fig-4/Fig-5 measurements for one pilot job.

    - ``ovh`` — agent bootstrap overhead (Fig 4 "OVH", 85 s on Frontier).
    - ``ttx`` — total execution span after bootstrap (Fig 4 "TTX").
    - ``job_runtime`` — batch job wall time (≈ ovh + ttx).
    - ``utilization`` — busy core-seconds / (capacity × job span).
    - throughputs — initial slopes of Fig 5's curves.
    """

    job_runtime: float
    ovh: float
    ttx: float
    core_utilization: float
    gpu_utilization: Optional[float]
    scheduling_throughput: float
    launch_throughput: float
    peak_concurrency: float
    tasks_done: int
    tasks_failed_events: int
    concurrency_series: tuple = field(default=(), repr=False)
    pending_series: tuple = field(default=(), repr=False)

    @classmethod
    def from_agent(
        cls,
        agent: PilotAgent,
        job_start: float,
        job_end: float,
        throughput_horizon_s: Optional[float] = None,
    ) -> "RunProfile":
        return _build_profile(
            cls,
            executing=agent.executing,
            pending=agent.pending_launch,
            scheduled_cum=agent.scheduled_cum,
            launched_cum=agent.launched_cum,
            core_util=agent.core_util,
            gpu_util=agent.gpu_util,
            ovh=agent.bootstrap_overhead or 0.0,
            job_start=job_start,
            job_end=job_end,
            tasks_done=int(agent.done_count.current),
            tasks_failed_events=len(agent.failures),
            throughput_horizon_s=throughput_horizon_s,
        )

    @classmethod
    def from_trace(
        cls,
        tracer,
        component: Optional[str] = None,
        throughput_horizon_s: Optional[float] = None,
    ) -> "RunProfile":
        """Rebuild the profile from a trace alone.

        ``tracer`` may be the live tracer or one reloaded with
        :func:`repro.obs.export.tracer_from_jsonl`; ``component`` is
        the pilot name (``"entk-pilot-0"``), defaulting to the only
        pilot in the trace.  Requires the trace to carry the agent's
        registry metrics (the default for both exporters).
        """
        from repro.obs.analyze import pilot_components
        from repro.obs.query import TraceQuery

        q = TraceQuery(tracer)
        if component is None:
            pilots = pilot_components(q)
            if len(pilots) != 1:
                raise ValueError(
                    f"trace has {len(pilots)} pilots {pilots}; pass component="
                )
            component = pilots[0]

        jobs = q.spans(category="rm.job", name=component)
        if not jobs or jobs[0].end is None:
            raise ValueError(f"no finished rm.job span for {component!r}")
        job = jobs[0]
        boots = q.spans(category="entk.bootstrap", component=component)
        ovh = (boots[0].end - boots[0].start) if boots and boots[0].end else 0.0

        def metric(name, required=True):
            try:
                return tracer.metrics.get(name, component=component)
            except KeyError:
                if required:
                    raise ValueError(
                        f"trace has no {component}/{name} metric; "
                        "export with include_metrics=True"
                    ) from None
                return None

        failed = [
            s
            for s in q.spans(category="entk.exec", component=component)
            if s.tags.get("state") == "FAILED"
        ]
        return _build_profile(
            cls,
            executing=metric("executing"),
            pending=metric("pending_launch"),
            scheduled_cum=metric("scheduled_cum"),
            launched_cum=metric("launched_cum"),
            core_util=metric("cores"),
            gpu_util=metric("gpus", required=False),
            ovh=ovh,
            job_start=job.start,
            job_end=job.end,
            tasks_done=int(metric("done").current),
            tasks_failed_events=len(failed),
            throughput_horizon_s=throughput_horizon_s,
        )

    def summary_lines(self) -> list:
        """Human-readable Fig-4-style summary."""
        lines = [
            f"job runtime : {self.job_runtime:9.0f} s",
            f"OVH         : {self.ovh:9.0f} s",
            f"TTX         : {self.ttx:9.0f} s",
            f"core util   : {self.core_utilization * 100:8.1f} %",
        ]
        if self.gpu_utilization is not None:
            lines.append(f"gpu util    : {self.gpu_utilization * 100:8.1f} %")
        lines += [
            f"sched rate  : {self.scheduling_throughput:9.1f} tasks/s",
            f"launch rate : {self.launch_throughput:9.1f} tasks/s",
            f"peak conc.  : {self.peak_concurrency:9.0f} tasks",
            f"done/failed : {self.tasks_done}/{self.tasks_failed_events}",
        ]
        return lines


def _default_horizon(executing: Gauge, boot_end: float, job_end: float) -> float:
    """Measure initial slopes inside the launch ramp: from bootstrap end
    until the executing curve first reaches its peak (the Fig 5
    "initial slopes")."""
    peak = executing.peak
    t_peak = next(
        (t for t, v in zip(executing.times, executing.values) if v >= peak),
        job_end,
    )
    return max(1.0, 0.9 * (t_peak - boot_end))


def _build_profile(
    cls,
    executing: Gauge,
    pending: Gauge,
    scheduled_cum: Gauge,
    launched_cum: Gauge,
    core_util: UtilizationTracker,
    gpu_util: Optional[UtilizationTracker],
    ovh: float,
    job_start: float,
    job_end: float,
    tasks_done: int,
    tasks_failed_events: int,
    throughput_horizon_s: Optional[float],
) -> "RunProfile":
    """The single computation both constructors share."""
    boot_end = job_start + ovh
    if throughput_horizon_s is None:
        throughput_horizon_s = _default_horizon(executing, boot_end, job_end)
    times_c, values_c = executing.resample(n=400, t_end=job_end)
    times_p, values_p = pending.resample(n=400, t_end=job_end)
    return cls(
        job_runtime=job_end - job_start,
        ovh=ovh,
        ttx=job_end - boot_end,
        core_utilization=core_util.utilization(job_start, job_end),
        gpu_utilization=(
            gpu_util.utilization(job_start, job_end) if gpu_util else None
        ),
        scheduling_throughput=(
            scheduled_cum.value_at(boot_end + throughput_horizon_s)
            / throughput_horizon_s
        ),
        launch_throughput=(
            launched_cum.value_at(boot_end + throughput_horizon_s)
            / throughput_horizon_s
        ),
        peak_concurrency=executing.peak,
        tasks_done=tasks_done,
        tasks_failed_events=tasks_failed_events,
        concurrency_series=(tuple(times_c), tuple(values_c)),
        pending_series=(tuple(times_p), tuple(values_p)),
    )
