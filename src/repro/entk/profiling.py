"""Run profiles: the quantities Figs 4 and 5 report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.entk.agent import PilotAgent


@dataclass
class RunProfile:
    """Fig-4/Fig-5 measurements for one pilot job.

    - ``ovh`` — agent bootstrap overhead (Fig 4 "OVH", 85 s on Frontier).
    - ``ttx`` — total execution span after bootstrap (Fig 4 "TTX").
    - ``job_runtime`` — batch job wall time (≈ ovh + ttx).
    - ``utilization`` — busy core-seconds / (capacity × job span).
    - throughputs — initial slopes of Fig 5's curves.
    """

    job_runtime: float
    ovh: float
    ttx: float
    core_utilization: float
    gpu_utilization: Optional[float]
    scheduling_throughput: float
    launch_throughput: float
    peak_concurrency: float
    tasks_done: int
    tasks_failed_events: int
    concurrency_series: tuple = field(default=(), repr=False)
    pending_series: tuple = field(default=(), repr=False)

    @classmethod
    def from_agent(
        cls,
        agent: PilotAgent,
        job_start: float,
        job_end: float,
        throughput_horizon_s: Optional[float] = None,
    ) -> "RunProfile":
        ovh = agent.bootstrap_overhead or 0.0
        boot_end = job_start + ovh
        if throughput_horizon_s is None:
            # Measure initial slopes inside the launch ramp: from
            # bootstrap end until the executing curve first reaches its
            # peak (the Fig 5 "initial slopes").
            peak = agent.executing.peak
            t_peak = next(
                (
                    t
                    for t, v in zip(agent.executing.times, agent.executing.values)
                    if v >= peak
                ),
                job_end,
            )
            throughput_horizon_s = max(1.0, 0.9 * (t_peak - boot_end))
        times_c, values_c = agent.executing.resample(n=400, t_end=job_end)
        times_p, values_p = agent.pending_launch.resample(n=400, t_end=job_end)
        return cls(
            job_runtime=job_end - job_start,
            ovh=ovh,
            ttx=job_end - boot_end,
            core_utilization=agent.core_util.utilization(job_start, job_end),
            gpu_utilization=(
                agent.gpu_util.utilization(job_start, job_end)
                if agent.gpu_util
                else None
            ),
            scheduling_throughput=agent.scheduling_throughput(throughput_horizon_s),
            launch_throughput=agent.launch_throughput(throughput_horizon_s),
            peak_concurrency=agent.executing.peak,
            tasks_done=int(agent.done_count.current),
            tasks_failed_events=len(agent.failures),
            concurrency_series=(tuple(times_c), tuple(values_c)),
            pending_series=(tuple(times_p), tuple(values_p)),
        )

    def summary_lines(self) -> list:
        """Human-readable Fig-4-style summary."""
        lines = [
            f"job runtime : {self.job_runtime:9.0f} s",
            f"OVH         : {self.ovh:9.0f} s",
            f"TTX         : {self.ttx:9.0f} s",
            f"core util   : {self.core_utilization * 100:8.1f} %",
        ]
        if self.gpu_utilization is not None:
            lines.append(f"gpu util    : {self.gpu_utilization * 100:8.1f} %")
        lines += [
            f"sched rate  : {self.scheduling_throughput:9.1f} tasks/s",
            f"launch rate : {self.launch_throughput:9.1f} tasks/s",
            f"peak conc.  : {self.peak_concurrency:9.0f} tasks",
            f"done/failed : {self.tasks_done}/{self.tasks_failed_events}",
        ]
        return lines
