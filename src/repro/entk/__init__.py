"""RADICAL-EnTK-like ensemble toolkit (§4).

Implements the PST model — *Pipeline* = sequence of *Stages*, *Stage* =
set of independent *Tasks* — on top of a pilot runtime:

- :mod:`repro.entk.pst` — Pipeline/Stage/Task descriptions.
- :mod:`repro.entk.agent` — the pilot agent: bootstraps inside a batch
  allocation, schedules tasks at a bounded rate (the 269 tasks/s of
  Fig 5), launches them at a slower rate (51 tasks/s), tracks
  concurrency and utilization, survives node failures, and resubmits
  failed tasks in follow-up waves preserving order.
- :mod:`repro.entk.appmanager` — the AppManager: acquires pilots as
  batch jobs (one big job or consecutive smaller jobs), drives
  pipelines through them, and carries unfinished work across job
  boundaries — the fault-tolerance design §4.2 describes.
- :mod:`repro.entk.platforms` — resource configurations for the
  Summit/Crusher/Frontier progression of §4.3.
- :mod:`repro.entk.profiling` — Fig-4/Fig-5-style run profiles.
"""

from repro.entk.pst import EnTask, Pipeline, Stage, TaskState
from repro.entk.agent import AgentConfig, PilotAgent
from repro.entk.appmanager import AppManager, AppRunResult, ResourceDescription
from repro.entk.platforms import PLATFORMS, platform_cluster
from repro.entk.profiling import RunProfile

__all__ = [
    "AgentConfig",
    "AppManager",
    "AppRunResult",
    "EnTask",
    "PLATFORMS",
    "Pipeline",
    "PilotAgent",
    "ResourceDescription",
    "RunProfile",
    "Stage",
    "TaskState",
    "platform_cluster",
]
