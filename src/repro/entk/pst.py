"""The PST model: Pipeline → Stage → Task.

"EnTK PST stands for Pipeline-Stage-Task, where Pipeline is a sequence
of Stages, and each Stage is a set of independent computing Tasks.
Multiple pipelines can be executed concurrently, while stages, within
each pipeline, are executed sequentially."
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional


class TaskState(enum.Enum):
    """EnTK task lifecycle (§4: "control the execution state of a
    workflow and its every task individually")."""

    NEW = "new"
    SCHEDULED = "scheduled"   # assigned by the agent scheduler, pending launch
    EXECUTING = "executing"
    DONE = "done"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (TaskState.DONE, TaskState.FAILED)


_task_counter = itertools.count()


@dataclass(eq=False)
class EnTask:
    """One computing task: an executable with a node-level footprint.

    The ExaConstit profile from §4.3, for example, is
    ``EnTask(nodes=8, cores_per_node=56, gpus_per_node=8,
    duration=...)`` — 8 MPI ranks per node with the 7CPUs-1GPU
    decomposition.
    """

    duration: Optional[float] = None
    work: Optional[Callable] = None
    nodes: int = 1
    cores_per_node: int = 1
    gpus_per_node: int = 0
    name: str = field(default_factory=lambda: f"task-{next(_task_counter):06d}")
    #: Tag carried through profiling (e.g. which UQ case this is).
    tags: dict = field(default_factory=dict)

    # Lifecycle (filled by the agent).
    state: TaskState = TaskState.NEW
    attempts: int = 0
    submit_time: Optional[float] = None
    schedule_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    executed_on: list = field(default_factory=list)
    failure_causes: list = field(default_factory=list)

    def __post_init__(self):
        if (self.duration is None) == (self.work is None):
            raise ValueError("Provide exactly one of duration= or work=")
        if self.nodes <= 0 or self.cores_per_node <= 0:
            raise ValueError("nodes and cores_per_node must be positive")
        if self.gpus_per_node < 0:
            raise ValueError("gpus_per_node must be non-negative")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    @property
    def total_gpus(self) -> int:
        return self.nodes * self.gpus_per_node

    @property
    def runtime(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def reset_for_retry(self) -> None:
        """Prepare the task for resubmission (keeps attempt history)."""
        self.state = TaskState.NEW
        self.schedule_time = None
        self.start_time = None
        self.end_time = None

    def __repr__(self) -> str:
        return f"<EnTask {self.name} {self.state.value} {self.nodes}n>"


@dataclass(eq=False)
class Stage:
    """A set of independent tasks executed concurrently."""

    tasks: list = field(default_factory=list)
    name: str = ""

    def add_task(self, task: EnTask) -> EnTask:
        self.tasks.append(task)
        return task

    def add_tasks(self, tasks: Iterable[EnTask]) -> None:
        self.tasks.extend(tasks)

    @property
    def done(self) -> bool:
        return all(t.state == TaskState.DONE for t in self.tasks)

    def unfinished_tasks(self) -> list:
        return [t for t in self.tasks if t.state != TaskState.DONE]

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:
        return f"<Stage {self.name!r} {len(self.tasks)} tasks>"


@dataclass(eq=False)
class Pipeline:
    """A sequence of stages executed in order.

    Pipelines may grow while running: §4 highlights that EnTK can
    "handle the size of a workflow dynamically, e.g., create a new
    workflow stages based on the status of previously executed
    stages".  Set ``adaptor`` to a callable
    ``adaptor(pipeline, completed_stage) -> list[Stage] | None``; the
    AppManager invokes it after each stage completes and appends
    whatever stages it returns.
    """

    stages: list = field(default_factory=list)
    name: str = ""
    adaptor: Optional[Callable] = None

    def add_stage(self, stage: Stage) -> Stage:
        self.stages.append(stage)
        return stage

    @property
    def done(self) -> bool:
        return all(s.done for s in self.stages)

    def task_count(self) -> int:
        return sum(len(s) for s in self.stages)

    def all_tasks(self) -> list:
        return [t for s in self.stages for t in s.tasks]

    def validate(self) -> None:
        if not self.stages:
            raise ValueError(f"Pipeline {self.name!r} has no stages")
        for stage in self.stages:
            if not stage.tasks:
                raise ValueError(
                    f"Stage {stage.name!r} in pipeline {self.name!r} is empty"
                )

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        return f"<Pipeline {self.name!r} {len(self.stages)} stages, {self.task_count()} tasks>"
