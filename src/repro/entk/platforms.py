"""Resource configurations for the §4.3 platform progression.

"Developed EnTK applications are easily reconfigured for each platform
via its resource configuration."  Node shapes follow the paper's
accounting: Frontier's 100% utilization baseline is 448,000 CPU cores
(56 usable per node — 8 of 64 reserved for system processes) and
64,000 GPUs (8 GCDs per node) over 8000 nodes.
"""

from __future__ import annotations

from repro.cluster import Cluster, NodeSpec
from repro.simkernel import Environment

#: Node-type catalogue keyed by platform name.
PLATFORMS: dict[str, NodeSpec] = {
    # OLCF Frontier: 64 cores (56 usable), 4x MI250X = 8 GCDs.
    "frontier": NodeSpec(
        "frontier", cores=56, gpus=8, memory_gb=512.0, speed=1.0
    ),
    # OLCF Crusher: Frontier early-access testbed, same node shape.
    "crusher": NodeSpec("crusher", cores=56, gpus=8, memory_gb=512.0, speed=1.0),
    # OLCF Summit: 42 usable Power9 cores, 6 V100s, older generation.
    "summit": NodeSpec("summit", cores=42, gpus=6, memory_gb=512.0, speed=0.7),
}


def platform_cluster(env: Environment, platform: str, nodes: int) -> Cluster:
    """Build a cluster of ``nodes`` identical nodes of the platform type."""
    if platform not in PLATFORMS:
        raise KeyError(
            f"Unknown platform {platform!r}; choose from {sorted(PLATFORMS)}"
        )
    if nodes <= 0:
        raise ValueError("nodes must be positive")
    return Cluster(env, name=platform, pools=[(PLATFORMS[platform], nodes)])
