"""The EnTK AppManager: pipelines in, pilot jobs out.

"Using EnTK allowed us to abandon the manual creation and management
of batch scripts in favor of having a single ensemble manager to
handle everything in one large job or subsequent smaller jobs
submissions."  (§4.2)

The AppManager:

1. sizes and submits a pilot **batch job** for the work at hand,
2. runs every pipeline concurrently inside the pilot (stages
   sequentially, stage tasks concurrently through the
   :class:`~repro.entk.agent.PilotAgent`),
3. collects per-job :class:`~repro.entk.profiling.RunProfile` data, and
4. if the job ends (walltime, node exhaustion) with unfinished tasks,
   submits a **consecutive, smaller job** sized to the remaining work —
   EnTK's cross-job fault tolerance ("re-submitted job size is smaller
   and correlates to the number of failed tasks", §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.entk.agent import AgentConfig, PilotAgent
from repro.entk.profiling import RunProfile
from repro.entk.pst import Pipeline, TaskState
from repro.rm.base import Job, ResourceRequest
from repro.rm.batch import BatchScheduler
from repro.simkernel import Environment


@dataclass(frozen=True)
class ResourceDescription:
    """What the AppManager asks the batch system for."""

    nodes: int
    walltime_s: float
    cores_per_node: int = 1
    gpus_per_node: int = 0
    agent: AgentConfig = field(default_factory=AgentConfig)
    max_jobs: int = 5  # consecutive submissions before giving up

    def __post_init__(self):
        if self.nodes <= 0:
            raise ValueError("nodes must be positive")
        if self.walltime_s <= 0:
            raise ValueError("walltime_s must be positive")
        if self.max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")


@dataclass
class AppRunResult:
    """Outcome of one AppManager.run() invocation."""

    pipelines: list
    profiles: list = field(default_factory=list)
    job_sizes: list = field(default_factory=list)
    succeeded: bool = False
    done: object = None  # kernel event

    @property
    def jobs_used(self) -> int:
        return len(self.profiles)

    def total_failures(self) -> int:
        return sum(p.tasks_failed_events for p in self.profiles)

    def tasks_done(self) -> int:
        return sum(
            1
            for pl in self.pipelines
            for t in pl.all_tasks()
            if t.state == TaskState.DONE
        )


class AppManager:
    """Drives PST pipelines through pilot jobs on a batch system."""

    def __init__(
        self,
        env: Environment,
        batch: BatchScheduler,
        resource: ResourceDescription,
    ):
        self.env = env
        self.batch = batch
        self.resource = resource

    def run(self, pipelines: list) -> AppRunResult:
        """Start executing; returns a live result whose ``done`` event
        triggers when all pipelines finish or retries are exhausted."""
        for p in pipelines:
            p.validate()
        result = AppRunResult(pipelines=list(pipelines))
        result.done = self.env.event()
        self.env.process(self._drive(result), name="entk-appmanager")
        return result

    # -- internals --------------------------------------------------------------

    def _drive(self, result: AppRunResult):
        res = self.resource
        for job_idx in range(res.max_jobs):
            remaining = self._remaining_tasks(result.pipelines)
            if not remaining:
                break
            if job_idx > 0:
                # Tasks stranded by the previous pilot (killed mid-run
                # or out of agent retries) go back to NEW for this job.
                for t in remaining:
                    if t.state != TaskState.NEW:
                        t.reset_for_retry()
            nodes_needed = self._size_job(remaining, first=(job_idx == 0))
            result.job_sizes.append(nodes_needed)
            job_state = {}
            job = Job(
                request=ResourceRequest(
                    nodes=nodes_needed,
                    cores_per_node=res.cores_per_node,
                    gpus_per_node=res.gpus_per_node,
                    walltime_s=res.walltime_s,
                ),
                work=self._pilot_work(result.pipelines, job_state),
                name=f"entk-pilot-{job_idx}",
                resilient=True,
            )
            self.batch.submit(job)
            yield job.completion
            agent = job_state.get("agent")
            if agent is not None:
                result.profiles.append(
                    RunProfile.from_agent(
                        agent, job_start=job.start_time, job_end=job.end_time
                    )
                )
        result.succeeded = all(p.done for p in result.pipelines)
        result.done.succeed(result)

    @staticmethod
    def _remaining_tasks(pipelines: list) -> list:
        return [
            t
            for pl in pipelines
            for stage in pl.stages
            for t in stage.tasks
            if t.state != TaskState.DONE
        ]

    def _size_job(self, remaining: list, first: bool) -> int:
        """First job: the full request.  Follow-ups: sized to the
        remaining work (capped at the original request)."""
        if first:
            return self.resource.nodes
        needed = sum(t.nodes for t in remaining)
        return max(1, min(self.resource.nodes, needed))

    def _pilot_work(self, pipelines: list, job_state: dict):
        """Build the batch-job payload: bootstrap an agent, run stages."""

        def work(env, job, nodes):
            from repro.simkernel import Interrupt

            agent = PilotAgent(env, nodes, config=self.resource.agent, name=job.name)
            job_state["agent"] = agent
            runners = [
                env.process(self._run_pipeline(agent, pl), name=f"pl:{pl.name}")
                for pl in pipelines
                if not pl.done
            ]
            try:
                yield env.all_of(runners)
            except Interrupt as intr:
                # Pilot terminated (walltime).  Tear down in order:
                # stop the agent (fails in-flight tasks), then the
                # pipeline drivers, absorbing their failures.
                agent.shutdown(cause=str(intr.cause))
                for r in runners:
                    if r.is_alive:
                        r.interrupt(cause=intr.cause)
                for r in runners:
                    if r.is_alive:
                        try:
                            yield r
                        # simlint: disable=RES001 -- teardown drain: runner outcomes are deliberately absorbed; the original interrupt re-raises below
                        except BaseException:
                            pass
                raise

        return work

    def _run_pipeline(self, agent: PilotAgent, pipeline: Pipeline):
        # Index-based iteration: the adaptor may append stages while we
        # run (§4's dynamic workflow sizing).
        idx = 0
        while idx < len(pipeline.stages):
            stage = pipeline.stages[idx]
            idx += 1
            todo = [t for t in stage.tasks if t.state != TaskState.DONE]
            if todo:
                done, failed = yield from agent.run_stage(todo)
                if failed:
                    # Order-preserving: do not start the next stage with
                    # holes in this one; the next pilot job resumes here.
                    return
            if pipeline.adaptor is not None:
                new_stages = pipeline.adaptor(pipeline, stage) or []
                for new_stage in new_stages:
                    pipeline.add_stage(new_stage)
