"""A Cromwell-like execution engine for parsed WDL documents.

Executes a :class:`~repro.jaws.wdl.WdlDocument` against the simulated
batch substrate with the features §6 leans on:

- **dataflow scheduling** — independent calls run concurrently; a call
  waits only for the calls whose outputs it references,
- **scatter** — one shard per collection element, with an optional
  concurrency cap (the fair-share guard of §6.2),
- **call caching** — "detect when an identical task has been run in
  the past and avoid re-computing the results": results are keyed by
  (task, container digest, evaluated inputs),
- **per-shard overhead** — container start + file staging costs paid by
  every task execution; this is what task fusion (E7) eliminates.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.jaws.wdl import (
    ArrayLit,
    Attr,
    FuncCall,
    Ident,
    Literal,
    WdlCall,
    WdlDocument,
    WdlParseError,
    WdlScatter,
    WdlTask,
)
from repro.rm.base import Job, JobState, ResourceRequest
from repro.rm.batch import BatchScheduler
from repro.simkernel import Environment, Resource


class WdlRuntimeError(RuntimeError):
    """Evaluation failure (missing input, task failure, bad expr...)."""


@dataclass(frozen=True)
class EngineOptions:
    """Cost model and policy knobs."""

    container_start_s: float = 5.0
    #: Per-execution file staging / shard bookkeeping overhead — the
    #: "strain on the filesystem" §6.1 says fusion reduces.
    stage_overhead_s: float = 8.0
    default_task_runtime_s: float = 60.0
    default_walltime_s: float = 4 * 3600.0
    #: Cap on concurrently running scatter shards (None = unbounded,
    #: the §6.2 anti-pattern).
    max_scatter_concurrency: Optional[int] = None
    call_caching: bool = True

    def __post_init__(self):
        if self.container_start_s < 0 or self.stage_overhead_s < 0:
            raise ValueError("overheads must be non-negative")
        if self.max_scatter_concurrency is not None and self.max_scatter_concurrency < 1:
            raise ValueError("max_scatter_concurrency must be >= 1")


@dataclass
class CallRecord:
    """One task execution (or cache hit)."""

    call_name: str
    task_name: str
    shard: Optional[int] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    cached: bool = False
    cores: int = 1

    @property
    def runtime(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time


@dataclass
class WdlRunResult:
    workflow_name: str
    records: list = field(default_factory=list)
    outputs: dict = field(default_factory=dict)
    t_start: float = 0.0
    t_end: Optional[float] = None
    succeeded: bool = False
    error: Optional[str] = None
    done: Any = None

    @property
    def makespan(self) -> Optional[float]:
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    @property
    def shard_count(self) -> int:
        """Number of actual task executions (cache hits excluded)."""
        return sum(1 for r in self.records if not r.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cached)


def parse_memory_gb(value: Any, default: float = 2.0) -> float:
    """Parse a WDL runtime memory string like ``"8 GB"`` / ``"512 MB"``."""
    if value is None:
        return default
    if isinstance(value, (int, float)):
        return float(value)
    m = re.match(r"\s*([\d.]+)\s*([GMK]i?B?)?\s*$", str(value), re.IGNORECASE)
    if not m:
        raise WdlRuntimeError(f"Cannot parse memory {value!r}")
    qty = float(m.group(1))
    unit = (m.group(2) or "GB").upper()
    if unit.startswith("G"):
        return qty
    if unit.startswith("M"):
        return qty / 1000.0
    if unit.startswith("K"):
        return qty / 1e6
    return qty


class CromwellEngine:
    """Executes WDL documents on a batch scheduler."""

    def __init__(
        self,
        env: Environment,
        batch: BatchScheduler,
        options: Optional[EngineOptions] = None,
    ):
        self.env = env
        self.batch = batch
        self.options = options or EngineOptions()
        #: Cross-run call cache: key -> outputs dict.
        self._cache: dict = {}
        #: Per-task cost-model cache (docker, cores, duration, total,
        #: request, has_file_output, task).  A 10k-shard scatter
        #: re-reads the same task's runtime section 10k times; the
        #: values are static per document, so resolve them once.
        self._task_info: dict[int, tuple] = {}
        #: The options object the cache was derived from; operators may
        #: swap ``engine.options`` (e.g. raise the walltime and
        #: resubmit), which invalidates every cached request.
        self._task_info_opts = self.options

    def run(self, document: WdlDocument, inputs: Optional[dict] = None) -> WdlRunResult:
        """Start executing; drive the simulation to completion via
        ``env.run(until=result.done)``."""
        document.validate()
        wf = document.workflow
        result = WdlRunResult(workflow_name=wf.name, t_start=self.env.now)
        result.done = self.env.event()
        self.env.process(
            self._execute(document, dict(inputs or {}), result),
            name=f"cromwell:{wf.name}",
        )
        return result

    # -- execution ----------------------------------------------------------------

    def _execute(self, document: WdlDocument, inputs: dict, result: WdlRunResult):
        wf = document.workflow
        try:
            scope: dict = {}
            for decl in wf.inputs:
                if decl.name in inputs:
                    scope[decl.name] = inputs[decl.name]
                elif decl.expr is not None:
                    scope[decl.name] = yield from self._eval(decl.expr, scope, {})
                else:
                    raise WdlRuntimeError(
                        f"Missing required workflow input {decl.name!r}"
                    )
            call_events: dict = {}
            scatter_gate = (
                Resource(self.env, self.options.max_scatter_concurrency)
                if self.options.max_scatter_concurrency
                else None
            )
            procs = []
            self._launch_body(
                document, wf.body, scope, call_events, result, procs, scatter_gate
            )
            if procs:
                yield self.env.all_of(procs)
            # Workflow outputs.
            for decl in wf.outputs:
                result.outputs[decl.name] = yield from self._eval(
                    decl.expr, scope, call_events
                )
            result.succeeded = True
        except (WdlRuntimeError, WdlParseError) as exc:
            result.succeeded = False
            result.error = str(exc)
        finally:
            result.t_end = self.env.now
            result.done.succeed(result)

    def _launch_body(
        self, document, body, scope, call_events, result, procs, scatter_gate
    ):
        for item in body:
            if isinstance(item, WdlCall):
                ev = self.env.event()
                call_events[item.name] = ev
                procs.append(
                    self.env.process(
                        self._run_call(
                            document, item, dict(scope), call_events, result,
                            ev, shard=None, gate=None,
                        ),
                        name=f"call:{item.name}",
                    )
                )
            elif isinstance(item, WdlScatter):
                ev = self.env.event()
                # A scatter's calls publish arrays keyed by call name.
                procs.append(
                    self.env.process(
                        self._run_scatter(
                            document, item, dict(scope), call_events, result,
                            scatter_gate,
                        ),
                        name=f"scatter:{item.variable}",
                    )
                )
            else:  # pragma: no cover - parser only produces the above
                raise WdlRuntimeError(f"Unknown body item {item!r}")

    def _run_scatter(self, document, scatter, scope, call_events, result, gate):
        collection = yield from self._eval(
            scatter.collection, scope, call_events
        )
        if not isinstance(collection, (list, tuple)):
            raise WdlRuntimeError(
                f"scatter needs an array, got {type(collection).__name__}"
            )
        # Pre-create one event per inner call, carrying per-shard lists.
        inner_calls = [c for c in scatter.body if isinstance(c, WdlCall)]
        if len(inner_calls) != len(scatter.body):
            # The parser accepts nested scatters; the engine does not
            # execute them yet.  Fail loudly rather than silently
            # dropping work.
            raise WdlRuntimeError(
                "nested scatters are parsed but not executable; flatten "
                "the inner scatter or precompute its product as an array"
            )
        if self.env.tracer.enabled:
            self.env.tracer.instant(
                "scatter",
                category="jaws.scatter",
                component="cromwell",
                tags={"variable": scatter.variable, "shards": len(collection)},
            )
        shard_events: dict = {c.name: [] for c in inner_calls}
        procs = []
        for idx, value in enumerate(collection):
            shard_scope = dict(scope)
            shard_scope[scatter.variable] = value
            shard_call_events = dict(call_events)
            for call in inner_calls:
                ev = self.env.event()
                shard_events[call.name].append(ev)
                shard_call_events[call.name] = ev
                procs.append(
                    self.env.process(
                        self._run_call(
                            document, call, shard_scope, shard_call_events,
                            result, ev, shard=idx, gate=gate,
                        ),
                        name=f"call:{call.name}[{idx}]",
                    )
                )
        # Publish array-valued results for references after the scatter.
        for call in inner_calls:
            agg = self.env.event()
            call_events[call.name] = agg
            self.env.process(
                self._aggregate(shard_events[call.name], agg),
                name=f"gather:{call.name}",
            )
        if procs:
            yield self.env.all_of(procs)

    def _aggregate(self, events: list, target):
        if events:
            yield self.env.all_of(events)
            values = [e.value for e in events]
        else:
            values = []
            yield self.env.timeout(0)
        # Merge per-shard namespaces into arrays per output key.
        merged: dict = {}
        for ns in values:
            for k, v in ns.items():
                merged.setdefault(k, []).append(v)
        target.succeed(merged)

    def _run_call(
        self, document, call, scope, call_events, result, event, shard, gate
    ):
        task: WdlTask = document.tasks[call.task_name]
        record = CallRecord(
            call_name=call.name, task_name=task.name, shard=shard
        )
        result.records.append(record)
        # Evaluate the call's inputs (waits on referenced calls).
        # Literal and in-scope Ident are synchronous no-wait shapes —
        # the common case for scatter shards — so they skip the
        # generator round-trip through _eval.
        bound: dict = {}
        for pname, expr in call.inputs.items():
            if isinstance(expr, Literal):
                bound[pname] = expr.value
            elif isinstance(expr, Ident) and expr.name in scope:
                bound[pname] = scope[expr.name]
            else:
                bound[pname] = yield from self._eval(expr, scope, call_events)
        for decl in task.inputs:
            if decl.name not in bound:
                if decl.expr is not None:
                    bound[decl.name] = yield from self._eval(decl.expr, bound, {})
                elif decl.name in scope:
                    bound[decl.name] = scope[decl.name]
                else:
                    raise WdlRuntimeError(
                        f"call {call.name!r}: missing input {decl.name!r}"
                    )

        # The task's cost model (docker image, resources, duration) is a
        # pure function of its runtime{} section — static per document —
        # so a 10k-shard scatter resolves it once, not 10k times.  The
        # shared frozen ResourceRequest is safe: schedulers only read it.
        if self._task_info_opts is not self.options:
            self._task_info.clear()
            self._task_info_opts = self.options
        info = self._task_info.get(id(task))
        if info is None:
            docker = str(task.runtime_value("docker", "ubuntu:latest"))
            cores = int(task.runtime_value("cpu", 1))
            memory = parse_memory_gb(task.runtime_value("memory"))
            minutes = task.runtime_value("runtime_minutes")
            duration = (
                float(minutes) * 60.0
                if minutes is not None
                else self.options.default_task_runtime_s
            )
            total = (
                self.options.container_start_s
                + self.options.stage_overhead_s
                + duration
            )
            request = ResourceRequest(
                nodes=1,
                cores_per_node=cores,
                memory_gb_per_node=memory,
                # The facility's per-job walltime template; a call
                # whose work exceeds it is killed by the batch
                # system, exactly like real Cromwell backends.
                walltime_s=self.options.default_walltime_s,
            )
            has_file_output = any(d.type.name == "File" for d in task.outputs)
            # The task object rides along in the value so ``id(task)``
            # cannot be recycled for a different object while cached.
            info = (docker, cores, duration, total, request,
                    has_file_output, task)
            self._task_info[id(task)] = info
        docker, cores, duration, total, request, has_file_output, _ = info

        tracer = self.env.tracer
        # The cache key (and the content id derived from it) is only
        # consulted when call caching is on or a File output embeds the
        # content id in its path; a scatter of plain value outputs skips
        # the per-shard repr/sort entirely.
        if self.options.call_caching or has_file_output:
            cache_key = (
                task.name,
                docker,
                tuple(sorted((k, repr(v)) for k, v in bound.items())),
            )
        else:
            cache_key = None
        if self.options.call_caching and cache_key in self._cache:
            record.cached = True
            record.start_time = record.end_time = self.env.now
            # Zero-duration span: the cache hit is visible in the trace
            # as a call that cost nothing.
            if tracer.enabled:
                tracer.start(
                    call.name + (f"[{shard}]" if shard is not None else ""),
                    category="jaws.call",
                    component="cromwell",
                    tags={"task": task.name, "shard": shard, "cached": True},
                ).finish()
            event.succeed(self._cache[cache_key])
            return

        if tracer.enabled:
            call_span = tracer.start(
                call.name + (f"[{shard}]" if shard is not None else ""),
                category="jaws.call",
                component="cromwell",
                tags={"task": task.name, "shard": shard, "cached": False},
            )
            # Expose the cost split on the span so trace analysis can
            # attribute shard time to overhead vs useful compute
            # without re-deriving the engine's cost model.
            call_span.tag(
                container_start_s=self.options.container_start_s,
                stage_overhead_s=self.options.stage_overhead_s,
                compute_s=duration,
            )
        else:
            call_span = None
        if gate is not None:
            req = gate.request()
            yield req
        else:
            req = None
        try:
            record.cores = cores
            record.start_time = self.env.now
            job = Job(
                request=request,
                duration=total,
                name=f"{result.workflow_name}/{call.name}"
                + (f"[{shard}]" if shard is not None else ""),
                user="jaws",
            )
            self.batch.submit(job)
            yield job.completion
            record.end_time = self.env.now
            if job.state != JobState.COMPLETED:
                raise WdlRuntimeError(
                    f"call {call.name!r} failed: {job.failure_cause!r}"
                )
        finally:
            # record.end_time is only set once the job completed; any
            # earlier exception leaves the call aborted.
            outcome = job.state.value if record.end_time is not None else "aborted"
            if call_span is not None:
                call_span.tag(state=outcome).finish()
            if req is not None:
                gate.release(req)

        outputs = {}
        # File outputs carry content identity: the same logical filename
        # produced from different inputs is a different file, so the
        # digest of the bound inputs goes into the synthesized path
        # (keeps downstream call-cache keys honest).
        content_id = None
        for decl in task.outputs:
            expr = decl.expr
            if isinstance(expr, Literal):
                value = expr.value
            elif isinstance(expr, Ident) and expr.name in bound:
                value = bound[expr.name]
            else:
                value = yield from self._eval(expr, bound, {})
            if decl.type.name == "File" and isinstance(value, str):
                if content_id is None:
                    content_id = hashlib.sha256(
                        repr(cache_key).encode()
                    ).hexdigest()[:8]
                value = f"{call.name}-{content_id}/{value}"
            outputs[decl.name] = value
        if self.options.call_caching:
            self._cache[cache_key] = outputs
        event.succeed(outputs)

    # -- expression evaluation ------------------------------------------------------

    def _eval(self, expr, scope: dict, call_events: dict):
        """Generator evaluating an expression, waiting on call results."""
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ArrayLit):
            values = []
            for item in expr.items:
                values.append((yield from self._eval(item, scope, call_events)))
            return values
        if isinstance(expr, Ident):
            if expr.name in scope:
                return scope[expr.name]
            raise WdlRuntimeError(f"Unknown identifier {expr.name!r}")
        if isinstance(expr, Attr):
            if not isinstance(expr.base, Ident):
                raise WdlRuntimeError("Only call.output references are supported")
            cname = expr.base.name
            if cname in call_events:
                ev = call_events[cname]
                if not (ev.callbacks is None):  # not yet processed
                    yield ev
                namespace = ev.value
            elif cname in scope and isinstance(scope[cname], dict):
                namespace = scope[cname]
            else:
                raise WdlRuntimeError(f"Unknown call reference {cname!r}")
            if expr.attr not in namespace:
                raise WdlRuntimeError(
                    f"call {cname!r} has no output {expr.attr!r}"
                )
            return namespace[expr.attr]
        if isinstance(expr, FuncCall):
            args = []
            for a in expr.args:
                args.append((yield from self._eval(a, scope, call_events)))
            if expr.name == "range":
                return list(range(int(args[0])))
            if expr.name == "length":
                return len(args[0])
            if expr.name == "sub":
                return str(args[0]).replace(str(args[1]), str(args[2]))
            raise WdlRuntimeError(f"Unknown function {expr.name!r}")
        raise WdlRuntimeError(f"Cannot evaluate {expr!r}")
