"""A from-scratch parser for a practical WDL subset.

Supported grammar (enough for the JGI-style workflows of §6)::

    version 1.0

    task NAME {
        input { TYPE name [= literal] ... }
        command <<< ...raw shell... >>>
        output { TYPE name = expr ... }
        runtime { key: expr ... }
    }

    workflow NAME {
        input { TYPE name [= literal] ... }
        call TASK [as ALIAS] [{ input: a = expr, b = expr }]
        scatter (x in expr) { <calls or nested scatters> }
        output { TYPE name = expr ... }
    }

Types: ``File String Int Float Boolean Array[T]``.  Expressions:
identifiers, dotted references (``call.output``), literals, arrays,
and calls ``range(n)`` / ``length(x)`` / ``sub(s, a, b)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional


class WdlParseError(ValueError):
    """Syntax or structural error in a WDL document."""


# -- AST ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WdlType:
    name: str
    item: Optional["WdlType"] = None  # for Array[T]

    def __str__(self) -> str:
        return f"{self.name}[{self.item}]" if self.item else self.name


@dataclass(frozen=True)
class Declaration:
    """``TYPE name [= expr]`` in an input/output block."""

    type: WdlType
    name: str
    expr: Any = None  # parsed expression or None


@dataclass(frozen=True)
class Ident:
    name: str


@dataclass(frozen=True)
class Attr:
    base: Any
    attr: str


@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class FuncCall:
    name: str
    args: tuple


@dataclass(frozen=True)
class ArrayLit:
    items: tuple


@dataclass
class WdlTask:
    name: str
    inputs: list = field(default_factory=list)
    command: str = ""
    outputs: list = field(default_factory=list)
    runtime: dict = field(default_factory=dict)

    def runtime_value(self, key: str, default=None):
        expr = self.runtime.get(key)
        if expr is None:
            return default
        if isinstance(expr, Literal):
            return expr.value
        return expr


@dataclass
class WdlCall:
    task_name: str
    alias: Optional[str] = None
    inputs: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.alias or self.task_name


@dataclass
class WdlScatter:
    variable: str
    collection: Any
    body: list = field(default_factory=list)


@dataclass
class WdlWorkflow:
    name: str
    inputs: list = field(default_factory=list)
    body: list = field(default_factory=list)  # WdlCall | WdlScatter
    outputs: list = field(default_factory=list)

    def calls(self) -> list:
        """All calls, including inside scatters, in document order."""
        found = []

        def walk(items):
            for item in items:
                if isinstance(item, WdlCall):
                    found.append(item)
                else:
                    walk(item.body)

        walk(self.body)
        return found


@dataclass
class WdlDocument:
    version: str
    tasks: dict = field(default_factory=dict)
    workflow: Optional[WdlWorkflow] = None

    def validate(self) -> None:
        """Check structural invariants beyond syntax."""
        if self.workflow is None:
            raise WdlParseError("Document has no workflow block")
        names = set()
        for call in self.workflow.calls():
            if call.task_name not in self.tasks:
                raise WdlParseError(
                    f"call references unknown task {call.task_name!r}"
                )
            if call.name in names:
                raise WdlParseError(
                    f"duplicate call name {call.name!r}; use 'as' aliases"
                )
            names.add(call.name)


# -- tokenizer ------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<command><<<.*?>>>)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[{}()\[\]=:,.])
    """,
    re.VERBOSE | re.DOTALL,
)


def _tokenize(text: str) -> list:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            line = text.count("\n", 0, pos) + 1
            raise WdlParseError(f"Unexpected character {text[pos]!r} at line {line}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, m.group()))
    tokens.append(("eof", ""))
    return tokens


# -- parser ------------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list):
        self.tokens = tokens
        self.i = 0

    # token helpers ------------------------------------------------------

    def peek(self) -> tuple:
        return self.tokens[self.i]

    def next(self) -> tuple:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        k, v = self.next()
        if k != kind or (value is not None and v != value):
            raise WdlParseError(
                f"Expected {value or kind!r}, got {v!r} (token {self.i - 1})"
            )
        return v

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[str]:
        k, v = self.peek()
        if k == kind and (value is None or v == value):
            self.i += 1
            return v
        return None

    # document ------------------------------------------------------------

    def parse_document(self) -> WdlDocument:
        version = "1.0"
        if self.accept("ident", "version"):
            k, v = self.next()
            version = v
        doc = WdlDocument(version=version)
        while self.peek()[0] != "eof":
            kw = self.expect("ident")
            if kw == "task":
                task = self.parse_task()
                if task.name in doc.tasks:
                    raise WdlParseError(f"duplicate task {task.name!r}")
                doc.tasks[task.name] = task
            elif kw == "workflow":
                if doc.workflow is not None:
                    raise WdlParseError("multiple workflow blocks")
                doc.workflow = self.parse_workflow()
            else:
                raise WdlParseError(f"Expected 'task' or 'workflow', got {kw!r}")
        return doc

    # task ------------------------------------------------------------------

    def parse_task(self) -> WdlTask:
        name = self.expect("ident")
        task = WdlTask(name=name)
        self.expect("punct", "{")
        while not self.accept("punct", "}"):
            section = self.expect("ident")
            if section == "input":
                task.inputs = self.parse_declarations()
            elif section == "command":
                k, v = self.next()
                if k != "command":
                    raise WdlParseError("command must be a <<< ... >>> block")
                task.command = v[3:-3].strip()
            elif section == "output":
                task.outputs = self.parse_declarations(require_expr=True)
            elif section == "runtime":
                task.runtime = self.parse_runtime()
            else:
                raise WdlParseError(f"Unknown task section {section!r}")
        return task

    def parse_declarations(self, require_expr: bool = False) -> list:
        self.expect("punct", "{")
        decls = []
        while not self.accept("punct", "}"):
            typ = self.parse_type()
            name = self.expect("ident")
            expr = None
            if self.accept("punct", "="):
                expr = self.parse_expr()
            elif require_expr:
                raise WdlParseError(f"output {name!r} needs '= expr'")
            decls.append(Declaration(type=typ, name=name, expr=expr))
            self.accept("punct", ",")  # commas between decls are optional
        return decls

    def parse_type(self) -> WdlType:
        base = self.expect("ident")
        if base not in ("File", "String", "Int", "Float", "Boolean", "Array"):
            raise WdlParseError(f"Unknown type {base!r}")
        if base == "Array":
            self.expect("punct", "[")
            item = self.parse_type()
            self.expect("punct", "]")
            return WdlType("Array", item)
        return WdlType(base)

    def parse_runtime(self) -> dict:
        self.expect("punct", "{")
        entries = {}
        while not self.accept("punct", "}"):
            key = self.expect("ident")
            self.expect("punct", ":")
            entries[key] = self.parse_expr()
            self.accept("punct", ",")  # commas between entries are optional
        return entries

    # workflow ---------------------------------------------------------------

    def parse_workflow(self) -> WdlWorkflow:
        name = self.expect("ident")
        wf = WdlWorkflow(name=name)
        self.expect("punct", "{")
        while not self.accept("punct", "}"):
            kw = self.expect("ident")
            if kw == "input":
                wf.inputs = self.parse_declarations()
            elif kw == "output":
                wf.outputs = self.parse_declarations(require_expr=True)
            elif kw == "call":
                wf.body.append(self.parse_call())
            elif kw == "scatter":
                wf.body.append(self.parse_scatter())
            else:
                raise WdlParseError(f"Unknown workflow element {kw!r}")
        return wf

    def parse_call(self) -> WdlCall:
        task_name = self.expect("ident")
        alias = None
        if self.accept("ident", "as"):
            alias = self.expect("ident")
        call = WdlCall(task_name=task_name, alias=alias)
        if self.accept("punct", "{"):
            self.expect("ident", "input")
            self.expect("punct", ":")
            while not self.accept("punct", "}"):
                pname = self.expect("ident")
                self.expect("punct", "=")
                call.inputs[pname] = self.parse_expr()
                self.accept("punct", ",")
        return call

    def parse_scatter(self) -> WdlScatter:
        self.expect("punct", "(")
        var = self.expect("ident")
        self.expect("ident", "in")
        collection = self.parse_expr()
        self.expect("punct", ")")
        self.expect("punct", "{")
        body = []
        while not self.accept("punct", "}"):
            kw = self.expect("ident")
            if kw == "call":
                body.append(self.parse_call())
            elif kw == "scatter":
                body.append(self.parse_scatter())
            else:
                raise WdlParseError(f"Unknown scatter element {kw!r}")
        return WdlScatter(variable=var, collection=collection, body=body)

    # expressions ---------------------------------------------------------------

    def parse_expr(self) -> Any:
        kind, value = self.peek()
        if kind == "string":
            self.next()
            return Literal(value[1:-1].replace('\\"', '"'))
        if kind == "int":
            self.next()
            return Literal(int(value))
        if kind == "float":
            self.next()
            return Literal(float(value))
        if kind == "punct" and value == "[":
            self.next()
            items = []
            while not self.accept("punct", "]"):
                items.append(self.parse_expr())
                self.accept("punct", ",")
            return ArrayLit(tuple(items))
        if kind == "ident":
            self.next()
            if value in ("true", "false"):
                return Literal(value == "true")
            # function call?
            if self.accept("punct", "("):
                args = []
                while not self.accept("punct", ")"):
                    args.append(self.parse_expr())
                    self.accept("punct", ",")
                return FuncCall(value, tuple(args))
            expr: Any = Ident(value)
            while self.accept("punct", "."):
                expr = Attr(expr, self.expect("ident"))
            return expr
        raise WdlParseError(f"Cannot parse expression at {value!r}")


def parse_wdl(text: str) -> WdlDocument:
    """Parse WDL source text into a validated :class:`WdlDocument`."""
    doc = _Parser(_tokenize(text)).parse_document()
    doc.validate()
    return doc


# -- rendering (AST -> source) ---------------------------------------------------


def _render_expr(expr: Any) -> str:
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        if isinstance(expr.value, str):
            return '"' + expr.value.replace('"', '\\"') + '"'
        return repr(expr.value)
    if isinstance(expr, Ident):
        return expr.name
    if isinstance(expr, Attr):
        return f"{_render_expr(expr.base)}.{expr.attr}"
    if isinstance(expr, FuncCall):
        return f"{expr.name}({', '.join(_render_expr(a) for a in expr.args)})"
    if isinstance(expr, ArrayLit):
        return "[" + ", ".join(_render_expr(i) for i in expr.items) + "]"
    raise WdlParseError(f"Cannot render expression {expr!r}")


def _render_decls(decls: list, indent: str) -> list:
    lines = []
    for d in decls:
        suffix = f" = {_render_expr(d.expr)}" if d.expr is not None else ""
        lines.append(f"{indent}{d.type} {d.name}{suffix}")
    return lines


def _render_call(call: WdlCall, indent: str) -> list:
    head = f"{indent}call {call.task_name}"
    if call.alias:
        head += f" as {call.alias}"
    if not call.inputs:
        return [head]
    lines = [head + " { input:"]
    for pname, expr in call.inputs.items():
        lines.append(f"{indent}    {pname} = {_render_expr(expr)},")
    lines.append(indent + "}")
    return lines


def _render_body(body: list, indent: str) -> list:
    lines = []
    for item in body:
        if isinstance(item, WdlCall):
            lines += _render_call(item, indent)
        else:
            lines.append(
                f"{indent}scatter ({item.variable} in "
                f"{_render_expr(item.collection)}) {{"
            )
            lines += _render_body(item.body, indent + "    ")
            lines.append(indent + "}")
    return lines


def render_wdl(document: WdlDocument) -> str:
    """Render a document back to WDL source (``parse_wdl``-compatible).

    Useful for exporting transformed workflows (e.g. after
    :func:`repro.jaws.migration.fuse_linear_chains`) as files a real
    Cromwell could consume.  Round-trips: parsing the rendered text
    reproduces the same AST.
    """
    lines = [f"version {document.version}", ""]
    for task in document.tasks.values():
        lines.append(f"task {task.name} {{")
        if task.inputs:
            lines.append("    input {")
            lines += _render_decls(task.inputs, "        ")
            lines.append("    }")
        lines.append("    command <<<")
        lines.append(task.command)
        lines.append("    >>>")
        if task.outputs:
            lines.append("    output {")
            lines += _render_decls(task.outputs, "        ")
            lines.append("    }")
        if task.runtime:
            lines.append("    runtime {")
            for key, expr in task.runtime.items():
                lines.append(f"        {key}: {_render_expr(expr)}")
            lines.append("    }")
        lines.append("}")
        lines.append("")
    wf = document.workflow
    if wf is not None:
        lines.append(f"workflow {wf.name} {{")
        if wf.inputs:
            lines.append("    input {")
            lines += _render_decls(wf.inputs, "        ")
            lines.append("    }")
        lines += _render_body(wf.body, "    ")
        if wf.outputs:
            lines.append("    output {")
            lines += _render_decls(wf.outputs, "        ")
            lines.append("    }")
        lines.append("}")
    return "\n".join(lines) + "\n"
