"""The central JAWS service: one front door, many compute sites.

"JAWS uses Globus and AWS S3 protocol to transfer data and code to
user-specified compute resources, subsequently executing the
computation by leveraging the Cromwell engine [...] and returning the
results."  Containers are pinned by sha256 digest (§6.2's version-
control guidance) and pulled once per site.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster import Cluster, NodeSpec
from repro.data.files import FileCatalog
from repro.data.storage import StorageSite
from repro.data.transfer import TransferService
from repro.jaws.engine import CromwellEngine, EngineOptions, WdlRunResult
from repro.jaws.wdl import WdlDocument
from repro.rm.batch import BatchScheduler
from repro.simkernel import Environment


@dataclass
class Site:
    """One compute facility registered with JAWS."""

    name: str
    cluster: Cluster
    batch: BatchScheduler
    storage: StorageSite
    engine: CromwellEngine
    #: Container digests already pulled here.
    pulled_images: set = field(default_factory=set)
    #: False while the facility is in a scheduled outage; the router
    #: skips unavailable sites and ``submit`` refuses them outright.
    available: bool = True


@dataclass
class SiteOutage:
    """Record of one scheduled site outage."""

    site: str
    start: float
    duration: Optional[float]  # None = never comes back
    ended_at: Optional[float] = None


@dataclass
class SubmissionResult:
    """What the user gets back from a JAWS submission."""

    run: WdlRunResult
    site: str
    staged_bytes: int = 0
    image_pulls: int = 0
    done: object = None


class JawsService:
    """Registry + router: stage inputs, pin containers, run, return."""

    #: Default JGI-adjacent site catalogue (§6.1 names these clusters).
    DEFAULT_SITES = (
        ("perlmutter", 16, 64, 2.0),
        ("tahoma", 8, 36, 1.4),
        ("dori", 4, 32, 1.0),
        ("lawrencium", 6, 32, 1.1),
    )

    def __init__(
        self,
        env: Environment,
        sites: Optional[list] = None,
        options: Optional[EngineOptions] = None,
        image_pull_s: float = 90.0,
    ):
        self.env = env
        self.options = options or EngineOptions()
        self.image_pull_s = image_pull_s
        self.catalog = FileCatalog()
        #: Central staging endpoint (the user's home institution / S3).
        self.home = StorageSite(env, "jaws-central", egress_mbps=800, ingress_mbps=800)
        self.sites: dict[str, Site] = {}
        self.transfer = TransferService(env, self.catalog, {"jaws-central": self.home})
        #: Image name -> pinned sha256 digest.
        self.image_digests: dict[str, str] = {}
        #: Scheduled outages, chronological.
        self.outages: list[SiteOutage] = []
        for spec in sites if sites is not None else self.DEFAULT_SITES:
            self.add_site(*spec)

    def add_site(self, name: str, nodes: int, cores: int, speed: float) -> Site:
        if name in self.sites:
            raise ValueError(f"Site {name!r} already registered")
        cluster = Cluster(
            self.env,
            name=name,
            pools=[(NodeSpec(name, cores=cores, memory_gb=256.0, speed=speed), nodes)],
        )
        batch = BatchScheduler(self.env, cluster)
        storage = StorageSite(self.env, name, egress_mbps=2000, ingress_mbps=2000)
        site = Site(
            name=name,
            cluster=cluster,
            batch=batch,
            storage=storage,
            engine=CromwellEngine(self.env, batch, self.options),
        )
        self.sites[name] = site
        self.transfer.add_site(storage)
        return site

    # -- fault injection -------------------------------------------------------

    def schedule_outage(
        self, site_name: str, at: float, duration: Optional[float] = None
    ) -> SiteOutage:
        """Take a whole site offline at ``at`` for ``duration`` seconds.

        Validated now (unknown site / past time raise immediately).  The
        outage marks the site unavailable to the router, fails every
        node (interrupting work in flight, exactly like a facility power
        event), and — when ``duration`` is given — brings the nodes back
        and re-opens the site afterwards.
        """
        if site_name not in self.sites:
            raise ValueError(
                f"unknown site {site_name!r}; registered: {sorted(self.sites)}"
            )
        if at < self.env.now:
            raise ValueError(f"outage time {at} is in the past (now={self.env.now})")
        if duration is not None and duration <= 0:
            raise ValueError("outage duration must be positive (or None)")
        outage = SiteOutage(site=site_name, start=at, duration=duration)
        self.outages.append(outage)
        self.env.process(
            self._run_outage(self.sites[site_name], outage),
            name=f"outage@{at}:{site_name}",
        )
        return outage

    def _run_outage(self, site: Site, outage: SiteOutage):
        yield self.env.timeout(outage.start - self.env.now)
        site.available = False
        for node in site.cluster.up_nodes:
            node.fail()
        if outage.duration is None:
            return
        yield self.env.timeout(outage.duration)
        for node in site.cluster.nodes:
            if not node.is_up:
                node.recover()
        site.available = True
        outage.ended_at = self.env.now

    # -- container pinning ----------------------------------------------------

    def pin_image(self, image: str) -> str:
        """Resolve an image name to a deterministic sha256 digest."""
        digest = "sha256:" + hashlib.sha256(image.encode()).hexdigest()[:16]
        self.image_digests[image] = digest
        return digest

    def image_digest(self, image: str) -> Optional[str]:
        return self.image_digests.get(image)

    # -- submission --------------------------------------------------------------

    def pick_site(self, document: WdlDocument) -> str:
        """Route a workflow to the site with the best estimated finish.

        §6.3: "adopting workflow managers to route jobs and data across
        multiple sites seamlessly".  Estimate per site = (queued work +
        this workflow's nominal work) / (site cores × speed).
        """
        nominal_s = sum(
            float(t.runtime_value("runtime_minutes", 1.0)) * 60.0
            for t in document.tasks.values()
        ) * max(1, len(document.workflow.calls()))

        def score(site: Site) -> tuple:
            capacity = sum(
                n.spec.cores * n.spec.speed for n in site.cluster.nodes
            )
            queued = sum(
                j.request.total_cores * j.request.walltime_s
                for j in site.batch.queue
            )
            running = sum(
                j.request.total_cores * j.request.walltime_s
                for j in site.batch.running
            )
            return ((queued + running + nominal_s) / capacity, site.name)

        candidates = [s for s in self.sites.values() if s.available]
        if not candidates:
            raise RuntimeError("no JAWS site is available (all in outage)")
        return min(candidates, key=score).name

    def submit(
        self,
        document: WdlDocument,
        inputs: Optional[dict] = None,
        site_name: str = "auto",
        input_files: Optional[list] = None,
    ) -> SubmissionResult:
        """Submit a workflow; returns a live SubmissionResult.

        ``site_name="auto"`` routes to the least-loaded capable site
        (see :meth:`pick_site`).  ``input_files`` are
        :class:`~repro.data.files.File` objects staged from the central
        endpoint to the site before execution.
        """
        if site_name == "auto":
            site_name = self.pick_site(document)
        if site_name not in self.sites:
            raise KeyError(
                f"Unknown site {site_name!r}; registered: {sorted(self.sites)}"
            )
        site = self.sites[site_name]
        if not site.available:
            raise RuntimeError(
                f"site {site_name!r} is in a scheduled outage; "
                f"resubmit elsewhere or wait for recovery"
            )
        result = SubmissionResult(run=None, site=site_name)
        result.done = self.env.event()
        self.env.process(
            self._submit(document, dict(inputs or {}), site, list(input_files or []),
                         result),
            name=f"jaws:{document.workflow.name}@{site_name}",
        )
        return result

    def _submit(self, document, inputs, site: Site, input_files, result):
        # 1. Globus-stage inputs to the site.
        for f in input_files:
            if f.name not in self.catalog:
                self.catalog.register(f, site="jaws-central")
        if input_files:
            before = self.transfer.total_bytes_moved()
            yield self.env.process(
                self.transfer.stage_in(input_files, site.name, prefer="jaws-central")
            )
            result.staged_bytes = self.transfer.total_bytes_moved() - before
        # 2. Pull any containers the tasks pin, once per site.
        for task in document.tasks.values():
            image = task.runtime_value("docker")
            if image is None:
                continue
            digest = self.image_digests.get(str(image)) or self.pin_image(str(image))
            if digest not in site.pulled_images:
                yield self.env.timeout(self.image_pull_s)
                site.pulled_images.add(digest)
                result.image_pulls += 1
        # 3. Execute via the site's Cromwell engine.
        run = site.engine.run(document, inputs)
        result.run = run
        yield run.done
        result.done.succeed(result)
