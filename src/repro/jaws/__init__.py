"""JAWS: the JGI Analysis Workflow Service (§6).

"JAWS [is] a centralized workflow platform that integrates Cromwell
and WDL with Globus file transport to run computational workflows
across multiple HPC facilities."

- :mod:`repro.jaws.wdl` — a from-scratch parser for a WDL subset
  (tasks, workflows, calls, scatter, inputs/outputs, runtime blocks
  with sha256-pinned containers).
- :mod:`repro.jaws.engine` — a Cromwell-like execution engine on the
  simulated batch substrate: dataflow scheduling, scatter fan-out with
  a parallelism cap (the fair-share guard of §6.2), call caching
  ("detect when an identical task has been run in the past and avoid
  re-computing").
- :mod:`repro.jaws.service` — the central service: site registry,
  Globus-like input staging, container image pinning per site.
- :mod:`repro.jaws.migration` — migration tooling: the task-fusion
  transformer behind E7 ("by integrating four separate tasks into a
  single task, we cut the execution time by 70% and decreased the
  number of shards by 71%") and a pattern/anti-pattern linter for the
  §6.1/§6.2 guidance.
"""

from repro.jaws.wdl import (
    WdlCall,
    WdlDocument,
    WdlParseError,
    WdlScatter,
    WdlTask,
    WdlWorkflow,
    parse_wdl,
)
from repro.jaws.engine import CallRecord, CromwellEngine, EngineOptions, WdlRunResult
from repro.jaws.service import JawsService, Site, SiteOutage
from repro.jaws.migration import LintFinding, fuse_linear_chains, lint_workflow

__all__ = [
    "CallRecord",
    "CromwellEngine",
    "EngineOptions",
    "JawsService",
    "LintFinding",
    "Site",
    "SiteOutage",
    "WdlCall",
    "WdlDocument",
    "WdlParseError",
    "WdlRunResult",
    "WdlScatter",
    "WdlTask",
    "WdlWorkflow",
    "fuse_linear_chains",
    "lint_workflow",
    "parse_wdl",
]
