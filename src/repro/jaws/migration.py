"""Migration tooling: task fusion and the pattern/anti-pattern linter.

Task fusion is the E7 experiment: "in one of JGI's workflows, by
integrating four separate tasks into a single task, we cut the
execution time by 70% and decreased the number of shards by 71%."
:func:`fuse_linear_chains` performs that transformation mechanically on
a parsed document; the per-shard overheads the engine charges are what
the fusion removes.

:func:`lint_workflow` encodes §6.1's best practices and §6.2's
anti-patterns as checks over the AST.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Optional

from repro.jaws.engine import EngineOptions
from repro.jaws.wdl import (
    Attr,
    Declaration,
    Ident,
    Literal,
    WdlCall,
    WdlDocument,
    WdlScatter,
    WdlTask,
)


# -- task fusion -------------------------------------------------------------------


def _call_dependencies(call: WdlCall) -> set:
    """Names of calls this call's inputs reference."""

    def walk(expr, acc):
        if isinstance(expr, Attr) and isinstance(expr.base, Ident):
            acc.add(expr.base.name)
        elif isinstance(expr, Attr):
            walk(expr.base, acc)
        elif hasattr(expr, "items"):
            for i in expr.items:
                walk(i, acc)
        elif hasattr(expr, "args"):
            for a in expr.args:
                walk(a, acc)

    acc: set = set()
    for expr in call.inputs.values():
        walk(expr, acc)
    return acc


def find_linear_chains(body: list) -> list:
    """Maximal call chains where each call feeds only the next one.

    Operates on one body (workflow top level or a scatter body).
    Returns lists of :class:`WdlCall`, longest chains first.
    """
    calls = [c for c in body if isinstance(c, WdlCall)]
    by_name = {c.name: c for c in calls}
    deps = {c.name: _call_dependencies(c) & set(by_name) for c in calls}
    consumers: dict = {c.name: set() for c in calls}
    for cname, ds in deps.items():
        for d in ds:
            consumers[d].add(cname)

    chains = []
    used: set = set()
    for call in calls:  # document order
        if call.name in used:
            continue
        # Chain start: call not feeding from exactly-one-in-chain...
        chain = [call]
        used.add(call.name)
        current = call
        while True:
            nexts = [
                by_name[n]
                for n in consumers[current.name]
                if n not in used and deps[n] == {current.name}
            ]
            if len(consumers[current.name]) != 1 or len(nexts) != 1:
                break
            current = nexts[0]
            chain.append(current)
            used.add(current.name)
        if len(chain) > 1:
            chains.append(chain)
    return sorted(chains, key=len, reverse=True)


def fuse_linear_chains(
    document: WdlDocument, min_length: int = 2
) -> tuple:
    """Fuse every linear call chain (length ≥ ``min_length``) into one task.

    Returns ``(new_document, fusions)`` where ``fusions`` maps the fused
    task's name to the list of original call names.  The fused task:

    - concatenates the member commands,
    - sums their ``runtime_minutes`` (the *work* remains),
    - takes the max of their cpu/memory requests,
    - exposes the last member's outputs and the external inputs of the
      first member (intermediate hand-offs disappear — exactly the
      filesystem traffic §6.1 says fusion avoids).
    """
    doc = copy.deepcopy(document)
    fusions: dict = {}

    def fuse_body(body: list) -> list:
        chains = [c for c in find_linear_chains(body) if len(c) >= min_length]
        fused_names = {c.name for chain in chains for c in chain}
        new_body = []
        replaced: dict = {}
        for item in body:
            if isinstance(item, WdlScatter):
                item.body = fuse_body(item.body)
                new_body.append(item)
                continue
            if item.name not in fused_names:
                new_body.append(item)
                continue
            chain = next((c for c in chains if c[0].name == item.name), None)
            if chain is None:
                continue  # interior chain member: folded into the head
            fused_task, fused_call = _build_fused(doc, chain)
            doc.tasks[fused_task.name] = fused_task
            fusions[fused_task.name] = [c.name for c in chain]
            replaced.update({c.name: fused_call.name for c in chain})
            new_body.append(fused_call)
        # Rewire references to any fused member onto the fused call.
        _rewrite_refs(new_body, replaced)
        return new_body

    wf = doc.workflow
    wf.body = fuse_body(wf.body)
    _rewrite_decls(wf.outputs, _flatten_replacements(fusions, doc))
    doc.validate()
    return doc, fusions


def _build_fused(doc: WdlDocument, chain: list) -> tuple:
    tasks = [doc.tasks[c.task_name] for c in chain]
    member_names = {c.name for c in chain}
    fused_name = "fused_" + "_".join(c.name for c in chain)
    total_minutes = sum(
        float(t.runtime_value("runtime_minutes", 1.0)) for t in tasks
    )
    runtime = {
        "cpu": Literal(max(int(t.runtime_value("cpu", 1)) for t in tasks)),
        "runtime_minutes": Literal(total_minutes),
    }
    dockers = {str(t.runtime_value("docker")) for t in tasks if t.runtime_value("docker")}
    if dockers:
        runtime["docker"] = Literal(sorted(dockers)[0])
    fused_task = WdlTask(
        name=fused_name,
        inputs=list(tasks[0].inputs),
        command="\n".join(t.command for t in tasks),
        outputs=[
            # The last member's outputs, re-expressed as literals the
            # fused command produces directly.
            Declaration(type=d.type, name=d.name, expr=d.expr)
            for d in tasks[-1].outputs
        ],
        runtime=runtime,
    )
    # The fused call keeps only inputs coming from OUTSIDE the chain.
    first = chain[0]
    external_inputs = {
        k: v
        for k, v in first.inputs.items()
        if not (_call_dependencies_single(v) & member_names)
    }
    fused_call = WdlCall(task_name=fused_name, alias=None, inputs=external_inputs)
    return fused_task, fused_call


def _call_dependencies_single(expr) -> set:
    fake = WdlCall(task_name="x", inputs={"v": expr})
    return _call_dependencies(fake)


def _flatten_replacements(fusions: dict, doc: WdlDocument) -> dict:
    out = {}
    for fused_name, members in fusions.items():
        for m in members:
            out[m] = fused_name
    return out


def _rewrite_refs(body: list, replaced: dict) -> None:
    def rewrite(expr):
        if isinstance(expr, Attr) and isinstance(expr.base, Ident):
            if expr.base.name in replaced:
                return Attr(Ident(replaced[expr.base.name]), expr.attr)
        return expr

    for item in body:
        if isinstance(item, WdlCall):
            item.inputs = {k: rewrite(v) for k, v in item.inputs.items()}
        elif isinstance(item, WdlScatter):
            item.collection = rewrite(item.collection)
            _rewrite_refs(item.body, replaced)


def _rewrite_decls(decls: list, replaced: dict) -> None:
    for i, decl in enumerate(decls):
        expr = decl.expr
        if isinstance(expr, Attr) and isinstance(expr.base, Ident):
            if expr.base.name in replaced:
                decls[i] = Declaration(
                    type=decl.type,
                    name=decl.name,
                    expr=Attr(Ident(replaced[expr.base.name]), expr.attr),
                )


# -- lint --------------------------------------------------------------------------


@dataclass(frozen=True)
class LintFinding:
    code: str
    severity: str  # "warning" | "error"
    target: str
    message: str


#: Minimum sensible shard runtime (§6.2: "each parallel job should
#: have a minimum runtime of 30 minutes").
MIN_SHARD_RUNTIME_MIN = 30.0


def lint_workflow(
    document: WdlDocument,
    options: Optional[EngineOptions] = None,
    pinned_images: Optional[set] = None,
) -> list:
    """Run the §6 pattern/anti-pattern checks over a document.

    Checks:

    - ``JAWS001`` short-shard scatter: scattered call whose task runtime
      is under 30 minutes (inappropriate parallelism).
    - ``JAWS002`` unpinned container: docker image without a sha256
      digest (version-control anti-pattern).
    - ``JAWS003`` missing runtime block: no resources declared.
    - ``JAWS004`` unconstrained scatter: no engine concurrency cap —
      fair-share risk on shared clusters.
    - ``JAWS005`` monolithic task: a command with many pipeline stages
      (modularization candidate).
    - ``JAWS006`` missing container: task with no docker image at all.
    - ``JAWS007`` undefined placeholder: the command interpolates
      ``~{x}`` but the task declares no input ``x`` (an error — the
      command cannot render).
    """
    findings = []
    document.validate()
    wf = document.workflow

    def scattered_calls(items, inside=False):
        for item in items:
            if isinstance(item, WdlCall):
                yield item, inside
            else:
                yield from scattered_calls(item.body, True)

    has_scatter = False
    for call, inside_scatter in scattered_calls(wf.body):
        task = document.tasks[call.task_name]
        minutes = task.runtime_value("runtime_minutes")
        if inside_scatter:
            has_scatter = True
            if minutes is not None and float(minutes) < MIN_SHARD_RUNTIME_MIN:
                findings.append(
                    LintFinding(
                        "JAWS001",
                        "warning",
                        call.name,
                        f"scattered task runs ~{float(minutes):.0f} min; "
                        f"shards under {MIN_SHARD_RUNTIME_MIN:.0f} min pay more "
                        "in filesystem overhead than they gain",
                    )
                )
        if not task.runtime:
            findings.append(
                LintFinding(
                    "JAWS003",
                    "warning",
                    task.name,
                    "no runtime block: scheduler cannot size this task",
                )
            )
        image = task.runtime_value("docker")
        if image is None:
            findings.append(
                LintFinding(
                    "JAWS006",
                    "warning",
                    task.name,
                    "no container image: environment is not reproducible",
                )
            )
        elif "sha256:" not in str(image) and (
            pinned_images is None or str(image) not in pinned_images
        ):
            findings.append(
                LintFinding(
                    "JAWS002",
                    "warning",
                    task.name,
                    f"container {image!r} is not digest-pinned",
                )
            )
        stages = [
            ln
            for ln in task.command.splitlines()
            if ln.strip() and not ln.strip().startswith("#")
        ]
        if len(stages) > 8:
            findings.append(
                LintFinding(
                    "JAWS005",
                    "warning",
                    task.name,
                    f"command has {len(stages)} stages; consider modularizing",
                )
            )
        # JAWS007: command placeholders must reference declared inputs.
        import re as _re

        declared = {d.name for d in task.inputs}
        # sorted(): finding order must not depend on the hash salt.
        for placeholder in sorted(set(_re.findall(r"~\{(\w+)\}", task.command))):
            if placeholder not in declared:
                findings.append(
                    LintFinding(
                        "JAWS007",
                        "error",
                        task.name,
                        f"command references ~{{{placeholder}}} but the task "
                        "declares no such input",
                    )
                )
    if has_scatter and (options is None or options.max_scatter_concurrency is None):
        findings.append(
            LintFinding(
                "JAWS004",
                "warning",
                wf.name,
                "scatter with no concurrency cap: a wide scatter can "
                "monopolize shared Cromwell resources (no fair share)",
            )
        )
    return findings
