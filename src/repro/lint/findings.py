"""Finding records and fingerprints.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* deliberately omits the line number: it is the rule id,
the file path, and the stripped source text of the flagged line.  That
makes baseline entries survive unrelated edits above the finding while
still invalidating when the offending line itself changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str  # project-relative posix path
    line: int  # 1-based
    col: int  # 0-based, as reported by the ast module
    rule: str  # e.g. "DET001"
    message: str
    source_line: str = field(default="", compare=False)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        return f"{self.rule}|{self.path}|{self.source_line.strip()}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
