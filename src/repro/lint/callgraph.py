"""Whole-program call graph for the RACE rules (docs/LINTING.md).

simlint's file rules see one module at a time; the RACE family needs to
know, across the whole linted tree, which functions run as kernel
*processes* (anything handed to ``env.process``, transitively) and
which module-level mutable objects they share.  This module builds that
view once per run from the already-parsed per-file trees:

* a **module graph** keyed by dotted module name, derived from the
  project-relative path (``src/repro/rm/batch.py`` → ``repro.rm.batch``),
* a **call graph** over qualified function names
  (``repro.rm.batch.BatchScheduler.submit``), resolved through the same
  import-alias maps the file rules use,
* **spawn edges** — F spawns G when F passes G (or a call of G) to a
  ``.process(...)`` call.  Spawning is an ordering edge: the spawner
  observably runs-before the first step of the spawnee, so RACE001
  never pairs a spawner with its spawnee,
* per-function **shared-state access sets**: writes and mutations of
  module-level mutable bindings, resolved cross-module through
  ``from x import STATE`` and ``import x as y; y.STATE`` aliases.

Everything is flow-insensitive and name-based.  Calls and receivers
that cannot be resolved are dropped — the same innocent-until-proven
trade :func:`repro.lint.astutil.dotted_name` makes — so the graph
under-approximates reachability instead of drowning the report in
false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.lint import astutil

#: Constructor names whose result is shared *mutable* state when bound
#: at module level.  Name-based on purpose: ``OrderedSet`` and
#: ``WatchedDict`` are this repo's container types.
MUTABLE_CONSTRUCTORS = {
    "dict",
    "list",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
    "OrderedSet",
    "WatchedDict",
}

#: Method names that mutate their receiver in place.
MUTATING_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "push",
    "remove",
    "setdefault",
    "update",
}


def is_mutable_expr(node: ast.expr) -> bool:
    """Is ``node`` a mutable literal / known mutable constructor call?"""
    if isinstance(
        node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in MUTABLE_CONSTRUCTORS
    return False


def module_name(relpath: str) -> str:
    """Dotted module name for a project-relative path.

    ``src/`` is the conventional layout root and is stripped;
    ``pkg/__init__.py`` names the package itself.
    """
    path = relpath[:-3] if relpath.endswith(".py") else relpath
    parts = [seg for seg in path.split("/") if seg]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or relpath


@dataclass
class FunctionInfo:
    """Flow-insensitive summary of one function definition."""

    qualname: str
    module: str
    relpath: str
    node: ast.AST
    class_name: Optional[str] = None
    calls: set[str] = field(default_factory=set)
    spawns: set[str] = field(default_factory=set)
    #: shared key → write/mutation sites (AST nodes, for findings)
    writes: dict[str, list[ast.AST]] = field(default_factory=dict)
    reads: set[str] = field(default_factory=set)
    locals_: frozenset[str] = frozenset()
    globals_declared: frozenset[str] = frozenset()


class ProgramGraph:
    """The linked view over every parsed file of one lint run."""

    def __init__(self) -> None:
        self.modules: dict[str, str] = {}  # module name -> relpath
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, tuple[ast.ClassDef, str]] = {}  # qn -> (node, relpath)
        self.class_scopes: set[str] = set()
        #: shared key ("repro.x.STATE") -> defining/first-seen site
        self.shared_state: dict[str, tuple[str, ast.AST]] = {}
        #: module -> module-level names bound to mutable values
        self._mutable_globals: dict[str, set[str]] = {}
        #: module -> every module-level binding (incl. instances)
        self._module_bindings: dict[str, set[str]] = {}
        #: module -> import alias map (astutil.build_import_map)
        self._imports: dict[str, dict[str, str]] = {}
        self.process_roots: set[str] = set()
        self._reach_memo: dict[str, frozenset[str]] = {}
        self._suffix_index: Optional[dict[str, list[str]]] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, files: Mapping[str, "object"]) -> "ProgramGraph":
        """Build from ``{relpath: FileContext}`` (parsed files only)."""
        graph = cls()
        for relpath, ctx in files.items():
            graph._scan_module(relpath, ctx)
        for relpath, ctx in files.items():
            graph._scan_functions(relpath, ctx)
        return graph

    def _scan_module(self, relpath: str, ctx) -> None:
        mod = module_name(relpath)
        self.modules[mod] = relpath
        self._imports[mod] = ctx.imports
        mutable = self._mutable_globals.setdefault(mod, set())
        bindings = self._module_bindings.setdefault(mod, set())
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bindings.add(stmt.name)
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                bindings.add(target.id)
                if value is not None and is_mutable_expr(value):
                    mutable.add(target.id)
                    self.shared_state.setdefault(
                        f"{mod}.{target.id}", (relpath, target)
                    )
        # Qualified function/class discovery (methods, nested defs).
        self._collect_defs(ctx.tree, mod, relpath, class_name=None)

    def _collect_defs(
        self, node: ast.AST, prefix: str, relpath: str, class_name: Optional[str]
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qn = f"{prefix}.{child.name}"
                self.functions[qn] = FunctionInfo(
                    qualname=qn,
                    module=module_name(relpath),
                    relpath=relpath,
                    node=child,
                    class_name=class_name,
                )
                self._collect_defs(child, qn, relpath, class_name=None)
            elif isinstance(child, ast.ClassDef):
                qn = f"{prefix}.{child.name}"
                self.classes[qn] = (child, relpath)
                self.class_scopes.add(qn)
                self._collect_defs(child, qn, relpath, class_name=child.name)
            else:
                self._collect_defs(child, prefix, relpath, class_name=class_name)

    # -- per-function analysis ----------------------------------------------

    def _scan_functions(self, relpath: str, ctx) -> None:
        for info in self.functions.values():
            if info.relpath == relpath:
                self._analyze(info, ctx.imports)

    def _analyze(self, info: FunctionInfo, imports: dict[str, str]) -> None:
        node = info.node
        locals_: set[str] = set()
        globals_declared: set[str] = set()
        args = node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            locals_.add(arg.arg)
        for sub in astutil.own_nodes(node):
            if isinstance(sub, ast.Global):
                globals_declared.update(sub.names)
            elif isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                locals_.add(sub.id)
        locals_ -= globals_declared
        info.locals_ = frozenset(locals_)
        info.globals_declared = frozenset(globals_declared)

        for sub in astutil.own_nodes(node):
            if isinstance(sub, ast.Call):
                self._scan_call(sub, info, imports)
            elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    self._scan_store(target, sub, info, imports)
            elif isinstance(sub, ast.Delete):
                for target in sub.targets:
                    self._scan_store(target, sub, info, imports)
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                key = self.resolve_shared_name(sub.id, info, imports)
                if key is not None:
                    info.reads.add(key)

    def _scan_call(self, call: ast.Call, info: FunctionInfo, imports) -> None:
        func = call.func
        # Spawn edges: anything handed to a `.process(...)` call.  In
        # this codebase `.process` is the kernel API (Environment and
        # the NaiveEnvironment mirror); the receiver is not checked so
        # wrappers (`self.env.process`) count too.
        if isinstance(func, ast.Attribute) and func.attr == "process" and call.args:
            arg = call.args[0]
            target = arg.func if isinstance(arg, ast.Call) else arg
            spawned = self.resolve_callable(target, info, imports)
            if spawned is None and isinstance(target, ast.Attribute):
                # Spawns routed through instance variables
                # (`env.process(agent.run(env))`) defeat name
                # resolution; fall back to the method name when it is
                # unambiguous program-wide.  Spawn-only: a wrong root
                # merely widens the checked set, a wrong call edge
                # would fabricate ordering.
                spawned = self._unique_suffix(target.attr)
            if spawned is not None:
                info.spawns.add(spawned)
                self.process_roots.add(spawned)
        callee = self.resolve_callable(func, info, imports)
        if callee is not None:
            info.calls.add(callee)
        # Mutating method on a shared container: `STATE.update(...)`.
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            key = self.resolve_shared_expr(func.value, info, imports)
            if key is not None:
                info.writes.setdefault(key, []).append(call)

    def _scan_store(self, target: ast.expr, site: ast.AST, info, imports) -> None:
        if isinstance(target, ast.Name):
            if target.id in info.globals_declared:
                key = f"{info.module}.{target.id}"
                self.shared_state.setdefault(key, (info.relpath, site))
                info.writes.setdefault(key, []).append(site)
        elif isinstance(target, ast.Subscript):
            key = self.resolve_shared_expr(target.value, info, imports)
            if key is not None:
                info.writes.setdefault(key, []).append(site)
        elif isinstance(target, ast.Attribute):
            # `mod.X = v` rebinding another module's global, or
            # `OBJ.field = v` on a module-level shared object.
            dotted = astutil.dotted_name(target, imports)
            if dotted is not None and self._known_module_attr(dotted):
                self.shared_state.setdefault(dotted, (info.relpath, site))
                info.writes.setdefault(dotted, []).append(site)
                return
            base = target.value
            if isinstance(base, ast.Name):
                key = self.resolve_shared_name(
                    base.id, info, imports, any_binding=True
                )
                if key is not None:
                    info.writes.setdefault(key, []).append(site)

    def _known_module_attr(self, dotted: str) -> bool:
        mod, _, attr = dotted.rpartition(".")
        return mod in self.modules and attr in self._module_bindings.get(mod, ())

    # -- name resolution -----------------------------------------------------

    def resolve_shared_name(
        self,
        name: str,
        info: FunctionInfo,
        imports: dict[str, str],
        any_binding: bool = False,
    ) -> Optional[str]:
        """Shared-state key a bare ``name`` refers to in ``info``, or None.

        ``any_binding`` widens from mutable module globals to every
        module-level binding (for attribute writes on shared objects).
        """
        if name in info.locals_:
            return None
        if name in info.globals_declared:
            return f"{info.module}.{name}"
        pool = (
            self._module_bindings if any_binding else self._mutable_globals
        ).get(info.module, set())
        if name in pool:
            return f"{info.module}.{name}"
        dotted = imports.get(name)
        if dotted is not None:
            mod, _, attr = dotted.rpartition(".")
            pool = (
                self._module_bindings if any_binding else self._mutable_globals
            ).get(mod, set())
            if attr in pool:
                return dotted
        return None

    def resolve_shared_expr(
        self, expr: ast.expr, info: FunctionInfo, imports: dict[str, str]
    ) -> Optional[str]:
        """Shared-state key for a Name or ``mod.NAME`` attribute chain."""
        if isinstance(expr, ast.Name):
            return self.resolve_shared_name(expr.id, info, imports)
        if isinstance(expr, ast.Attribute):
            dotted = astutil.dotted_name(expr, imports)
            if dotted is not None:
                mod, _, attr = dotted.rpartition(".")
                if attr in self._mutable_globals.get(mod, ()):
                    return dotted
        return None

    def resolve_callable(
        self, expr: ast.expr, info: FunctionInfo, imports: dict[str, str]
    ) -> Optional[str]:
        """Qualified name of the function ``expr`` refers to, or None."""
        if isinstance(expr, ast.Name):
            name = expr.id
            # Enclosing function scopes (class scopes are not visible
            # to bare names), innermost first, then the module.
            prefix = info.qualname
            while True:
                if prefix not in self.class_scopes:
                    cand = f"{prefix}.{name}"
                    if cand in self.functions:
                        return cand
                if prefix == info.module:
                    break
                prefix = prefix.rpartition(".")[0]
                if not prefix:
                    break
            dotted = imports.get(name)
            if dotted is not None and dotted in self.functions:
                return dotted
            return None
        if isinstance(expr, ast.Attribute):
            # `self.method` → nearest enclosing class.
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                prefix = info.qualname.rpartition(".")[0]
                while prefix and prefix != info.module:
                    if prefix in self.class_scopes:
                        cand = f"{prefix}.{expr.attr}"
                        if cand in self.functions:
                            return cand
                        break
                    prefix = prefix.rpartition(".")[0]
                return None
            dotted = astutil.dotted_name(expr, imports)
            if dotted is not None and dotted in self.functions:
                return dotted
        return None

    def _unique_suffix(self, name: str) -> Optional[str]:
        """The single function named ``name`` program-wide, or None."""
        if self._suffix_index is None:
            index: dict[str, list[str]] = {}
            for qn in self.functions:
                index.setdefault(qn.rpartition(".")[2], []).append(qn)
            self._suffix_index = index
        candidates = self._suffix_index.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    # -- reachability --------------------------------------------------------

    @property
    def process_reachable(self) -> frozenset[str]:
        """Functions that can run inside a kernel process (closure)."""
        out: set[str] = set()
        for root in self.process_roots:
            if root in self.functions:
                out |= self.reach(root)
        return frozenset(out)

    def reach(self, qualname: str) -> frozenset[str]:
        """``qualname`` plus everything transitively callable from it."""
        memo = self._reach_memo.get(qualname)
        if memo is not None:
            return memo
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            cur = stack.pop()
            if cur in seen or cur not in self.functions:
                continue
            seen.add(cur)
            stack.extend(self.functions[cur].calls)
        out = frozenset(seen)
        self._reach_memo[qualname] = out
        return out

    def ordered(self, a: str, b: str) -> bool:
        """Is there an ordering (call or spawn) edge between ``a`` and ``b``?

        Calls run in the caller's stack; a spawn happens-before the
        spawnee's first step.  Either direction counts.
        """
        if b in self.reach(a) or a in self.reach(b):
            return True
        fa = self.functions.get(a)
        fb = self.functions.get(b)
        return bool(
            (fa is not None and b in fa.spawns)
            or (fb is not None and a in fb.spawns)
        )

    def methods_of(self, class_qualname: str) -> Iterable[str]:
        prefix = class_qualname + "."
        for qn in self.functions:
            if qn.startswith(prefix) and "." not in qn[len(prefix):]:
                yield qn
