"""Shared AST helpers for simlint rules.

The engine parses each file once and hands rules a
:class:`~repro.lint.engine.FileContext`; everything here is pure
functions over that parsed tree.  The central primitive is
:func:`resolve_call_name`: mapping a call expression back to the dotted
name of what is actually being called, through ``import`` aliases
(``import numpy as np`` makes ``np.random.randint`` resolve to
``numpy.random.randint``).  Names that cannot be traced to an import or
a builtin resolve to ``None`` — rules treat unresolved calls as
innocent, which keeps false positives down at the cost of missing
violations routed through local variables.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with a ``parent`` backlink (root gets None)."""
    tree.parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "parent", None)


def build_import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module/object they alias.

    ``import time`` → {"time": "time"}; ``import numpy as np`` →
    {"np": "numpy"}; ``from time import sleep as zzz`` →
    {"zzz": "time.sleep"}.  Star imports are ignored.
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    imports[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never hide stdlib modules
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def dotted_name(node: ast.expr, imports: dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted name, or None.

    The chain's base must be an imported name; locals resolve to None.
    """
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id)
    if base is None:
        return None
    chain.append(base)
    return ".".join(reversed(chain))


def call_name(node: ast.Call, imports: dict[str, str]) -> Optional[str]:
    """Dotted name of the callee of ``node``, through import aliases."""
    return dotted_name(node.func, imports)


def is_builtin_call(node: ast.Call, name: str, imports: dict[str, str]) -> bool:
    """True when ``node`` calls the builtin ``name`` (not shadowed by an import)."""
    return (
        isinstance(node.func, ast.Name)
        and node.func.id == name
        and node.func.id not in imports
    )


def own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func`` without descending into nested function/class defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def is_generator(func: ast.FunctionDef) -> bool:
    """True when ``func`` itself contains a yield (nested defs excluded)."""
    return any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in own_nodes(func))


def enclosing_function(node: ast.AST) -> Optional[ast.FunctionDef]:
    """Nearest FunctionDef/AsyncFunctionDef containing ``node``."""
    cur = parent(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cur
        cur = parent(cur)
    return None


def functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def receiver_text(node: ast.expr) -> str:
    """Flatten a Name/Attribute receiver to dotted text ("self.env.tracer").

    Unlike :func:`dotted_name` this does not resolve imports — it is
    for heuristics on local naming conventions (anything ending in
    ``tracer`` is treated as a Tracer).
    """
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
    else:
        chain.append("?")
    return ".".join(reversed(chain))


def in_finally(node: ast.AST) -> bool:
    """True when ``node`` sits inside some ``finally:`` block."""
    cur = node
    par = parent(cur)
    while par is not None:
        if isinstance(par, ast.Try) and any(
            cur is stmt or _contains(stmt, cur) for stmt in par.finalbody
        ):
            return True
        cur, par = par, parent(par)
    return False


def _contains(root: ast.AST, target: ast.AST) -> bool:
    return any(n is target for n in ast.walk(root))


def in_with_item(node: ast.AST) -> bool:
    """True when ``node`` is a ``with`` statement's context expression."""
    par = parent(node)
    return isinstance(par, ast.withitem) and par.context_expr is node
