"""CLI: ``python -m repro.lint [paths…]``.

Exit codes: 0 clean, 1 findings, 2 usage/internal error — so CI can
gate on it directly.  ``--format json`` (alias: ``--json``) writes the
machine-readable report to stdout (or ``--out FILE``) for artifact
upload; ``--format sarif`` emits SARIF 2.1.0 for code-host ingestion.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import render_baseline_toml
from repro.lint.config import find_project_root, load_config
from repro.lint.engine import lint_paths
from repro.lint.report import render_json, render_rule_catalog, render_text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: determinism & sim-correctness static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: [tool.simlint] paths)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default=None,
        help="report format (default: human)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json (kept for existing CI invocations)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help=(
            "apply mechanically-safe autofixes in place before linting "
            "(DET004 sorted() wrap, OBS002 print→logger); off by default"
        ),
    )
    parser.add_argument("--out", metavar="FILE", help="also write the report to FILE")
    parser.add_argument(
        "--config", metavar="PYPROJECT", help="explicit pyproject.toml to read"
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report baselined findings as live findings",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="emit a [tool.simlint] baseline snippet for current findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="also show suppressed/baselined"
    )
    args = parser.parse_args(argv)
    if args.format is None:
        args.format = "json" if args.json else "human"
    elif args.json and args.format != "json":
        print("error: --json conflicts with --format " + args.format,
              file=sys.stderr)
        return 2

    if args.list_rules:
        print(render_rule_catalog())
        return 0

    root = find_project_root(Path.cwd())
    try:
        config = load_config(root, Path(args.config) if args.config else None)
    except Exception as exc:  # tomllib decode errors, unreadable file
        print(f"error: cannot load config: {exc}", file=sys.stderr)
        return 2

    if args.paths:
        # Explicit CLI paths behave like any other tool's: cwd-relative.
        paths = [Path(p) for p in args.paths]
    else:
        # Config-derived defaults are project-relative, so the default
        # invocation works from any subdirectory of the repo.
        paths = [
            Path(p) if Path(p).is_absolute() else root / p for p in config.paths
        ]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path(s): {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    if args.fix:
        from repro.lint.fix import fix_paths

        for applied in fix_paths(paths, root=root, config=config):
            print(f"fixed: {applied.render()}", file=sys.stderr)

    result = lint_paths(
        paths, root=root, config=config, use_baseline=not args.no_baseline
    )

    if args.write_baseline:
        print(render_baseline_toml(result.findings), end="")
        return 0

    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        from repro.lint.sarif import render_sarif

        report = render_sarif(result)
    else:
        report = render_text(result, args.verbose)
    print(report)
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report + "\n", encoding="utf-8")
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
