"""Baseline: grandfathered findings.

A baseline entry is a finding fingerprint — ``RULE|path|stripped source
line`` — so it survives line-number churn but invalidates the moment
the offending line is edited.  Entries live in ``[tool.simlint]
baseline`` in pyproject.toml (the shipped tree keeps it empty: every
finding is fixed or suppressed with a justification).  ``--write-baseline``
emits the TOML lines to paste there for bootstrapping a dirty tree.

Entries that match nothing are reported (BASE001) so the baseline only
ever shrinks.
"""

from __future__ import annotations

from repro.lint.findings import Finding


def apply_baseline(
    findings: list[Finding], baseline: list[str]
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Split into (kept, baselined); also return stale baseline entries."""
    remaining = dict.fromkeys(baseline)  # insertion-ordered set
    kept: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        fp = finding.fingerprint()
        if fp in remaining:
            baselined.append(finding)
            remaining.pop(fp, None)
        else:
            kept.append(finding)
    return kept, baselined, list(remaining)


def stale_entry_findings(stale: list[str]) -> list[Finding]:
    return [
        Finding(
            path="pyproject.toml",
            line=1,
            col=0,
            rule="BASE001",
            message=(
                f"stale baseline entry (matches no current finding): {entry!r}"
                " — delete it from [tool.simlint] baseline"
            ),
            source_line=entry,
        )
        for entry in stale
    ]


def render_baseline_toml(findings: list[Finding]) -> str:
    """TOML snippet for pasting into ``[tool.simlint]``."""
    lines = ["baseline = ["]
    for finding in sorted(findings):
        fp = finding.fingerprint().replace("\\", "\\\\").replace('"', '\\"')
        lines.append(f'    "{fp}",')
    lines.append("]")
    return "\n".join(lines) + "\n"
