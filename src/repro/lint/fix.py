"""Conservative autofixes for mechanically-safe findings (``--fix``).

Two fixers, both deliberately narrow:

``DET004`` — iteration over an unordered set expression
    Wraps the iterable in ``sorted(...)`` when the expression sits on a
    single line.  ``sorted()`` returns a list, so the rewritten code no
    longer matches the rule: applying the fixer twice is a no-op.

``OBS002`` — ``print()`` in library code
    Rewrites single-line, single-positional-argument, keyword-free
    calls to ``logging.getLogger(__name__).info(...)`` and inserts
    ``import logging`` after the last top-level import if missing.
    Multi-argument or formatted prints need a human decision about the
    message shape and are left as findings.

Everything else is out of scope on purpose: a fixer that guesses turns
a visible finding into an invisible behaviour change.  Fixes respect
the same ``[tool.simlint.scopes]`` configuration as the rules — a
``print`` in ``repro.report`` (where OBS002 is scoped out) is not
rewritten.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.lint import astutil
from repro.lint.config import LintConfig
from repro.lint.rules.det import _is_set_expr


@dataclass(frozen=True)
class AppliedFix:
    """One textual rewrite performed by a fixer."""

    rule: str
    relpath: str
    line: int  # 1-based
    description: str

    def render(self) -> str:
        return f"{self.relpath}:{self.line}: {self.rule} {self.description}"


@dataclass(frozen=True)
class _Edit:
    line: int  # 0-based
    start: int
    end: int
    replacement: str


def _single_line(node: ast.expr) -> bool:
    return node.end_lineno == node.lineno


def _det004_edits(
    tree: ast.Module, imports: dict[str, str]
) -> list[tuple[_Edit, str]]:
    out = []
    targets: list[ast.expr] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            targets.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            targets.extend(gen.iter for gen in node.generators)
    for expr in targets:
        if not _is_set_expr(expr, imports) or not _single_line(expr):
            continue
        out.append(
            (
                _Edit(expr.lineno - 1, expr.col_offset, expr.end_col_offset, ""),
                "wrapped set iteration in sorted()",
            )
        )
    return out


def _obs002_edits(
    tree: ast.Module, imports: dict[str, str]
) -> list[tuple[_Edit, str]]:
    out = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and astutil.is_builtin_call(node, "print", imports)
        ):
            continue
        if len(node.args) != 1 or node.keywords:
            continue  # message shape needs a human decision
        if isinstance(node.args[0], ast.Starred) or not _single_line(node):
            continue
        out.append(
            (
                _Edit(
                    node.func.lineno - 1,
                    node.func.col_offset,
                    node.func.end_col_offset,
                    "logging.getLogger(__name__).info",
                ),
                "rewrote print() to logging.getLogger(__name__).info()",
            )
        )
    return out


def _needs_logging_import(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Import):
            if any(alias.name == "logging" for alias in node.names):
                return False
    return True


def _logging_import_line(tree: ast.Module) -> int:
    """0-based line index to insert ``import logging`` at: after the
    last top-level import, else after the module docstring."""
    last_import = None
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last_import = node
    if last_import is not None:
        return (last_import.end_lineno or last_import.lineno) - 1 + 1
    first = tree.body[0] if tree.body else None
    if (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
    ):
        return (first.end_lineno or first.lineno) - 1 + 1
    return 0


def fix_source(
    source: str, relpath: str, config: Optional[LintConfig] = None
) -> tuple[str, list[AppliedFix]]:
    """Apply the autofixers to ``source``; returns (new_text, fixes).

    Returns the source unchanged when it does not parse — the lint
    engine reports the syntax error; a fixer must never touch a file it
    cannot fully understand.
    """
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=relpath)
    except (SyntaxError, ValueError):
        return source, []
    imports = astutil.build_import_map(tree)

    def active(rule_id: str, family: str) -> bool:
        return config.rule_enabled(rule_id) and config.rule_applies(
            rule_id, family, relpath
        )

    planned: list[tuple[str, _Edit, str]] = []
    if active("DET004", "DET"):
        planned += [("DET004", e, d) for e, d in _det004_edits(tree, imports)]
    needs_import = False
    if active("OBS002", "OBSRES"):
        obs = _obs002_edits(tree, imports)
        if obs and _needs_logging_import(tree):
            needs_import = True
        planned += [("OBS002", e, d) for e, d in obs]
    if not planned:
        return source, []

    lines = source.splitlines(keepends=True)
    fixes: list[AppliedFix] = []
    # Apply right-to-left, bottom-to-top so earlier offsets stay valid.
    for rule, edit, description in sorted(
        planned, key=lambda p: (p[1].line, p[1].start), reverse=True
    ):
        text = lines[edit.line]
        eol = text[len(text.rstrip("\r\n")):]
        body = text.rstrip("\r\n")
        segment = body[edit.start:edit.end]
        if rule == "DET004":
            replacement = f"sorted({segment})"
        else:
            replacement = edit.replacement
        lines[edit.line] = body[:edit.start] + replacement + body[edit.end:] + eol
        fixes.append(AppliedFix(rule, relpath, edit.line + 1, description))
    if needs_import:
        at = _logging_import_line(tree)
        lines.insert(at, "import logging\n")
        fixes.append(
            AppliedFix("OBS002", relpath, at + 1, "inserted 'import logging'")
        )
    fixes.sort(key=lambda f: f.line)
    return "".join(lines), fixes


def fix_paths(
    paths: Iterable[Path], root: Path, config: Optional[LintConfig] = None
) -> list[AppliedFix]:
    """Fix every ``*.py`` under ``paths`` in place; returns the fixes."""
    from repro.lint.engine import _collect

    config = config or LintConfig()
    applied: list[AppliedFix] = []
    for path in sorted({p.resolve() for p in _collect(paths)}):
        try:
            relpath = path.relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue  # the lint pass reports unreadable files
        fixed, fixes = fix_source(source, relpath, config)
        if fixes:
            path.write_text(fixed, encoding="utf-8")
            applied.extend(fixes)
    return applied


__all__ = ["AppliedFix", "fix_paths", "fix_source"]
