"""Human-readable and JSON renderings of a LintResult."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.rules import all_rules


def render_text(result: LintResult, verbose: bool = False) -> str:
    lines: list[str] = [f.render() for f in result.findings]
    if verbose:
        for finding, sup in result.suppressed:
            lines.append(
                f"{finding.render()}  [suppressed: {sup.justification}]"
            )
        for finding in result.baselined:
            lines.append(f"{finding.render()}  [baselined]")
    summary = (
        f"{result.files_checked} files checked: "
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined"
    )
    lines.append(summary if not lines else f"\n{summary}")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    doc = {
        "tool": "simlint",
        "version": 1,
        "files_checked": result.files_checked,
        "findings": [f.to_json() for f in result.findings],
        "suppressed": [
            {**f.to_json(), "justification": s.justification}
            for f, s in result.suppressed
        ],
        "baselined": [f.to_json() for f in result.baselined],
        "exit_code": result.exit_code,
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """The ``--list-rules`` listing (also the source for docs/LINTING.md)."""
    blocks = []
    for rule in all_rules():
        blocks.append(
            f"{rule.id} [{rule.family}] {rule.summary}\n"
            f"    {rule.rationale}"
        )
    return "\n".join(blocks)
