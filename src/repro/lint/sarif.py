"""SARIF 2.1.0 rendering of a LintResult.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard that code-hosting UIs ingest for inline annotations — one
``run`` with the simlint tool descriptor and rule catalog, one
``result`` per live finding.  Suppressed and baselined findings are
included with SARIF's native ``suppressions`` property so the upload
reflects the same triage state as the text/JSON reports.

The rendering is byte-stable for a given result (sorted keys, no
timestamps, no absolute paths): CI can diff two uploads directly.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.rules import all_rules

#: SARIF schema pinned to the 2.1.0 final spec.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _rule_descriptor(rule) -> dict:
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "properties": {"family": rule.family},
        "defaultConfiguration": {"level": "warning"},
    }


def _location(finding) -> dict:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": finding.path, "uriBaseId": "PROJECTROOT"},
            "region": {
                "startLine": finding.line,
                "startColumn": finding.col + 1,
                "snippet": {"text": finding.source_line},
            },
        }
    }


def _result(finding, suppression_kind: str = "", justification: str = "") -> dict:
    doc = {
        "ruleId": finding.rule,
        "level": "warning",
        "message": {"text": finding.message},
        "locations": [_location(finding)],
        "partialFingerprints": {"simlint/v1": finding.fingerprint()},
    }
    if suppression_kind:
        sup = {"kind": suppression_kind}
        if justification:
            sup["justification"] = justification
        doc["suppressions"] = [sup]
    return doc


def render_sarif(result: LintResult) -> str:
    """Render ``result`` as a SARIF 2.1.0 log (byte-stable)."""
    results = [_result(f) for f in result.findings]
    # "inSource" = an inline disable directive next to the line;
    # "external" = the pyproject baseline entry.
    results += [
        _result(f, "inSource", s.justification) for f, s in result.suppressed
    ]
    results += [_result(f, "external") for f in result.baselined]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "docs/LINTING.md",
                        "rules": [_rule_descriptor(r) for r in all_rules()],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {"PROJECTROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif"]
