"""The simlint engine: parse once, run every applicable rule, filter.

Pipeline per file: parse → annotate parents → build the import map →
run each enabled+scoped rule → drop inline-suppressed findings → drop
baselined findings.  Files that fail to parse (or decode) produce an
ERR001 finding rather than crashing the run (CI should fail loudly,
not trace-back).

After the per-file pass, every successfully parsed file joins one
**program pass**: :class:`ProgramRule` subclasses (the RACE family) see
a :class:`ProgramContext` spanning the whole run — unparseable files
are simply absent from it, so one bad file degrades the cross-file
analysis instead of aborting it.  Program findings are filtered by the
same per-path scoping and per-file inline suppressions as file
findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from repro.lint import astutil, suppress
from repro.lint.baseline import apply_baseline, stale_entry_findings
from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.rules import ProgramRule, all_rules, known_ids
from repro.lint.suppress import Suppression


class FileContext:
    """Everything a rule needs about one parsed file."""

    def __init__(self, relpath: str, source: str, config: LintConfig):
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.config = config
        self.tree: ast.Module = ast.parse(source, filename=relpath)
        astutil.attach_parents(self.tree)
        self.imports = astutil.build_import_map(self.tree)
        self.is_entry_point = config.is_entry_point(relpath)

    def line(self, line_no: int) -> str:
        if 0 < line_no <= len(self.lines):
            return self.lines[line_no - 1]
        return ""


class ProgramContext:
    """Everything a :class:`~repro.lint.rules.ProgramRule` sees.

    Holds every file that parsed in this run and builds the
    whole-program :class:`~repro.lint.callgraph.ProgramGraph` lazily on
    first access (so runs with the RACE family disabled never pay for
    it).
    """

    def __init__(self, files: dict[str, FileContext], config: LintConfig):
        self.files = files
        self.config = config
        self._graph = None

    @property
    def graph(self):
        if self._graph is None:
            from repro.lint.callgraph import ProgramGraph

            self._graph = ProgramGraph.build(self.files)
        return self._graph

    def context(self, relpath: str) -> Optional[FileContext]:
        return self.files.get(relpath)

    def line(self, relpath: str, line_no: int) -> str:
        ctx = self.files.get(relpath)
        return ctx.line(line_no) if ctx is not None else ""


@dataclass
class LintResult:
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def lint_source(
    source: str,
    relpath: str = "src/repro/module.py",
    config: Optional[LintConfig] = None,
    use_baseline: bool = True,
) -> LintResult:
    """Lint one in-memory source blob (the unit-test entry point).

    The blob also runs as a one-file program, so ProgramRules (the RACE
    family) fire from the same fixtures as file rules.
    """
    config = config or LintConfig()
    result = LintResult(files_checked=1)
    parsed = _lint_one(source, relpath, config, result)
    _run_program_pass(
        {relpath: parsed} if parsed is not None else {}, config, result
    )
    if use_baseline and config.baseline:
        kept, baselined, _stale = apply_baseline(result.findings, config.baseline)
        result.findings, result.baselined = kept, baselined
    result.findings.sort()
    return result


def lint_paths(
    paths: Iterable[Path],
    root: Path,
    config: Optional[LintConfig] = None,
    use_baseline: bool = True,
) -> LintResult:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    config = config or LintConfig()
    result = LintResult()
    # Resolve + dedupe so overlapping arguments (`src src/repro`) lint
    # each file once instead of double-reporting and double-counting.
    files = sorted({p.resolve() for p in _collect(paths)})
    parsed_files: dict[str, tuple[FileContext, list[Suppression]]] = {}
    for path in files:
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.findings.append(
                Finding(relpath, 1, 0, "ERR001", f"unreadable file: {exc}")
            )
            continue
        result.files_checked += 1
        parsed = _lint_one(source, relpath, config, result)
        if parsed is not None:
            parsed_files[relpath] = parsed
    _run_program_pass(parsed_files, config, result)
    if use_baseline and config.baseline:
        kept, baselined, stale = apply_baseline(result.findings, config.baseline)
        result.findings, result.baselined = kept, baselined
        # Only call out stale entries for files we actually scanned —
        # a partial run must not invalidate the rest of the baseline.
        scanned = {f.as_posix() for f in files} | {
            p.resolve().relative_to(root.resolve()).as_posix()
            for p in files
            if p.resolve().is_relative_to(root.resolve())
        }
        relevant = [
            e for e in stale if len(e.split("|", 2)) == 3 and e.split("|", 2)[1] in scanned
        ]
        result.findings.extend(stale_entry_findings(relevant))
    result.findings.sort()
    return result


def _collect(paths: Iterable[Path]) -> list[Path]:
    out: list[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            out.append(path)
    return out


def _lint_one(
    source: str, relpath: str, config: LintConfig, result: LintResult
) -> Optional[tuple[FileContext, list[Suppression]]]:
    """Run the per-file rules; return the parsed context for the program
    pass (None when the file does not parse)."""
    suppressions, directive_problems = suppress.parse_suppressions(source, relpath)
    lines = source.splitlines()
    try:
        ctx = FileContext(relpath, source, config)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                relpath,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                "ERR001",
                f"syntax error: {exc.msg}",
            )
        )
        return None

    raw: list[Finding] = []
    for rule in all_rules():
        if isinstance(rule, ProgramRule):
            continue  # runs once, in the program pass
        if not config.rule_enabled(rule.id):
            continue
        if not config.rule_applies(rule.id, rule.family, relpath):
            continue
        raw.extend(rule.check(ctx))

    kept, suppressed = suppress.apply_suppressions(raw, suppressions)
    result.findings.extend(kept)
    result.suppressed.extend(suppressed)
    # Directive hygiene is never suppressible and ignores scoping.
    result.findings.extend(directive_problems)
    meta_ids = {"SUP001", "SUP002", "BASE001", "ERR001"}
    result.findings.extend(
        suppress.unknown_rule_findings(
            suppressions, known_ids() | meta_ids, relpath, lines
        )
    )
    return ctx, suppressions


def _run_program_pass(
    parsed_files: dict[str, tuple[FileContext, list[Suppression]]],
    config: LintConfig,
    result: LintResult,
) -> None:
    """Run every enabled ProgramRule over the parsed files as one unit."""
    rules = [
        r
        for r in all_rules()
        if isinstance(r, ProgramRule) and config.rule_enabled(r.id)
    ]
    if not rules or not parsed_files:
        return
    program = ProgramContext(
        {relpath: ctx for relpath, (ctx, _) in parsed_files.items()}, config
    )
    for rule in rules:
        # Program findings can land in any file; scope by the finding's
        # own path, and honor that file's inline suppressions.
        raw = [
            f
            for f in rule.check_program(program)
            if config.rule_applies(rule.id, rule.family, f.path)
        ]
        by_path: dict[str, list[Finding]] = {}
        for f in raw:
            by_path.setdefault(f.path, []).append(f)
        for relpath, group in by_path.items():
            sups = (
                parsed_files[relpath][1] if relpath in parsed_files else []
            )
            kept, suppressed = suppress.apply_suppressions(group, sups)
            result.findings.extend(kept)
            result.suppressed.extend(suppressed)
