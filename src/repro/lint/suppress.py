"""Inline suppressions.

Syntax, as a comment on the flagged line (or a comment-only line
immediately above it)::

    rng = np.random.default_rng(hash(key))  # simlint: disable=DET003 -- ints only, hash is stable

The justification after ``--`` is **required**: a suppression without a
written reason is itself reported (SUP001), and a suppression naming a
rule the registry does not know is reported too (SUP002) so typos do
not silently disable nothing.  Comments are found with the tokenize
module, so the directive text appearing inside a string literal (as it
does in this very module) is never misparsed as a directive.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Iterable

from repro.lint.findings import Finding

_DIRECTIVE = re.compile(
    r"#\s*simlint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    line: int  # line the directive comment sits on
    rules: tuple[str, ...]
    justification: str
    own_line: bool  # comment-only line (applies to the next code line)
    #: Line the directive applies to: its own line for trailing
    #: comments, else the next *code* line — skipping blank and
    #: comment-only lines, so stacked directives above one statement
    #: all land on it instead of on each other.
    target: int = 0

    def covers(self, finding_line: int) -> bool:
        return finding_line == (self.target or self.line)


def parse_suppressions(source: str, relpath: str) -> tuple[list[Suppression], list[Finding]]:
    """Extract directives and the findings for malformed ones."""
    suppressions: list[Suppression] = []
    problems: list[Finding] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [], []  # the engine reports the parse error separately
    for tok in tokens:
        if tok.type != tokenize.COMMENT or "simlint" not in tok.string:
            continue
        line_no = tok.start[0]
        match = _DIRECTIVE.search(tok.string)
        if match is None:
            problems.append(
                Finding(
                    path=relpath,
                    line=line_no,
                    col=tok.start[1],
                    rule="SUP001",
                    message=(
                        "malformed simlint directive; expected "
                        "'# simlint: disable=RULE -- justification'"
                    ),
                    source_line=_line(lines, line_no),
                )
            )
            continue
        rules = tuple(
            r.strip() for r in match.group("rules").split(",") if r.strip()
        )
        why = (match.group("why") or "").strip()
        if not why:
            problems.append(
                Finding(
                    path=relpath,
                    line=line_no,
                    col=tok.start[1],
                    rule="SUP001",
                    message=(
                        "suppression without a justification; append "
                        "'-- <reason>' explaining why the finding is safe"
                    ),
                    source_line=_line(lines, line_no),
                )
            )
            continue
        own_line = _line(lines, line_no).lstrip().startswith("#")
        suppressions.append(
            Suppression(
                line=line_no,
                rules=rules,
                justification=why,
                own_line=own_line,
                target=_target_line(lines, line_no, own_line),
            )
        )
    return suppressions, problems


def _target_line(lines: list[str], line_no: int, own_line: bool) -> int:
    """The code line a directive applies to.

    Trailing comments cover their own line.  Own-line directives cover
    the next line that holds code: further comment-only lines (e.g. a
    second stacked directive) are skipped, so

    ::

        # simlint: disable=DET004 -- iteration order pinned below
        # simlint: disable=OBS002 -- progress print, not telemetry
        print(sorted(pending))

    suppresses both rules on the ``print`` line.  (Previously each
    directive covered exactly the next physical line, so the first one
    above landed on the second comment and silently suppressed
    nothing.)  A *blank* line is not skipped: it detaches the
    directive, keeping suppressions tightly scoped to adjacent code.
    """
    if not own_line:
        return line_no
    for offset in range(line_no + 1, len(lines) + 1):
        text = _line(lines, offset).strip()
        if not text:
            break  # blank line: the directive attaches to nothing
        if not text.startswith("#"):
            return offset
    return line_no  # dangling directive: covers nothing real


def unknown_rule_findings(
    suppressions: Iterable[Suppression], known: set[str], relpath: str, lines: list[str]
) -> list[Finding]:
    out = []
    for sup in suppressions:
        for rule in sup.rules:
            if rule not in known:
                out.append(
                    Finding(
                        path=relpath,
                        line=sup.line,
                        col=0,
                        rule="SUP002",
                        message=f"suppression names unknown rule {rule!r}",
                        source_line=_line(lines, sup.line),
                    )
                )
    return out


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression]
) -> tuple[list[Finding], list[tuple[Finding, Suppression]]]:
    """Split findings into (kept, suppressed-with-their-directive)."""
    kept: list[Finding] = []
    suppressed: list[tuple[Finding, Suppression]] = []
    for finding in findings:
        hit = next(
            (
                s
                for s in suppressions
                if finding.rule in s.rules and s.covers(finding.line)
            ),
            None,
        )
        if hit is None:
            kept.append(finding)
        else:
            suppressed.append((finding, hit))
    return kept, suppressed


def _line(lines: list[str], line_no: int) -> str:
    return lines[line_no - 1] if 0 < line_no <= len(lines) else ""
