"""RACE — interprocedural order-sensitivity rules (the simsan static layer).

The calendar-queue kernel dispatches all events of one simulated
instant as a batch (``docs/SIMKERNEL.md``); within a batch, dispatch
order is schedule order — deterministic, but *incidental*.  Code whose
result depends on that order is one innocuous refactor away from
breaking every golden digest.  These rules use the whole-program
:class:`~repro.lint.callgraph.ProgramGraph` to find state shared
between kernel process functions with no ordering edge between them —
exactly what the file-local DET rules cannot see.

The dynamic half of simsan (:mod:`repro.sanitizer`) confirms suspected
races at runtime by permuting same-instant batches; see
``docs/SANITIZER.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import astutil
from repro.lint.callgraph import MUTATING_METHODS, is_mutable_expr
from repro.lint.findings import Finding
from repro.lint.rules import ProgramRule, register
from repro.lint.rules.det import _is_set_expr

#: Scheduler work-queue attributes (BatchScheduler.queue/.running,
#: KubeScheduler.pending/.running — see src/repro/rm/).
_QUEUE_ATTRS = {"queue", "pending", "running"}

#: Name stems that mark a call as a placement / retry decision.
_DECISION_STEMS = (
    "place",
    "submit",
    "sched",
    "retry",
    "assign",
    "alloc",
    "dispatch",
    "grant",
    "launch",
    "acquire",
)


def _decision_call(body: list[ast.stmt]) -> "ast.Call | None":
    """First call in ``body`` whose callee name looks like a decision."""
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else ""
            )
            lowered = name.lower()
            if any(stem in lowered for stem in _DECISION_STEMS):
                return node
    return None


@register
class SharedWriteRace(ProgramRule):
    id = "RACE001"
    family = "RACE"
    summary = "write-write on shared state from unordered process functions"
    rationale = (
        "Two kernel process functions writing the same module-global or "
        "shared-object state, with no call or spawn edge ordering them, "
        "race whenever they land in the same dispatch batch: the last "
        "writer wins and batch order decides which that is.  Route the "
        "state through an owning component, or order the writers with "
        "an event edge."
    )
    bad = (
        "SHARED = {}\n"
        "def writer_a(env):\n"
        "    yield env.timeout(1); SHARED['k'] = 'a'\n"
        "def writer_b(env):\n"
        "    yield env.timeout(1); SHARED['k'] = 'b'\n"
        "env.process(writer_a(env)); env.process(writer_b(env))"
    )
    good = (
        "def writer_a(env, done):\n"
        "    yield env.timeout(1); done.succeed('a')\n"
        "def reader(env, done):\n"
        "    value = yield done  # ordered by the event edge"
    )

    def check_program(self, program) -> Iterator[Finding]:
        graph = program.graph
        # Attribute every write in a process root's call closure to
        # that root: "process function P writes K" includes writes made
        # by helpers P calls.
        by_key: dict[str, dict[str, list[tuple[str, ast.AST]]]] = {}
        for root in sorted(graph.process_roots):
            if root not in graph.functions:
                continue
            for fn in sorted(graph.reach(root)):
                info = graph.functions[fn]
                for key, sites in info.writes.items():
                    by_key.setdefault(key, {}).setdefault(root, []).extend(
                        (fn, site) for site in sites
                    )
        seen: set[tuple[str, str, int, int]] = set()
        for key in sorted(by_key):
            by_root = by_key[key]
            roots = sorted(by_root)
            if len(roots) < 2:
                continue
            for root in roots:
                others = [
                    o for o in roots if o != root and not graph.ordered(root, o)
                ]
                if not others:
                    continue
                for fn, site in by_root[root]:
                    info = graph.functions[fn]
                    line = getattr(site, "lineno", 1)
                    dedup = (info.relpath, key, line, getattr(site, "col_offset", 0))
                    if dedup in seen:
                        continue
                    seen.add(dedup)
                    via = "" if fn == root else f" (via '{fn}')"
                    yield self.finding_in(
                        program,
                        info.relpath,
                        site,
                        f"process function '{root}'{via} writes shared state "
                        f"'{key}' also written by unordered process function "
                        f"'{others[0]}'; same-instant batch order decides the "
                        "final value",
                    )


@register
class ForeignQueueAccess(ProgramRule):
    id = "RACE002"
    family = "RACE"
    summary = "scheduler queue accessed outside the owning scheduler"
    rationale = (
        "The rm schedulers' queue/running/pending sets are single-owner "
        "state: the owning scheduler mutates them inside its own wakeup "
        "pass.  A process function reaching into another scheduler's "
        "queue reads or writes state that a same-instant wakeup is "
        "concurrently rewriting — whether the foreign access sees the "
        "pre- or post-wakeup queue is batch order.  Go through the "
        "scheduler's API (submit/cancel) instead."
    )
    bad = "def proc(env, sched):\n    yield env.timeout(1)\n    sched.queue.remove(job)"
    good = "def proc(env, sched):\n    yield env.timeout(1)\n    sched.cancel(job)"

    def check_program(self, program) -> Iterator[Finding]:
        graph = program.graph
        for qn in sorted(graph.process_reachable):
            info = graph.functions[qn]
            for node in astutil.own_nodes(info.node):
                if not isinstance(node, ast.Attribute):
                    continue
                if node.attr not in _QUEUE_ATTRS:
                    continue
                receiver = astutil.receiver_text(node)
                segments = receiver.split(".")
                if segments[:-1] == ["self"]:
                    continue  # the owning scheduler's own access
                # Only receivers that name a scheduler: keeps metric
                # reads of unrelated `.pending` attributes quiet.
                if "sched" not in receiver.lower():
                    continue
                access = self._access_kind(node)
                if access is None:
                    continue
                yield self.finding_in(
                    program,
                    info.relpath,
                    node,
                    f"process function '{qn}' {access} scheduler queue "
                    f"'{receiver}' it does not own; same-instant wakeups "
                    "mutate it concurrently — use the scheduler's API",
                )

    @staticmethod
    def _access_kind(node: ast.Attribute) -> "str | None":
        par = astutil.parent(node)
        if isinstance(par, ast.Attribute) and par.attr in MUTATING_METHODS:
            if isinstance(astutil.parent(par), ast.Call):
                return "mutates"
        if isinstance(par, (ast.Assign, ast.AugAssign)) and node in getattr(
            par, "targets", [getattr(par, "target", None)]
        ):
            return "rebinds"
        if isinstance(par, ast.Subscript) and isinstance(
            astutil.parent(par), (ast.Assign, ast.Delete)
        ):
            return "mutates"
        if isinstance(par, (ast.For, ast.AsyncFor)) and par.iter is node:
            return "iterates"
        if isinstance(par, ast.comprehension) and par.iter is node:
            return "iterates"
        return None


@register
class UnorderedDecisionIteration(ProgramRule):
    id = "RACE003"
    family = "RACE"
    summary = "unordered iteration feeding a placement/retry decision"
    rationale = (
        "A placement or retry decision made while iterating an "
        "unordered set — or a view of a dict that unordered process "
        "functions populate — grants resources in an order that varies "
        "with hash salt or batch order.  Sort the candidates on a "
        "stable key first (DET004's fix), or iterate an "
        "insertion-ordered container."
    )
    bad = "def proc(env):\n    yield env.timeout(1)\n    for n in set(nodes): place(n)"
    good = (
        "def proc(env):\n"
        "    yield env.timeout(1)\n"
        "    for n in sorted(set(nodes)): place(n)"
    )

    def check_program(self, program) -> Iterator[Finding]:
        graph = program.graph
        for qn in sorted(graph.process_reachable):
            info = graph.functions[qn]
            ctx = program.context(info.relpath)
            imports = ctx.imports if ctx is not None else {}
            for node in astutil.own_nodes(info.node):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                unordered = self._unordered_source(node.iter, graph, info, imports)
                if unordered is None:
                    continue
                decision = _decision_call(node.body)
                if decision is None:
                    continue
                func = decision.func
                dname = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else "?"
                )
                yield self.finding_in(
                    program,
                    info.relpath,
                    node.iter,
                    f"process function '{qn}' iterates {unordered} to drive "
                    f"'{dname}()'; the decision order is not reproducible — "
                    "sort the candidates on a stable key first",
                )

    @staticmethod
    def _unordered_source(
        iter_expr: ast.expr, graph, info, imports: dict[str, str]
    ) -> "str | None":
        if _is_set_expr(iter_expr, imports):
            return "an unordered set"
        if (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Attribute)
            and iter_expr.func.attr in {"keys", "values", "items"}
        ):
            key = graph.resolve_shared_expr(iter_expr.func.value, info, imports)
            if key is not None:
                return (
                    f"a view of shared dict '{key}' (population order is "
                    "batch order)"
                )
        return None


@register
class MutableProcessState(ProgramRule):
    id = "RACE004"
    family = "RACE"
    summary = "mutable default / class-attribute state reachable from processes"
    rationale = (
        "A mutable default argument or a class-level mutable attribute "
        "is one object shared by every call and every instance.  When "
        "process functions reach it, concurrent same-instant mutations "
        "race exactly like a module global, but the sharing is "
        "invisible at the call site.  Default to None and allocate "
        "per-call, or move the attribute into __init__."
    )
    bad = "def proc(env, seen=[]):\n    yield env.timeout(1)\n    seen.append(env.now)"
    good = (
        "def proc(env, seen=None):\n"
        "    seen = [] if seen is None else seen\n"
        "    yield env.timeout(1)"
    )

    def check_program(self, program) -> Iterator[Finding]:
        graph = program.graph
        reachable = graph.process_reachable
        for qn in sorted(reachable):
            info = graph.functions[qn]
            args = info.node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if is_mutable_expr(default):
                    yield self.finding_in(
                        program,
                        info.relpath,
                        default,
                        f"process function '{qn}' has a mutable default "
                        "argument: one object shared by every call — "
                        "default to None and allocate per call",
                    )
        for class_qn in sorted(graph.classes):
            if not any(m in reachable for m in graph.methods_of(class_qn)):
                continue
            node, relpath = graph.classes[class_qn]
            for stmt in node.body:
                value = None
                target = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    target, value = stmt.target, stmt.value
                if (
                    isinstance(target, ast.Name)
                    and value is not None
                    and is_mutable_expr(value)
                ):
                    yield self.finding_in(
                        program,
                        relpath,
                        value,
                        f"class '{class_qn}' (methods run as kernel "
                        f"processes) shares mutable class attribute "
                        f"'{target.id}' across instances — move it into "
                        "__init__",
                    )
