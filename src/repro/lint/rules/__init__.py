"""Rule base class and registry.

Every rule is a subclass of :class:`Rule` decorated with
:func:`register`.  A rule declares its id (``<FAMILY><NNN>``), a
one-line summary, a rationale, and bad/good example snippets (rendered
by ``--list-rules`` and quoted in ``docs/LINTING.md``), plus a
``check(ctx)`` generator yielding :class:`~repro.lint.findings.Finding`.

Importing this package imports the rule modules, so the registry is
always fully populated after ``from repro.lint import rules``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Type

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import FileContext, ProgramContext


class Rule:
    """One static check.  Subclasses set the class attributes below."""

    id: str = ""
    family: str = ""  # "DET" | "KERNEL" | "OBSRES" | "SUP"
    summary: str = ""
    rationale: str = ""
    bad: str = ""  # minimal firing example
    good: str = ""  # minimal non-firing counterpart

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: "FileContext", node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            path=ctx.relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            source_line=ctx.line(line),
        )


class ProgramRule(Rule):
    """A whole-program rule: sees every parsed file of the run at once.

    Program rules run in a second pass after the per-file rules, against
    a :class:`~repro.lint.engine.ProgramContext` (all parsed files plus
    the lazily-built :class:`~repro.lint.callgraph.ProgramGraph`).
    Their findings carry whatever path they anchor to, so per-file
    scoping and inline suppressions still apply — the engine filters by
    ``finding.path``, not by the file that triggered the rule.
    """

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        return iter(())  # program rules only run in the program pass

    def check_program(self, program: "ProgramContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding_in(
        self, program: "ProgramContext", relpath: str, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            path=relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
            source_line=program.line(relpath, line),
        )


REGISTRY: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.id or not cls.family:
        raise ValueError(f"rule {cls.__name__} must set id and family")
    if cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    return [REGISTRY[rid] for rid in sorted(REGISTRY)]


def known_ids() -> set[str]:
    return set(REGISTRY)


# Populate the registry.
from repro.lint.rules import det as _det  # noqa: E402,F401
from repro.lint.rules import kernel as _kernel  # noqa: E402,F401
from repro.lint.rules import obsres as _obsres  # noqa: E402,F401
from repro.lint.rules import race as _race  # noqa: E402,F401
