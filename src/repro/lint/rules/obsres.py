"""OBS/RES — observability and resilience contract rules.

The obs layer's guarantees (span trees that tile the run, metrics that
match live monitors) and the resilience layer's guarantees (every retry
goes through RetryPolicy, every failure gets classified) only hold if
nobody routes around them.  These rules catch the common bypasses.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint import astutil
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register


def _is_tracer_receiver(node: ast.expr) -> bool:
    """Heuristic: the receiver names a tracer (tracer, env.tracer, ...)."""
    text = astutil.receiver_text(node)
    return text.split(".")[-1].endswith("tracer") or text.endswith("tracer")


@register
class UnclosedSpanRule(Rule):
    id = "OBS001"
    family = "OBSRES"
    summary = "span started without a guaranteed finish"
    rationale = (
        "tracer.start() spans that are never finished have no end time: "
        "critical-path extraction, phase tiling, and the Fig-4 overhead "
        "decomposition all silently miscount.  Use `with tracer.span(...)` "
        "for synchronous sections or guarantee .finish() for "
        "cross-process spans."
    )
    bad = "span = tracer.start('bind')\ndo_work()  # span never finished"
    good = "span = tracer.start('bind')\ntry:\n    do_work()\nfinally:\n    span.finish()"

    def check(self, ctx) -> Iterator[Finding]:
        for fn in astutil.functions(ctx.tree):
            has_finish = any(
                isinstance(n, ast.Attribute) and n.attr == "finish"
                for n in ast.walk(fn)
            )
            for node in astutil.own_nodes(fn):
                if not isinstance(node, ast.Call):
                    continue
                if not (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in {"start", "span"}
                    and _is_tracer_receiver(node.func.value)
                ):
                    continue
                par = astutil.parent(node)
                if node.func.attr == "span":
                    # tracer.span() is a context manager; anything other
                    # than `with tracer.span(...)` discards the interval.
                    if isinstance(par, ast.Expr):
                        yield self.finding(
                            ctx,
                            node,
                            "tracer.span(...) discarded; use "
                            "`with tracer.span(...) as s:`",
                        )
                    continue
                if isinstance(par, ast.Expr):
                    yield self.finding(
                        ctx,
                        node,
                        "tracer.start(...) result discarded; the span can "
                        "never be finished",
                    )
                elif isinstance(par, ast.Assign) and not has_finish:
                    names = [
                        t.id for t in par.targets if isinstance(t, ast.Name)
                    ]
                    if not names:
                        continue
                    span_var = names[0]
                    if self._escapes(fn, par, span_var):
                        continue
                    yield self.finding(
                        ctx,
                        node,
                        f"span {span_var!r} is started but no .finish() "
                        "appears in this function and the span does not "
                        "escape; the interval never closes",
                    )

    @staticmethod
    def _escapes(fn: ast.AST, assign: ast.Assign, name: str) -> bool:
        """Span handed to a callee, returned, or stored on an object."""
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name) and sub.id == name:
                            return True
            elif isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
            elif isinstance(node, ast.Assign) and node is not assign:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Attribute):
                        for sub in ast.walk(node.value):
                            if isinstance(sub, ast.Name) and sub.id == name:
                                return True
        return False


@register
class PrintInLibraryRule(Rule):
    id = "OBS002"
    family = "OBSRES"
    summary = "print() in library code"
    rationale = (
        "Library output belongs in obs instruments (spans, metrics, "
        "alerts) or a reporter, where it is attributable and testable.  "
        "print() bypasses both; stdout is the product only for the "
        "repro.report / repro.viz CLI surfaces (scoped out in "
        "pyproject.toml)."
    )
    bad = "print(f'scheduled {job}')"
    good = "tracer.instant('scheduled', tags={'job': job.name})"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and astutil.is_builtin_call(
                node, "print", ctx.imports
            ):
                yield self.finding(
                    ctx,
                    node,
                    "print() in library code; record via obs instruments "
                    "or a reporter",
                )


@register
class DirectSpanAccessRule(Rule):
    id = "OBS003"
    family = "OBSRES"
    summary = "direct tracer.spans access outside repro.obs"
    rationale = (
        "tracer.spans is the in-memory sink's retained list; touching it "
        "directly couples callers to one sink and raises at runtime on "
        "constant-memory runs (spill/streaming sinks retain nothing).  "
        "Go through tracer.query() / repro.obs.stream so the same code "
        "works under every sink.  Scoped to src/repro/* with repro.obs "
        "itself excluded (pyproject [tool.simlint.scopes])."
    )
    bad = "n_failed = sum(1 for s in tracer.spans if s.tags.get('state') == 'FAILED')"
    good = "n_failed = len(tracer.query().spans(tags={'state': 'FAILED'}))"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "spans"
                and _is_tracer_receiver(node.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "direct tracer.spans access is sink-specific (raises "
                    "under spill/streaming sinks); use tracer.query() or "
                    "the repro.obs.stream APIs",
                )


@register
class SwallowedExceptRule(Rule):
    id = "RES001"
    family = "OBSRES"
    summary = "bare or swallowing except handler"
    rationale = (
        "A bare `except:` (or `except Exception: pass`) eats the "
        "failure before classify_failure() can see it, so TransferError "
        "transience, walltime kills, and node deaths all degrade to "
        "silent success.  Catch the narrowest type and route the cause "
        "through repro.resilience.classify_failure."
    )
    bad = "try:\n    transfer()\nexcept Exception:\n    pass"
    good = (
        "try:\n    transfer()\nexcept TransferError as exc:\n"
        "    policy.on_failure(classify_failure(exc))"
    )

    _BROAD = {"Exception", "BaseException"}

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except: catches everything including "
                    "KeyboardInterrupt; name the exception type",
                )
                continue
            broad = (
                isinstance(node.type, ast.Name) and node.type.id in self._BROAD
            )
            trivial = all(
                isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in node.body
            )
            if broad and trivial:
                yield self.finding(
                    ctx,
                    node,
                    "broad except handler swallows the failure without "
                    "classification; catch a narrow type or route through "
                    "classify_failure()",
                )


#: Identifier tokens that mark a variable as a retry counter.  Matched
#: against underscore/digit-split tokens so "entries" does not match
#: "tries" but "max_retries" and "attempt2" do.
_RETRY_TOKENS = {"attempt", "attempts", "retry", "retries", "tries", "backoff"}
_TOKEN_SPLIT = re.compile(r"[_\d]+")


def _is_retry_name(name: str) -> bool:
    return any(tok in _RETRY_TOKENS for tok in _TOKEN_SPLIT.split(name.lower()))


def _names_in(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id


@register
class HandRolledRetryRule(Rule):
    id = "RES002"
    family = "OBSRES"
    summary = "hand-rolled retry loop bypassing RetryPolicy"
    rationale = (
        "Ad-hoc while/for retry loops reintroduce the four divergent "
        "retry behaviours PR 4 unified: no failure classification, no "
        "deterministic backoff jitter, no attempt budget shared with "
        "the quarantine logic.  Drive retries through "
        "repro.resilience.RetryPolicy."
    )
    bad = (
        "attempt = 0\nwhile attempt < 3:\n    try:\n        submit(task)\n"
        "        break\n    except Exception:\n        attempt += 1"
    )
    good = (
        "policy = RetryPolicy.legacy()\n"
        "while policy.should_retry(task.record):\n    submit(task)"
    )

    _POLICY_API = {"should_retry", "next_delay", "on_failure", "record_attempt"}

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.While, ast.For)):
                continue
            tries = [
                n for n in astutil.own_nodes(node) if isinstance(n, ast.Try)
            ]
            if not tries:
                continue
            # Policy-driven loops are the sanctioned pattern, not a bypass.
            policy_driven = any(
                (isinstance(n, ast.Attribute) and n.attr in self._POLICY_API)
                or (isinstance(n, ast.Name) and n.id == "RetryPolicy")
                for n in ast.walk(node)
            )
            if policy_driven:
                continue
            header = node.test if isinstance(node, ast.While) else node.iter
            counter_in_header = any(
                _is_retry_name(name) for name in _names_in(header)
            )
            counter_in_body = any(
                isinstance(n, ast.AugAssign)
                and any(_is_retry_name(nm) for nm in _names_in(n.target))
                for t in tries
                for n in ast.walk(t)
            )
            # `continue` in an except handler re-runs the loop body after
            # a failure.  In a `while` that is a retry; in a `for` it is
            # skip-to-next-item, which is not.
            retry_continue = isinstance(node, ast.While) and any(
                isinstance(n, ast.Continue)
                for t in tries
                for handler in t.handlers
                for stmt in handler.body
                for n in ast.walk(stmt)
            )
            if counter_in_header or counter_in_body or retry_continue:
                yield self.finding(
                    ctx,
                    node,
                    "hand-rolled retry loop (try/except with an attempt "
                    "counter); use repro.resilience.RetryPolicy so "
                    "failures are classified and backoff stays "
                    "deterministic",
                )
