"""KERNEL — simkernel misuse rules.

The discrete-event kernel only works when process functions are real
generators that yield events, never block the interpreter, and return
leased resources on every path.  These rules catch the misuses that
otherwise surface as hangs, starved queues, or leaked capacity deep
into a run.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint import astutil
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register


def _local_function_defs(tree: ast.Module) -> dict[str, Optional[ast.FunctionDef]]:
    """Name → def for functions defined in this module.

    A name defined more than once maps to None (ambiguous — skip it
    rather than guess).
    """
    defs: dict[str, Optional[ast.FunctionDef]] = {}
    for fn in astutil.functions(tree):
        defs[fn.name] = None if fn.name in defs else fn
    return defs


@register
class YieldlessProcessRule(Rule):
    id = "KER001"
    family = "KERNEL"
    summary = "process registered from a function that never yields"
    rationale = (
        "env.process() expects a generator.  A plain function runs to "
        "completion at registration time (or raises), consumes no "
        "simulated time, and its 'process' never appears in the event "
        "queue — a silent no-op that skews every downstream metric."
    )
    bad = "def work(env):\n    env.timeout(5)  # missing yield\nenv.process(work(env))"
    good = "def work(env):\n    yield env.timeout(5)\nenv.process(work(env))"

    def check(self, ctx) -> Iterator[Finding]:
        defs = _local_function_defs(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute) and node.func.attr == "process"
            ):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name)):
                continue
            target = defs.get(arg.func.id)
            if target is not None and not astutil.is_generator(target):
                yield self.finding(
                    ctx,
                    node,
                    f"process function {arg.func.id}() contains no yield; "
                    "it will run synchronously at registration and never "
                    "enter the event loop",
                )


@register
class BlockingSleepRule(Rule):
    id = "KER002"
    family = "KERNEL"
    summary = "blocking time.sleep in simulated code"
    rationale = (
        "time.sleep blocks the host interpreter, not the simulated "
        "clock: the event loop freezes and simulated time never "
        "advances.  Processes wait with `yield env.timeout(delay)`."
    )
    bad = "def work(env):\n    time.sleep(1)\n    yield env.timeout(1)"
    good = "def work(env):\n    yield env.timeout(1)"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                if astutil.call_name(node, ctx.imports) == "time.sleep":
                    yield self.finding(
                        ctx,
                        node,
                        "time.sleep() blocks the interpreter, not the "
                        "simulated clock; use `yield env.timeout(delay)`",
                    )


@register
class NonEventYieldRule(Rule):
    id = "KER003"
    family = "KERNEL"
    summary = "yield of a literal in an event-yielding process"
    rationale = (
        "The kernel resumes a process by triggering the *event* it "
        "yielded.  Yielding a bare literal in a process that otherwise "
        "yields events is almost always a missing env.timeout(...) and "
        "the kernel will fail (or hang) when it tries to schedule it."
    )
    bad = "def work(env):\n    yield env.timeout(1)\n    yield 5  # not an event"
    good = "def work(env):\n    yield env.timeout(1)\n    yield env.timeout(5)"

    def check(self, ctx) -> Iterator[Finding]:
        for fn in astutil.functions(ctx.tree):
            yields = [
                n for n in astutil.own_nodes(fn) if isinstance(n, ast.Yield)
            ]
            if not yields:
                continue
            event_like = any(
                isinstance(y.value, (ast.Call, ast.Await)) for y in yields
            )
            if not event_like:
                continue  # a data generator, not a kernel process
            for y in yields:
                if y.value is None or isinstance(y.value, ast.Constant):
                    yield self.finding(
                        ctx,
                        y,
                        "yield of a non-event literal inside a kernel "
                        "process; every yield must produce an Event "
                        "(e.g. env.timeout(...))",
                    )


@register
class LeakedLeaseRule(Rule):
    id = "KER004"
    family = "KERNEL"
    summary = "resource request without a guaranteed release"
    rationale = (
        "A Resource slot claimed with .request() must be returned with "
        ".release() on every path — including failure paths — or "
        "capacity leaks and the simulation livelocks.  Use the request "
        "as a context manager or release in a try/finally."
    )
    bad = "req = gate.request()\nyield req\ndo_work()\ngate.release(req)"
    good = (
        "req = gate.request()\nyield req\ntry:\n    do_work()\n"
        "finally:\n    gate.release(req)"
    )

    def check(self, ctx) -> Iterator[Finding]:
        for fn in astutil.functions(ctx.tree):
            requests = []
            releases = []
            for node in astutil.own_nodes(fn):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr == "request":
                    requests.append(node)
                elif node.func.attr == "release":
                    releases.append(node)
            for req in requests:
                if astutil.in_with_item(req):
                    continue  # `with res.request() as r:` releases itself
                if not releases:
                    yield self.finding(
                        ctx,
                        req,
                        ".request() with no .release() anywhere in the "
                        "function; the slot leaks on completion",
                    )
                elif not any(astutil.in_finally(rel) for rel in releases):
                    yield self.finding(
                        ctx,
                        req,
                        ".request() released outside try/finally; an "
                        "exception between them leaks the slot — release "
                        "in a finally block or use `with`",
                    )


@register
class DirectHeapImportRule(Rule):
    id = "KER005"
    family = "KERNEL"
    summary = "direct heapq import inside the kernel"
    rationale = (
        "repro.simkernel.queueing owns the kernel's one sanctioned "
        "heapq import: the calendar queue's ordering guarantees "
        "(time -> priority -> creation order) live in its helpers, and "
        "a module that heap-pushes raw tuples on the side can reorder "
        "same-instant events and silently break golden-trace "
        "determinism.  Scoped to src/repro/simkernel/* — heapq stays "
        "fair game elsewhere in the tree."
    )
    bad = "import heapq\nheapq.heappush(queue, (t, seq, ev))"
    good = (
        "from repro.simkernel.queueing import heap_push\n"
        "heap_push(queue, (t, seq, ev))"
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "heapq" or alias.name.startswith("heapq."):
                        yield self.finding(
                            ctx,
                            node,
                            "direct `import heapq` in the kernel; use the "
                            "ordering-preserving helpers in "
                            "repro.simkernel.queueing instead",
                        )
                        break
            elif isinstance(node, ast.ImportFrom):
                if node.module == "heapq" and node.level == 0:
                    yield self.finding(
                        ctx,
                        node,
                        "direct `from heapq import ...` in the kernel; use "
                        "the ordering-preserving helpers in "
                        "repro.simkernel.queueing instead",
                    )


def _is_fixed_timeout_yield(y: ast.Yield) -> bool:
    """``yield <expr>.timeout(<numeric literal>)``."""
    call = y.value
    if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute)):
        return False
    if call.func.attr != "timeout" or not call.args:
        return False
    delay = call.args[0]
    return isinstance(delay, ast.Constant) and isinstance(
        delay.value, (int, float)
    )


@register
class FixedIntervalPollRule(Rule):
    id = "KER006"
    family = "KERNEL"
    summary = "fixed-interval polling loop in a kernel process"
    rationale = (
        "A `while True:` loop whose only yield is a constant "
        "env.timeout() re-checks state on a wall-clock grid: it burns "
        "kernel events while nothing changes, and reacts a fraction of "
        "the interval late when something does.  Schedulers and "
        "watchers should sleep on the event that signals the change "
        "(a wake event, a one-shot deadline timer) and be kicked by "
        "whoever changes the state.  A loop that *also* yields a "
        "condition event is event-driven with a timeout and is fine."
    )
    bad = (
        "while True:\n"
        "    yield env.timeout(5.0)  # poll grid\n"
        "    self._try_schedule()"
    )
    good = (
        "while True:\n"
        "    yield self._wake\n"
        "    self._wake = env.event()\n"
        "    self._try_schedule()"
    )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            test = node.test
            if not (isinstance(test, ast.Constant) and test.value is True):
                continue
            yields = [
                n
                for n in astutil.own_nodes(node)
                if isinstance(n, (ast.Yield, ast.YieldFrom))
            ]
            if not yields:
                continue
            if all(
                isinstance(y, ast.Yield) and _is_fixed_timeout_yield(y)
                for y in yields
            ):
                yield self.finding(
                    ctx,
                    node,
                    "while-True loop waits only on a fixed-interval "
                    "timeout (polling); wake on the event that changes "
                    "the polled state instead",
                )


def _nested_defs(tree: ast.Module) -> set[str]:
    """Names of functions defined *inside* other functions (closures)."""
    nested: set[str] = set()
    for fn in astutil.functions(tree):
        node = astutil.parent(fn)
        while node is not None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(fn.name)
                break
            node = astutil.parent(node)
    return nested


@register
class UnresumableProcessPayloadRule(Rule):
    id = "KER007"
    family = "KERNEL"
    summary = "process payload that cannot survive checkpoint/resume"
    rationale = (
        "Checkpoint/resume never pickles generator frames: a resumed "
        "run re-enters each process through a *registered factory* — a "
        "module-level body whose whole position lives in an explicit "
        "state dict (docs/CHECKPOINT.md).  A payload built from a "
        "lambda, a generator expression, or a function nested inside "
        "another function closes over frame-local state that no "
        "factory can reconstruct, so the process silently vanishes "
        "from resumed runs.  Scoped to src/repro/ckpt/* — the one "
        "subtree that promises resumability."
    )
    bad = (
        "def launch(env, items):\n"
        "    def worker():  # closure over `items`\n"
        "        yield env.timeout(1)\n"
        "    env.process(worker())"
    )
    good = (
        "def worker_body(env, ctx, state):  # registered factory\n"
        "    yield env.timeout_at(state['t_next'])\n"
        "env.process(worker_body(env, ctx, state))"
    )

    def check(self, ctx) -> Iterator[Finding]:
        nested = _nested_defs(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "process"
            ):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Lambda) or (
                isinstance(arg, ast.Call) and isinstance(arg.func, ast.Lambda)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "process payload is a lambda; a resumed run cannot "
                    "re-enter it through the factory registry — use a "
                    "module-level body with an explicit state dict",
                )
            elif isinstance(arg, ast.GeneratorExp):
                yield self.finding(
                    ctx,
                    node,
                    "process payload is a generator expression; it closes "
                    "over frame-local state no checkpoint can capture — "
                    "use a module-level body with an explicit state dict",
                )
            elif (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id in nested
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"process payload {arg.func.id}() is a nested function "
                    "(closure); resume re-enters processes via registered "
                    "module-level factories, which cannot reconstruct "
                    "closed-over frame state",
                )
