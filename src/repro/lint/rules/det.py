"""DET — determinism rules.

The simulation substrate promises byte-identical traces for identical
seeds (``tests/golden/``).  Everything here flags a way that promise
silently breaks: wall clocks, unseeded randomness, hash-dependent
ordering, set-iteration order, and environment-dependent behaviour.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import astutil
from repro.lint.findings import Finding
from repro.lint.rules import Rule, register

#: Call targets that read a wall clock.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
}

#: datetime constructors that capture "now".
_DATETIME_NOW = {"now", "utcnow", "today"}

#: numpy.random entry points that are fine: explicitly seeded
#: constructors, not the hidden global stream.
_NP_RANDOM_OK = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.MT19937",
}

#: stdlib random entry points that are fine (instances carry their seed).
_PY_RANDOM_OK = {"random.Random"}

#: Call targets that consume a seed; hash()/id() must not feed them.
_SEED_SINKS = {"numpy.random.default_rng", "random.Random"}


@register
class WallClockRule(Rule):
    id = "DET001"
    family = "DET"
    summary = "wall-clock read in simulated code"
    rationale = (
        "Simulated components must take time from Environment.now; a "
        "wall-clock read couples results to the host machine and makes "
        "golden trace digests irreproducible."
    )
    bad = "import time\nstart = time.time()"
    good = "start = env.now"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = astutil.call_name(node, ctx.imports)
            if name is None:
                continue
            if name in _WALL_CLOCK:
                yield self.finding(
                    ctx, node, f"wall-clock call {name}() in simulated code; use env.now"
                )
            elif name.startswith("datetime.") and name.split(".")[-1] in _DATETIME_NOW:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock call {name}() in simulated code; "
                    "derive timestamps from simulated time",
                )


@register
class UnseededRandomRule(Rule):
    id = "DET002"
    family = "DET"
    summary = "module-level / unseeded randomness"
    rationale = (
        "random.* and numpy.random.* module-level calls draw from hidden "
        "global state that any import can perturb.  Randomness must come "
        "from a seeded Random/Generator instance carried by the scenario "
        "or kernel."
    )
    bad = "import random\ndelay = random.random()"
    good = "rng = np.random.default_rng(seed)\ndelay = rng.random()"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = astutil.call_name(node, ctx.imports)
            if name is None:
                continue
            if name.startswith("random.") and name not in _PY_RANDOM_OK:
                yield self.finding(
                    ctx,
                    node,
                    f"module-level {name}() uses the global random stream; "
                    "use a seeded random.Random instance",
                )
            elif name.startswith("numpy.random.") and name not in _NP_RANDOM_OK:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() uses numpy's global random stream; "
                    "use numpy.random.default_rng(seed)",
                )


@register
class HashOrderingRule(Rule):
    id = "DET003"
    family = "DET"
    summary = "hash()/id() feeding ordering or seeding"
    rationale = (
        "hash() of str/bytes is salted per process (PYTHONHASHSEED) and "
        "id() is an address; ordering or seeding derived from either "
        "varies between runs.  Sort on stable keys; seed from explicit "
        "integers."
    )
    bad = "rng = np.random.default_rng(hash(key) % 2**32)"
    good = "rng = np.random.default_rng(case_id * 100 + replica)"

    _ORDERING = {"sorted", "min", "max"}

    def _hash_calls(self, root: ast.AST, ctx) -> Iterator[ast.Call]:
        for sub in ast.walk(root):
            if isinstance(sub, ast.Call) and (
                astutil.is_builtin_call(sub, "hash", ctx.imports)
                or astutil.is_builtin_call(sub, "id", ctx.imports)
            ):
                yield sub

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = None
            if isinstance(node.func, ast.Name) and node.func.id in self._ORDERING:
                sink = f"{node.func.id}()"
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "sort":
                sink = ".sort()"
            else:
                name = astutil.call_name(node, ctx.imports)
                if name in _SEED_SINKS or (
                    isinstance(node.func, ast.Attribute) and node.func.attr == "seed"
                ):
                    sink = f"{name or 'seed'}()"
            if sink is None:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for bad in self._hash_calls(arg, ctx):
                    fn = bad.func.id  # type: ignore[union-attr]
                    yield self.finding(
                        ctx,
                        bad,
                        f"{fn}() result feeds {sink}; {fn}() varies between "
                        "runs — use a stable key or explicit integer seed",
                    )


#: Wrappers that materialize their iterable in iteration order.
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "iter"}
#: Set-returning method names on set objects.
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}


def _is_set_expr(node: ast.expr, imports: dict[str, str]) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return node.func.id not in imports
        if isinstance(node.func, ast.Attribute) and node.func.attr in _SET_METHODS:
            return True
    return False


@register
class SetIterationRule(Rule):
    id = "DET004"
    family = "DET"
    summary = "iteration over an unordered set expression"
    rationale = (
        "Set iteration order depends on insertion history and the hash "
        "salt; feeding it into scheduling or placement decisions makes "
        "grant order differ between runs.  Wrap in sorted() or keep an "
        "insertion-ordered structure (dict / OrderedSet)."
    )
    bad = "for node in set(candidates): place(node)"
    good = "for node in sorted(set(candidates)): place(node)"

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, ctx.imports):
                    yield self.finding(
                        ctx,
                        node.iter,
                        "iterating a set: order varies between runs; "
                        "wrap in sorted() or use an ordered container",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter, ctx.imports):
                        yield self.finding(
                            ctx,
                            gen.iter,
                            "comprehension over a set: order varies between "
                            "runs; wrap in sorted()",
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_WRAPPERS
                    and node.func.id not in ctx.imports
                    and node.args
                    and _is_set_expr(node.args[0], ctx.imports)
                ):
                    yield self.finding(
                        ctx,
                        node.args[0],
                        f"{node.func.id}() of a set preserves nondeterministic "
                        "set order; wrap in sorted()",
                    )


@register
class EnvironReadRule(Rule):
    id = "DET005"
    family = "DET"
    summary = "os.environ read outside an entry point"
    rationale = (
        "Library behaviour keyed on environment variables is invisible "
        "configuration: two hosts produce different results from the "
        "same seed.  Read the environment only in CLI entry points and "
        "pass values down explicitly."
    )
    bad = "limit = int(os.environ.get('REPRO_LIMIT', 8))"
    good = "def run(limit: int = 8): ...  # caller decides"

    def check(self, ctx) -> Iterator[Finding]:
        if ctx.is_entry_point:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                if (
                    node.attr == "environ"
                    and astutil.dotted_name(node, ctx.imports) == "os.environ"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "os.environ read in library code; accept the value "
                        "as a parameter from the entry point",
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if ctx.imports.get(node.id) == "os.environ":
                    yield self.finding(
                        ctx,
                        node,
                        "os.environ read in library code; accept the value "
                        "as a parameter from the entry point",
                    )
            elif isinstance(node, ast.Call):
                if astutil.call_name(node, ctx.imports) == "os.getenv":
                    yield self.finding(
                        ctx,
                        node,
                        "os.getenv() in library code; accept the value as a "
                        "parameter from the entry point",
                    )
