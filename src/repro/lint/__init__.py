"""simlint — determinism & sim-correctness static analysis.

An AST-based lint pass over the reproduction's own contracts: no wall
clocks or unseeded randomness in simulated code (DET), kernel processes
that actually yield events and return their leases (KERNEL), spans that
close and retries that go through RetryPolicy (OBS/RES).  Run it as::

    python -m repro.lint [paths…] [--json]

Configuration (rule scoping, baseline, entry-point globs) lives in
``[tool.simlint]`` in pyproject.toml; inline suppressions look like
``# simlint: disable=DET003 -- <required justification>``.  See
docs/LINTING.md for the rule catalog.
"""

from repro.lint.config import LintConfig, find_project_root, load_config
from repro.lint.engine import FileContext, LintResult, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.rules import REGISTRY, Rule, all_rules, register

__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "LintResult",
    "REGISTRY",
    "Rule",
    "all_rules",
    "find_project_root",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
]
