"""simlint configuration, loaded from ``[tool.simlint]`` in pyproject.toml.

All tool config lives in pyproject so it stops accumulating in
scattered dotfiles.  The shape::

    [tool.simlint]
    paths = ["src", "tests"]          # default CLI targets
    disable = []                      # rule ids switched off globally
    enable = []                       # empty = everything registered
    entry-globs = ["*/__main__.py"]   # DET005 exemption (CLI surfaces)
    baseline = []                     # grandfathered finding fingerprints

    [tool.simlint.scopes]
    # family or rule id -> path globs (fnmatch; '*' crosses '/')
    DET = { include = ["src/repro/*"], exclude = [] }
    OBS002 = { include = ["src/repro/*"], exclude = ["src/repro/report/*"] }

Scoping resolution: a rule uses its own id's scope if present, else its
family's, else the implicit "everywhere" scope.  Globs use
:func:`fnmatch.fnmatch`, where ``*`` matches across path separators —
``src/repro/*`` covers the whole package tree.
"""

from __future__ import annotations

try:  # stdlib on Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on the 3.10 CI leg
    try:
        import tomli as tomllib  # type: ignore[no-redef]
    except ModuleNotFoundError:
        tomllib = None  # type: ignore[assignment]

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Optional

#: Scopes shipped as defaults; pyproject entries override per key.
#: DET and the OBS/RES bypass rules police the simulation substrate in
#: src/; tests keep the KERNEL correctness rules (a test registering a
#: yieldless process is broken too) but may print, read clocks, and
#: hand-roll loops freely.
_DEFAULT_SCOPES: dict[str, dict[str, list[str]]] = {
    "DET": {"include": ["src/repro/*"], "exclude": []},
    # The whole-program RACE family reasons about kernel process
    # functions; the simulation substrate is its domain.  Tests spawn
    # throwaway shared state on purpose (and the sanitizer's own
    # fixtures *are* deliberate races).
    "RACE": {"include": ["src/repro/*"], "exclude": []},
    "OBSRES": {"include": ["src/repro/*"], "exclude": []},
    "KERNEL": {"include": ["src/repro/*", "tests/*", "benchmarks/*"], "exclude": []},
    # Tests exercise raw request/release sequencing (queue order,
    # cancellation, leak behaviour) on purpose; the lease-hygiene rule
    # polices production code only.
    "KER004": {"include": ["src/repro/*"], "exclude": []},
    # Polling loops are a production-scheduler smell; tests and
    # benchmarks legitimately use fixed-interval background load
    # generators.
    "KER006": {"include": ["src/repro/*"], "exclude": []},
    # The kernel's heapq-hygiene rule polices the kernel only;
    # queueing.py is the sanctioned import site it points everyone at.
    "KER005": {
        "include": ["src/repro/simkernel/*"],
        "exclude": ["src/repro/simkernel/queueing.py"],
    },
    # The checkpoint-safety rule (no lambda/closure process payloads)
    # polices the one subtree that promises factory re-entry resume.
    "KER007": {"include": ["src/repro/ckpt/*"], "exclude": []},
    # stdout is the product for the report/viz CLI surfaces.
    "OBS002": {
        "include": ["src/repro/*"],
        "exclude": ["src/repro/report/*", "src/repro/viz/*", "*/__main__.py"],
    },
    # Direct tracer.spans reads are sink-specific; the obs layer itself
    # is the one place allowed to touch the retained list.
    "OBS003": {
        "include": ["src/repro/*"],
        "exclude": ["src/repro/obs/*"],
    },
}


@dataclass
class LintConfig:
    paths: list[str] = field(default_factory=lambda: ["src", "tests"])
    enable: list[str] = field(default_factory=list)
    disable: list[str] = field(default_factory=list)
    entry_globs: list[str] = field(default_factory=lambda: ["*/__main__.py"])
    baseline: list[str] = field(default_factory=list)
    scopes: dict[str, dict[str, list[str]]] = field(
        default_factory=lambda: {k: dict(v) for k, v in _DEFAULT_SCOPES.items()}
    )

    # -- queries -----------------------------------------------------------

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.disable:
            return False
        if self.enable:
            return rule_id in self.enable
        return True

    def rule_applies(self, rule_id: str, family: str, relpath: str) -> bool:
        """Does ``rule_id`` apply to the file at ``relpath``?"""
        scope = self.scopes.get(rule_id) or self.scopes.get(family)
        if scope is None:
            return True
        include = scope.get("include", [])
        exclude = scope.get("exclude", [])
        if include and not any(fnmatch(relpath, g) for g in include):
            return False
        return not any(fnmatch(relpath, g) for g in exclude)

    def is_entry_point(self, relpath: str) -> bool:
        return any(fnmatch(relpath, g) for g in self.entry_globs)


def load_config(root: Path, pyproject: Optional[Path] = None) -> LintConfig:
    """Config from ``<root>/pyproject.toml`` (or an explicit file)."""
    cfg = LintConfig()
    path = pyproject or root / "pyproject.toml"
    if not path.is_file():
        return cfg
    if tomllib is None:
        raise RuntimeError(
            f"cannot read {path}: no TOML parser available "
            "(Python >= 3.11 ships tomllib; on 3.10 install `tomli`)"
        )
    with open(path, "rb") as fh:
        doc = tomllib.load(fh)
    section = doc.get("tool", {}).get("simlint", {})
    if not isinstance(section, dict):
        return cfg
    if "paths" in section:
        cfg.paths = [str(p) for p in section["paths"]]
    if "enable" in section:
        cfg.enable = [str(r) for r in section["enable"]]
    if "disable" in section:
        cfg.disable = [str(r) for r in section["disable"]]
    if "entry-globs" in section:
        cfg.entry_globs = [str(g) for g in section["entry-globs"]]
    if "baseline" in section:
        cfg.baseline = [str(b) for b in section["baseline"]]
    for key, scope in section.get("scopes", {}).items():
        if isinstance(scope, dict):
            cfg.scopes[key] = {
                "include": [str(g) for g in scope.get("include", [])],
                "exclude": [str(g) for g in scope.get("exclude", [])],
            }
    return cfg


def find_project_root(start: Path) -> Path:
    """Nearest ancestor of ``start`` holding a pyproject.toml (else start)."""
    start = start.resolve()
    for candidate in [start, *start.parents]:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start
