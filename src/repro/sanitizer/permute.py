"""Batch-permutation checker for the golden E1–E8 scenarios.

The calendar-queue kernel dispatches every event scheduled at the same
simulated instant as one batch, in insertion order.  Correct models
must not depend on that order: two events at the same instant have no
causal edge between them, so any batch permutation must produce the
same simulation.  This module re-runs the reduced-scale golden
scenarios with every same-instant batch reversed or deterministically
shuffled (:class:`repro.sanitizer.core.Sanitizer`'s ``permute`` mode)
and compares the exported traces against an unpermuted baseline built
in the same process.

Permuting a batch legitimately moves two things that are *not*
simulation state: the order trace spans are opened (span ids are
allocated sequentially) and which of several interchangeable workers
picks up which work item (the timeline is identical, only identity
tags swap).  The comparison therefore classifies each permuted trace
into one of four verdicts, from strongest to weakest:

``identical``
    Byte-identical to the baseline.
``reordered``
    Equal after renumbering span ids (parent links are rewritten to
    the parent span's name) and sorting events — same spans, same
    timestamps, same tags; only export order and id assignment moved.
``relabeled``
    Equal after *additionally* renaming interchangeable worker
    identities (``worker`` tags) by their service signature — the
    timeline is identical but symmetric workers swapped roles.
``divergent``
    A timestamp, event, or tag actually changed: real order
    sensitivity.  The report carries the first divergent event with
    surrounding context, in the style of ``tests/golden/regen.py
    --diff``.

Only ``divergent`` fails the check.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.obs.tracer import tracing_hook
from repro.sanitizer.core import enable_sanitizer

#: Permutation modes exercised by default.
MODES = ("reverse", "shuffle")

#: Verdicts that pass the check, strongest first.
PASSING = ("identical", "reordered", "relabeled")

#: Lines of context shown around the first divergent event.
CONTEXT = 3


@dataclass
class PermutationResult:
    """Outcome of one (scenario, permutation-mode) run."""

    bench_id: str
    mode: str
    verdict: str
    #: First-divergence forensics; empty unless ``divergent``.
    detail: str = ""
    #: Same-instant write-write races the sanitizer saw during the run.
    races: list = field(default_factory=list)
    #: Batch-dependent queue-insertion orders: recorded, never fatal —
    #: the verdict above is the end-to-end proof they converged.
    order_warnings: list = field(default_factory=list)
    batches: int = 0
    units: int = 0

    @property
    def passed(self) -> bool:
        return self.verdict in PASSING and not self.races

    def to_json(self) -> dict:
        return {
            "bench_id": self.bench_id,
            "mode": self.mode,
            "verdict": self.verdict,
            "passed": self.passed,
            "detail": self.detail,
            "races": list(self.races),
            "order_warnings": list(self.order_warnings),
            "batches": self.batches,
            "units": self.units,
        }


def load_build_traces(traces_path: Path | str) -> Callable:
    """Import ``build_traces`` from the golden suite by file path.

    The builders live under ``tests/`` (they are test fixtures, not
    library code), so they are loaded explicitly rather than imported —
    ``python -m repro.sanitizer`` must work with only ``src`` on the
    path.
    """
    traces_path = Path(traces_path)
    repo_root = traces_path.resolve().parents[2]
    if str(repo_root) not in sys.path:
        # traces.py does ``from repro.obs import ...`` style imports
        # plus nothing test-local, but regen.py precedent: make the
        # repo root importable so sibling fixtures resolve.
        sys.path.insert(0, str(repo_root))
    spec = importlib.util.spec_from_file_location("_golden_traces", traces_path)
    if spec is None or spec.loader is None:
        raise FileNotFoundError(f"cannot load golden builders from {traces_path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.build_traces


# -- canonicalization ----------------------------------------------------------


def _parse(text: str) -> list[dict]:
    return [json.loads(line) for line in text.splitlines()]


def _strip_ids(records: list[dict]) -> list[dict]:
    """Replace sequential span ids with structural parent names."""
    names = {
        rec["id"]: rec.get("name", "?")
        for rec in records
        if rec.get("type") == "span" and "id" in rec
    }
    out = []
    for rec in records:
        rec = dict(rec)
        rec.pop("id", None)
        parent = rec.pop("parent", None)
        if parent is not None:
            rec["parent_name"] = names.get(parent, "?")
        out.append(rec)
    return out


def _worker_signature(records: list[dict], label: str) -> tuple:
    sig = []
    for rec in records:
        if rec.get("tags", {}).get("worker") == label:
            sig.append((rec.get("t0", rec.get("t", 0.0)), rec.get("name", "")))
    return tuple(sorted(sig))


def _relabel_workers(records: list[dict]) -> list[dict]:
    """Rename worker identity tags by service signature.

    Interchangeable workers (same spec, idle at the same instant) may
    swap which item each picks up under a batch permutation; the
    timeline is unchanged, so two traces that differ only in such tags
    are equal after renaming each worker by *what it did and when*
    rather than by its allocation-order id.
    """
    labels = {
        rec["tags"]["worker"]
        for rec in records
        if isinstance(rec.get("tags"), dict) and "worker" in rec["tags"]
    }
    ranked = sorted(labels, key=lambda lb: (_worker_signature(records, lb), lb))
    mapping = {label: f"w{idx}" for idx, label in enumerate(ranked)}
    out = []
    for rec in records:
        tags = rec.get("tags")
        if isinstance(tags, dict) and "worker" in tags:
            rec = dict(rec)
            rec["tags"] = dict(tags, worker=mapping[tags["worker"]])
        out.append(rec)
    return out


def _canonical(records: list[dict]) -> list[str]:
    return sorted(json.dumps(rec, sort_keys=True) for rec in records)


def _first_divergence(base: list[str], perm: list[str]) -> str:
    """First divergent event with context, regen.py ``--diff`` style."""
    limit = min(len(base), len(perm))
    idx = next((i for i in range(limit) if base[i] != perm[i]), limit)
    lines = [
        f"first divergent event at index {idx} "
        f"(baseline {len(base)} events, permuted {len(perm)})"
    ]
    for i in range(max(0, idx - CONTEXT), idx):
        lines.append(f"  = [{i}] {base[i]}")
    lines.append(f"  - [{idx}] " + (base[idx] if idx < len(base) else "<end of baseline>"))
    lines.append(f"  + [{idx}] " + (perm[idx] if idx < len(perm) else "<end of permuted>"))
    for i in range(idx + 1, min(idx + 1 + CONTEXT, len(base), len(perm))):
        marker = "=" if base[i] == perm[i] else "!"
        lines.append(f"  {marker} [{i}] {perm[i]}")
    return "\n".join(lines)


def classify(base_text: str, perm_text: str) -> tuple[str, str]:
    """Classify a permuted trace against the baseline.

    Returns ``(verdict, detail)`` where detail is non-empty only for
    ``divergent`` verdicts.
    """
    if base_text == perm_text:
        return "identical", ""
    base = _strip_ids(_parse(base_text))
    perm = _strip_ids(_parse(perm_text))
    if _canonical(base) == _canonical(perm):
        return "reordered", ""
    base_r = _canonical(_relabel_workers(base))
    perm_r = _canonical(_relabel_workers(perm))
    if base_r == perm_r:
        return "relabeled", ""
    return "divergent", _first_divergence(base_r, perm_r)


# -- the check -----------------------------------------------------------------


def check_scenario(
    build_traces: Callable,
    bench_id: str,
    modes: Iterable[str] = MODES,
    seed: int = 1,
) -> list[PermutationResult]:
    """Run one scenario unpermuted, then once per permutation mode."""
    base = build_traces(only=[bench_id])[bench_id]
    results = []
    for mode in modes:
        envs: list = []

        def hook(env, sink, _mode=mode):
            envs.append(env)
            enable_sanitizer(env, permute=_mode, seed=seed)

        with tracing_hook(hook):
            perm = build_traces(only=[bench_id])[bench_id]
        verdict, detail = classify(base, perm)
        races: list = []
        order_warnings: list = []
        batches = units = 0
        for env in envs:
            report = env._sanitizer.report()
            races.extend(report["races"])
            order_warnings.extend(report["order_warnings"])
            batches += report["batches"]
            units += report["units"]
        results.append(
            PermutationResult(
                bench_id=bench_id,
                mode=mode,
                verdict=verdict,
                detail=detail,
                races=races,
                order_warnings=order_warnings,
                batches=batches,
                units=units,
            )
        )
    return results


def run_check(
    traces_path: Path,
    only: Optional[Iterable[str]] = None,
    modes: Iterable[str] = MODES,
    seed: int = 1,
    digests_path: Optional[Path] = None,
) -> dict:
    """Run the permutation check; returns the SIMSAN report document."""
    build_traces = load_build_traces(traces_path)
    bench_ids = sorted(only) if only else sorted(
        build_traces.__globals__["BUILDERS"]
    )
    results: list[PermutationResult] = []
    drift: list[str] = []
    pinned = (
        json.loads(digests_path.read_text())
        if digests_path is not None and digests_path.exists()
        else {}
    )
    for bench_id in bench_ids:
        scenario_results = check_scenario(build_traces, bench_id, modes, seed)
        results.extend(scenario_results)
        if bench_id in pinned:
            # Drift of the *unpermuted* baseline against the pinned
            # digest is a different failure (the golden suite's), but
            # worth flagging here: it means this check compared against
            # a moved target.
            base = build_traces(only=[bench_id])[bench_id]
            if hashlib.sha256(base.encode()).hexdigest() != pinned[bench_id]["sha256"]:
                drift.append(bench_id)
    return {
        "tool": "simsan-permute",
        "seed": seed,
        "modes": list(modes),
        "results": [r.to_json() for r in results],
        "baseline_drift": drift,
        "passed": all(r.passed for r in results) and not drift,
    }


__all__ = [
    "MODES",
    "PASSING",
    "PermutationResult",
    "check_scenario",
    "classify",
    "load_build_traces",
    "run_check",
]
