"""CLI for the simsan batch-permutation checker.

Usage (from the repo root)::

    PYTHONPATH=src python -m repro.sanitizer                     # all of E1-E8
    PYTHONPATH=src python -m repro.sanitizer --only E2,E5        # a subset
    PYTHONPATH=src python -m repro.sanitizer --out SIMSAN.json   # machine report

Exit codes: 0 all scenarios pass, 1 at least one divergent trace or
same-instant race, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.sanitizer.permute import MODES, run_check


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--only",
        help="comma-separated bench ids (default: every golden scenario)",
    )
    parser.add_argument(
        "--modes",
        default=",".join(MODES),
        help=f"comma-separated permutation modes (default: {','.join(MODES)})",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="shuffle seed (default: 1)"
    )
    parser.add_argument(
        "--traces",
        type=Path,
        default=Path("tests/golden/traces.py"),
        help="path to the golden trace builders",
    )
    parser.add_argument(
        "--out", type=Path, help="also write the JSON report to this path"
    )
    args = parser.parse_args(argv)

    if not args.traces.exists():
        print(f"error: no golden builders at {args.traces} (run from the repo root)",
              file=sys.stderr)
        return 2
    only = [b.strip() for b in args.only.split(",")] if args.only else None
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    for mode in modes:
        if mode not in MODES:
            print(f"error: unknown mode {mode!r} (choose from {', '.join(MODES)})",
                  file=sys.stderr)
            return 2

    report = run_check(
        args.traces,
        only=only,
        modes=modes,
        seed=args.seed,
        digests_path=args.traces.parent / "trace_digests.json",
    )

    for res in report["results"]:
        status = "ok  " if res["passed"] else "FAIL"
        extra = f", {len(res['races'])} race(s)" if res["races"] else ""
        if res["order_warnings"]:
            extra += f", {len(res['order_warnings'])} order warning(s)"
        print(f"{status} {res['bench_id']} {res['mode']:<7} -> {res['verdict']}"
              f" ({res['batches']} batches, {res['units']} units{extra})")
        if res["detail"]:
            for line in res["detail"].splitlines():
                print(f"     {line}")
        for race in res["races"]:
            print(f"     race: {json.dumps(race, sort_keys=True)}")
    for bench_id in report["baseline_drift"]:
        print(f"WARN {bench_id}: unpermuted baseline drifted from the pinned "
              "golden digest (fix the golden suite first)")

    if args.out:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
