"""simsan dynamic layer: the same-instant race sanitizer.

The calendar-queue kernel dispatches every event of one simulated
instant as a batch (``docs/SIMKERNEL.md``).  Batch order is schedule
order — deterministic, but *incidental*: code is only allowed to depend
on it through explicit event edges.  The :class:`Sanitizer` replaces
the kernel's hot loop with an instrumented drive loop that

* tags each same-instant dispatch batch and each dispatch *unit*
  (one event plus everything its callbacks run synchronously),
* collects ``(container, member)`` access sets from the lightweight
  hooks in :class:`repro.rm.util.OrderedSet`,
  :class:`repro.cluster.cluster.FreeNodePool`, the metric primitives,
  and any :class:`WatchedDict` the scenario plants,
* reports **write-write pairs**: two distinct units of one batch
  writing the same member with different (or unknown) values — the
  dynamic twin of the static RACE001 finding,
* optionally **permutes** each batch (reverse or seeded shuffle)
  before dispatch, which is how the batch-permutation checker
  (:mod:`repro.sanitizer.permute`) turns "the golden digest moved"
  into a confirmed order dependence.

The drive loop always takes the kernel's *generic* dispatch path — it
skips the Timeout-recycling/inlined-waiter fast path, which is
semantically identical by construction (held so by the differential
fuzzer in ``tests/simkernel/``) — so enabling the sanitizer never
changes simulation results, only observes them.  With the sanitizer
disabled an :class:`~repro.simkernel.core.Environment` runs its own
loop untouched; the only added cost is one attribute test per
``run()`` call.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional

from repro.sanitizer import hooks
from repro.simkernel.queueing import heap_pop, heap_push

#: Sentinel for "value not captured" — conservative: colliding writes
#: with unknown values are reported.
_MISSING = object()

#: Access modes.  "w" = order-sensitive write; "x" = consume (remove /
#: take from a shared queue — a write that *observed* prior state, so
#: one that follows another unit's write of the same member is a
#: producer/consumer hand-off, not a race); "o" = ordering write (queue
#: insertion position — collisions are *warnings*, because concurrent
#: submitters at one instant are a legitimate pattern whose
#: convergence the permutation checker verifies end-to-end); "r" =
#: read; "c" = commutative update (counter increments, utilization
#: acquire/release) — aggregated for the report but never raced.
MODES = ("w", "x", "o", "r", "c")


@dataclass(frozen=True)
class RaceReport:
    """One cross-unit write-write pair within a same-instant batch."""

    t: float
    batch: int
    container: str
    member: str
    units: tuple[str, str]  # dispatch-unit labels, batch order
    values: tuple[str, str]  # reprs of the colliding values ("?" = unknown)

    def to_json(self) -> dict:
        return {
            "t": self.t,
            "batch": self.batch,
            "container": self.container,
            "member": self.member,
            "units": list(self.units),
            "values": list(self.values),
        }

    def render(self) -> str:
        return (
            f"t={self.t} batch#{self.batch}: write-write on "
            f"{self.container}[{self.member}] by '{self.units[0]}' "
            f"(={self.values[0]}) and '{self.units[1]}' (={self.values[1]})"
        )


@dataclass
class _Access:
    unit: str
    mode: str
    value: Any
    seq: int  # dispatch-order position within the batch


class Sanitizer:
    """Instrumented batch-tagging drive loop + access-set recorder.

    Parameters
    ----------
    permute:
        ``None`` (observe only), ``"reverse"`` (reverse every
        same-instant batch), or ``"shuffle"`` (seeded Fisher-Yates per
        batch) — the permutation-checker modes.
    seed:
        Seed for ``"shuffle"`` mode; one :class:`random.Random` drawn
        per run keeps permutations reproducible.
    """

    def __init__(self, permute: Optional[str] = None, seed: int = 0):
        if permute not in (None, "reverse", "shuffle"):
            raise ValueError(f"unknown permute mode {permute!r}")
        self.permute = permute
        self._rng = random.Random(seed)
        self.races: list[RaceReport] = []
        #: "<order>" collisions: batch-dependent queue insertion order,
        #: demoted from races — see MODES.
        self.order_warnings: list[RaceReport] = []
        self.batches = 0
        self.units = 0
        self.records = 0
        #: commutative-update totals per (container, member)
        self.commutative: dict[tuple[str, str], int] = {}
        self._containers: dict[int, str] = {}
        self._kind_counts: dict[str, int] = {}
        #: live per-batch access log: (container, member) -> [_Access]
        self._accesses: dict[tuple[str, str], list[_Access]] = {}
        self._unit: str = "?"
        self._batch_t: float = 0.0
        self._seq = 0
        self._seen_pairs: set[tuple] = set()

    # -- recording (called from instrumented containers) --------------------

    def record(
        self,
        obj: Any,
        member: str,
        mode: str,
        value: Any = _MISSING,
        kind: Optional[str] = None,
    ) -> None:
        """Log one access to ``obj``'s ``member`` by the current unit."""
        label = self._containers.get(id(obj))
        if label is None:
            name = kind or type(obj).__name__
            n = self._kind_counts.get(name, 0)
            self._kind_counts[name] = n + 1
            label = f"{name}#{n}"
            self._containers[id(obj)] = label
        self.records += 1
        if mode == "c":
            key = (label, member)
            self.commutative[key] = self.commutative.get(key, 0) + 1
            return
        self._seq += 1
        self._accesses.setdefault((label, member), []).append(
            _Access(self._unit, mode, value, self._seq)
        )

    def label(self, obj: Any, name: str) -> None:
        """Give ``obj`` a stable report name (else ``<Type>#<n>``)."""
        self._containers[id(obj)] = name

    # -- batch lifecycle -----------------------------------------------------

    def _begin_batch(self, t: float, batch: list) -> None:
        self._batch_t = t
        self.batches += 1
        self._accesses.clear()
        if self.permute == "reverse":
            batch.reverse()
        elif self.permute == "shuffle":
            self._rng.shuffle(batch)

    def _begin_unit(self, index: int, event: Any) -> None:
        self.units += 1
        self._unit = f"{index}:{_describe(event)}"

    def _end_batch(self) -> None:
        for (container, member), accesses in self._accesses.items():
            writes = [a for a in accesses if a.mode in ("w", "x", "o")]
            by_unit: dict[str, _Access] = {}
            for a in writes:
                by_unit[a.unit] = a  # last write per unit
            if len(by_unit) < 2:
                continue
            units = list(by_unit)
            first = by_unit[units[0]]
            for other_unit in units[1:]:
                other = by_unit[other_unit]
                earlier, later = sorted((first, other), key=lambda a: a.seq)
                if earlier.mode == "w" and later.mode == "x":
                    # Producer/consumer hand-off: the consume observed
                    # the produce (real dataflow through the queue) and
                    # the wakeup protocol retries the other order, so
                    # the outcome converges.  The permutation checker
                    # verifies that convergence end-to-end.
                    continue
                if (
                    first.value is not _MISSING
                    and other.value is not _MISSING
                    and first.value == other.value
                ):
                    continue  # same final value either way: benign
                dedup = (container, member, first.unit, other.unit)
                if dedup in self._seen_pairs:
                    continue
                self._seen_pairs.add(dedup)
                sink = (
                    self.order_warnings
                    if earlier.mode == "o" or later.mode == "o"
                    else self.races
                )
                sink.append(
                    RaceReport(
                        t=self._batch_t,
                        batch=self.batches,
                        container=container,
                        member=member,
                        units=(first.unit, other.unit),
                        values=(_value_repr(first.value), _value_repr(other.value)),
                    )
                )
        self._accesses.clear()

    # -- the drive loop ------------------------------------------------------

    def drive(self, env, stop_at: float) -> None:
        """Drain ``env``'s calendar exactly like ``Environment._run_loop``
        but with batch tagging, permutation, and generic dispatch.

        Mirrors the structural invariants of the hot loop: urgent
        buckets drain before normal at equal time, the live-batch state
        (``_batch``/``_batch_it``/``_batch_t``/``_batch_urgent``) is
        maintained so the urgent mid-batch splice in
        ``Environment.schedule`` still works, and the bucket cache is
        invalidated when a normal batch is popped.
        """
        times = env._times
        buckets = env._buckets
        urgent = env._urgent
        previous = hooks.ACTIVE
        hooks.ACTIVE = self
        try:
            while times:
                t = heap_pop(times)
                if t > stop_at:
                    heap_push(times, t)
                    return
                env._now = t
                while True:
                    batch = urgent.pop(t, None)
                    is_urgent = batch is not None
                    if batch is None:
                        batch = buckets.pop(t, None)
                        if batch is None:
                            break
                        # The cache may alias this (now live) batch list.
                        env._bcache_t = None
                    self._begin_batch(t, batch)
                    env._dispatched += len(batch)
                    env._batch = batch
                    env._batch_it = it = iter(batch)
                    env._batch_t = t
                    env._batch_urgent = is_urgent
                    index = 0
                    for ev in it:
                        self._begin_unit(index, ev)
                        index += 1
                        env._dispatch(ev)
                    self._end_batch()
                    env._batch = None
                    env._active_proc = None
        finally:
            hooks.ACTIVE = previous

    # -- results -------------------------------------------------------------

    def report(self) -> dict:
        """JSON-able summary of the run's observations."""
        return {
            "batches": self.batches,
            "units": self.units,
            "records": self.records,
            "permute": self.permute,
            "races": [r.to_json() for r in self.races],
            "order_warnings": [r.to_json() for r in self.order_warnings],
            "commutative": {
                f"{container}[{member}]": count
                for (container, member), count in sorted(self.commutative.items())
            },
        }


def _describe(event: Any) -> str:
    """Stable human label for a dispatch unit (the event being fired)."""
    waiter = getattr(event, "_waiter", None)
    if waiter is not None:
        name = getattr(waiter, "name", None)
        if name:
            return str(name)
    # Process-lifecycle events (Initialize, interrupts) carry the
    # process as the bound receiver of their resume callback.
    for cb in getattr(event, "callbacks", None) or ():
        owner = getattr(cb, "__self__", None)
        name = getattr(owner, "name", None)
        if name:
            return str(name)
    name = getattr(event, "name", None)
    if name:
        return str(name)
    return type(event).__name__


def _value_repr(value: Any) -> str:
    return "?" if value is _MISSING else repr(value)


class WatchedDict(dict):
    """A dict whose item writes/reads feed the active sanitizer.

    For shared state the built-in hooks do not cover: plant one at
    module level (or on a shared object), and every ``d[k] = v`` /
    ``d[k]`` during a sanitized run is attributed to the dispatch unit
    that performed it.  Outside a sanitized run it is a plain dict.
    """

    def __init__(self, *args: Any, label: str = "WatchedDict", **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.label = label

    def __setitem__(self, key: Any, value: Any) -> None:
        active = hooks.ACTIVE
        if active is not None:
            active.record(self, str(key), "w", value=value, kind=self.label)
        super().__setitem__(key, value)

    def __getitem__(self, key: Any) -> Any:
        active = hooks.ACTIVE
        if active is not None:
            active.record(self, str(key), "r", kind=self.label)
        return super().__getitem__(key)

    def __delitem__(self, key: Any) -> None:
        active = hooks.ACTIVE
        if active is not None:
            active.record(self, str(key), "x", kind=self.label)
        super().__delitem__(key)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        active = hooks.ACTIVE
        if active is not None:
            active.record(self, str(key), "w", value=default, kind=self.label)
        return super().setdefault(key, default)

    def update(self, *args: Any, **kwargs: Any) -> None:
        active = hooks.ACTIVE
        if active is not None:
            merged = dict(*args, **kwargs)
            for key, value in merged.items():
                active.record(self, str(key), "w", value=value, kind=self.label)
        super().update(*args, **kwargs)


def enable_sanitizer(
    env, permute: Optional[str] = None, seed: int = 0
) -> Sanitizer:
    """Attach a :class:`Sanitizer` to ``env``; its next ``run()`` uses
    the instrumented drive loop.  Returns the sanitizer (also reachable
    as ``env._sanitizer``)."""
    sanitizer = Sanitizer(permute=permute, seed=seed)
    env._sanitizer = sanitizer
    return sanitizer


def disable_sanitizer(env) -> None:
    """Detach any sanitizer; ``env`` runs its plain hot loop again."""
    env._sanitizer = None
