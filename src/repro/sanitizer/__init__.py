"""simsan — same-instant race sanitizer + batch-permutation checker.

Two entry points (full guide: ``docs/SANITIZER.md``):

* :func:`enable_sanitizer` — attach the instrumented drive loop to an
  :class:`~repro.simkernel.core.Environment` and collect cross-process
  write-write pairs per same-instant batch.
* ``python -m repro.sanitizer`` — re-run the golden E1–E8 scenarios at
  reduced scale with every batch reversed/shuffled and verify the
  digests don't move (:mod:`repro.sanitizer.permute`).

This package top level stays import-light (PEP 562 lazy attributes):
the instrumented containers import :mod:`repro.sanitizer.hooks` at
module load, and that must never drag the simkernel in behind them.
"""

from __future__ import annotations

__all__ = [
    "RaceReport",
    "Sanitizer",
    "WatchedDict",
    "disable_sanitizer",
    "enable_sanitizer",
]


def __getattr__(name):
    if name in __all__:
        from repro.sanitizer import core

        return getattr(core, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
