"""Instrumentation hook point for the simsan dynamic layer.

This module is deliberately dependency-free: the instrumented
containers (``repro.rm.util.OrderedSet``, ``repro.cluster.cluster.
FreeNodePool``, the metric primitives) import it at module load, so it
must not import anything that could cycle back into them.

The contract is a single module global:

``ACTIVE``
    ``None`` (the overwhelmingly common case) or the
    :class:`repro.sanitizer.core.Sanitizer` currently driving an
    environment.  Instrumented call sites guard every record with::

        if hooks.ACTIVE is not None:
            hooks.ACTIVE.record(self, member, "w")

    so the disabled cost is one module-attribute load and an ``is``
    comparison — and none of the instrumented operations sit on the
    kernel's event hot loop (they are scheduler/bookkeeping paths).

Only :meth:`Sanitizer.drive` assigns ``ACTIVE`` (set on entry, cleared
in a ``finally``): accesses outside a sanitized run — scenario setup,
teardown, other environments — are never recorded, and two
environments cannot cross-talk because only one drive loop runs at a
time.
"""

from __future__ import annotations

#: The sanitizer currently driving a run, or None.  Assigned only by
#: ``Sanitizer.drive``.
ACTIVE = None
