"""Resource managers: the infrastructure side of the CWSI boundary.

The paper's §3 problem statement: workflow management systems talk to
*resource managers* (SLURM, Kubernetes, OpenPBS, Flux...) through
inconsistent interfaces that drop workflow context.  This package
implements the resource-manager side:

- :class:`BatchScheduler` — an HPC batch system granting whole nodes to
  jobs with walltime limits, FIFO + EASY backfill, and fair-share
  priorities (the SLURM/LSF role for EnTK pilots and JAWS HTCondor
  pools).
- :class:`KubeScheduler` — a pod-granularity bin-packing scheduler with
  a pluggable prioritization/placement strategy — the extension point
  where :mod:`repro.cws` installs workflow-aware scheduling.

Both managers are workflow-*blind* by default: they see opaque jobs and
pods.  Everything the CWSI adds (DAG edges, input sizes, predictions)
arrives through the strategy hooks.
"""

from repro.rm.base import (
    Job,
    JobFailed,
    JobState,
    ResourceRequest,
    WalltimeExceeded,
)
from repro.rm.batch import BatchScheduler
from repro.rm.kube import KubeScheduler, Pod, PodFailed, SchedulingStrategy, FifoStrategy

__all__ = [
    "BatchScheduler",
    "FifoStrategy",
    "Job",
    "JobFailed",
    "JobState",
    "KubeScheduler",
    "Pod",
    "PodFailed",
    "ResourceRequest",
    "SchedulingStrategy",
    "WalltimeExceeded",
]
