"""Shared job abstractions for resource managers."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED)


class JobFailed(RuntimeError):
    """A job's payload raised, or its node(s) died without retry."""

    def __init__(self, job_id: str, cause: Any = None):
        super().__init__(f"Job {job_id} failed: {cause!r}")
        self.job_id = job_id
        self.cause = cause


class WalltimeExceeded(JobFailed):
    """The batch system killed the job at its walltime limit."""


@dataclass(frozen=True)
class ResourceRequest:
    """What a batch job asks the scheduler for (whole-node granularity).

    Mirrors an ``sbatch``/``bsub`` request: a node count, per-node core
    and GPU usage (informational — the whole node is granted), and a
    walltime limit after which the job is killed.
    """

    nodes: int = 1
    cores_per_node: int = 1
    gpus_per_node: int = 0
    memory_gb_per_node: float = 0.0
    walltime_s: float = 3600.0
    #: The fit-relevant projection of the request — the memo key for
    #: the schedulers' incremental ("blocked class") placement.  Two
    #: requests with equal placement classes fit exactly the same free
    #: pools; walltime and payload are irrelevant to fitting.
    placement_class: tuple = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self):
        if self.nodes <= 0:
            raise ValueError("nodes must be positive")
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if self.gpus_per_node < 0 or self.memory_gb_per_node < 0:
            raise ValueError("gpus/memory must be non-negative")
        if self.walltime_s <= 0:
            raise ValueError("walltime_s must be positive")
        object.__setattr__(
            self,
            "placement_class",
            (
                self.nodes,
                self.cores_per_node,
                self.gpus_per_node,
                self.memory_gb_per_node,
            ),
        )

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node


_job_counter = itertools.count()


@dataclass(eq=False)  # identity semantics: jobs are mutable lifecycle objects
class Job:
    """A batch job: a resource request plus a payload.

    The payload is either a fixed nominal ``duration`` (scaled by the
    slowest allocated node's speed factor) or a ``work`` generator
    factory ``work(env, job, nodes) -> generator`` for jobs that do
    their own internal orchestration (e.g. an EnTK pilot agent).
    """

    request: ResourceRequest
    duration: Optional[float] = None
    work: Optional[Callable] = None
    user: str = "anonymous"
    name: str = ""
    #: Resilient jobs survive the loss of individual allocated nodes
    #: (pilot jobs handle task-level failures themselves); non-resilient
    #: jobs fail when any of their nodes dies.
    resilient: bool = False
    #: SLURM-style ``afterok`` dependencies: this job becomes eligible
    #: only when every listed job COMPLETED; if any of them fails, this
    #: job is cancelled.  This is the resource-manager feature §3 notes
    #: WMSs leave unused ("on SLURM, the task dependency feature is not
    #: used") — see :class:`repro.engines.batchdag.BatchDagEngine` for
    #: the engine that exploits it.
    depends_on: list = field(default_factory=list)
    job_id: str = field(default_factory=lambda: f"job-{next(_job_counter):06d}")

    # Lifecycle fields filled in by the scheduler.
    state: JobState = JobState.PENDING
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    nodes: list = field(default_factory=list)
    #: Kernel event that triggers when the job reaches a terminal state.
    completion: Any = None
    #: Why the job failed (exception, "walltime", or a NodeFailureCause).
    failure_cause: Any = None

    def __post_init__(self):
        if (self.duration is None) == (self.work is None):
            raise ValueError("Provide exactly one of duration= or work=")
        if self.duration is not None and self.duration < 0:
            raise ValueError("duration must be non-negative")
        if not self.name:
            self.name = self.job_id

    @property
    def queue_wait(self) -> Optional[float]:
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def runtime(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def __repr__(self) -> str:
        return f"<Job {self.job_id} {self.name!r} {self.state.value}>"
