"""Small bookkeeping structures shared by the resource managers."""

from __future__ import annotations

from typing import Any, Iterable, Iterator


class OrderedSet:
    """Insertion-ordered set with O(1) append/remove/contains.

    Drop-in replacement for the list-based ``queue``/``running``/
    ``pending`` bookkeeping in the schedulers: it supports the same
    ``append``/``remove``/``in``/iteration/``len`` surface, but removal
    no longer scans.  Members are identity-hashed lifecycle objects
    (``Job``, ``Pod``), so iteration order — dict insertion order — is
    exactly the order the old lists had.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()):
        self._items: dict[Any, None] = dict.fromkeys(items)

    def append(self, item: Any) -> None:
        self._items[item] = None

    add = append

    def remove(self, item: Any) -> None:
        del self._items[item]

    def discard(self, item: Any) -> None:
        self._items.pop(item, None)

    def __contains__(self, item: Any) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"OrderedSet({list(self._items)!r})"
