"""Small bookkeeping structures shared by the resource managers."""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.sanitizer import hooks


def _member_label(item: Any) -> str:
    """Stable simsan member key for a lifecycle object (Job, Pod)."""
    for attr in ("name", "id"):
        value = getattr(item, attr, None)
        if value is not None:
            return str(value)
    return type(item).__name__


class OrderedSet:
    """Insertion-ordered set with O(1) append/remove/contains.

    Drop-in replacement for the list-based ``queue``/``running``/
    ``pending`` bookkeeping in the schedulers: it supports the same
    ``append``/``remove``/``in``/iteration/``len`` surface, but removal
    no longer scans.  Members are identity-hashed lifecycle objects
    (``Job``, ``Pod``), so iteration order — dict insertion order — is
    exactly the order the old lists had.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Any] = ()):
        self._items: dict[Any, None] = dict.fromkeys(items)

    def append(self, item: Any) -> None:
        if hooks.ACTIVE is not None:
            # Two writes: the member itself (re-appending an existing
            # member is idempotent — equal values are benign), and the
            # container's insertion order (two units appending
            # *different* items leave the queue order batch-dependent,
            # which leaks straight into placement decisions).
            label = _member_label(item)
            hooks.ACTIVE.record(self, label, "w", value=item in self._items)
            hooks.ACTIVE.record(self, "<order>", "o", value=label)
        self._items[item] = None

    add = append

    def remove(self, item: Any) -> None:
        if hooks.ACTIVE is not None:
            # "x" = consume: taking an item out observed it being there.
            hooks.ACTIVE.record(self, _member_label(item), "x", value="removed")
        del self._items[item]

    def discard(self, item: Any) -> None:
        if hooks.ACTIVE is not None:
            hooks.ACTIVE.record(self, _member_label(item), "x", value="removed")
        self._items.pop(item, None)

    def __contains__(self, item: Any) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"OrderedSet({list(self._items)!r})"
