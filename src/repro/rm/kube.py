"""Kubernetes-like pod scheduler with pluggable strategies.

Pods request cores/GPUs/memory (not whole nodes) and are bin-packed
onto the cluster.  The default behaviour is the workflow-blind FIFO +
best-fit the paper's §3 describes as the status quo ("Kubernetes then
schedules them in a FIFO manner").  :class:`SchedulingStrategy` is the
extension point the Common Workflow Scheduler installs into — exactly
where Fig 2 places the CWS inside the resource manager.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.simkernel import Environment, Interrupt, register_ckpt_probe
from repro.cluster import Cluster, Node
from repro.rm.base import JobState
from repro.rm.util import OrderedSet


class PodFailed(RuntimeError):
    """A pod's payload raised or its node died."""

    def __init__(self, pod_name: str, cause: Any = None):
        super().__init__(f"Pod {pod_name} failed: {cause!r}")
        self.pod_name = pod_name
        self.cause = cause


_pod_counter = itertools.count()


@dataclass(eq=False)  # identity semantics: pods are mutable lifecycle objects
class Pod:
    """A schedulable unit of work at container granularity.

    ``duration`` is the *nominal* runtime on a speed-1.0 node; the
    actual runtime is ``duration / node.spec.speed``.  ``labels`` carry
    workflow context (workflow id, task id, input sizes) — opaque to
    the vanilla scheduler, meaningful to CWS strategies.
    """

    cores: int = 1
    gpus: int = 0
    memory_gb: float = 1.0
    duration: Optional[float] = None
    work: Optional[Callable] = None
    name: str = field(default_factory=lambda: f"pod-{next(_pod_counter):06d}")
    labels: dict = field(default_factory=dict)

    state: JobState = JobState.PENDING
    node: Optional[Node] = None
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    completion: Any = None
    failure_cause: Any = None

    def __post_init__(self):
        if (self.duration is None) == (self.work is None):
            raise ValueError("Provide exactly one of duration= or work=")
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.gpus < 0 or self.memory_gb < 0:
            raise ValueError("gpus/memory must be non-negative")

    @property
    def queue_wait(self) -> Optional[float]:
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def runtime(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def __repr__(self) -> str:
        return f"<Pod {self.name} {self.state.value} {self.cores}c/{self.memory_gb:g}GiB>"


class SchedulingStrategy:
    """Hook pair the scheduler consults each scheduling cycle.

    Subclass and override either method; the base class implements the
    workflow-blind defaults (FIFO order, best-fit-by-cores placement).
    """

    name = "base"

    def prioritize(self, pending: list[Pod], scheduler: "KubeScheduler") -> list[Pod]:
        """Order pending pods; earlier pods get first pick of nodes."""
        return pending

    def select_node(
        self, pod: Pod, candidates: list[Node], scheduler: "KubeScheduler"
    ) -> Optional[Node]:
        """Choose among nodes that fit the pod (best fit by free cores).

        A strategy may return ``None`` to *decline* placing this pod in
        this cycle (delay scheduling: wait for a preferred node to free
        up).  The scheduler re-evaluates on the next capacity change;
        a declining strategy whose patience is *time*-bounded must also
        implement :meth:`wake_deadline_s` so the expiry is honoured
        even when no capacity changes — declining cannot deadlock.
        """
        return min(candidates, key=lambda n: (n.free_cores, n.id))

    def wake_deadline_s(
        self, pod: Pod, scheduler: "KubeScheduler"
    ) -> Optional[float]:
        """Absolute simulated time at which a pod this strategy just
        *declined* should be reconsidered even if no capacity-change
        signal arrives (e.g. delay-scheduling patience expiring).  The
        scheduler arms one exact one-shot timer for the earliest such
        deadline — there is no periodic recheck poll.  ``None`` (the
        default) means capacity/submit/quarantine signals suffice."""
        return None

    def stage_cost_s(self, pod: Pod, node: Node, scheduler: "KubeScheduler") -> float:
        """Extra seconds the pod pays before running on ``node``
        (e.g. pulling remote input data).  Workflow-blind default: 0.
        Data-locality strategies override this; the scheduler charges
        it at bind time."""
        return 0.0


class FifoStrategy(SchedulingStrategy):
    """Explicit name for the baseline (identical to the base class)."""

    name = "fifo"


class KubeScheduler:
    """Bin-packing pod scheduler over a heterogeneous cluster.

    Fully event-driven: the scheduling loop sleeps on a single
    ``_wake`` event that submits, pod completions (capacity release),
    quarantine releases and strategy swaps trigger — there is no fixed
    ``recheck_s`` polling tick.  Strategy declines with a time-bounded
    patience are honoured through the
    :meth:`SchedulingStrategy.wake_deadline_s` hook: the scheduler arms
    one exact one-shot timer for the earliest requested deadline.

    Placement is incremental: a pod class (cores, gpus, memory) that
    found zero fitting nodes is memoized against a capacity-gain
    version, and later passes skip the O(nodes) candidate scan for
    that class until capacity is gained.  Exactness: every gain
    channel bumps the version — pod release (local counter), whole-node
    idle/recover/new-node (the cluster free pool's version), quarantine
    release (local counter) — and between bumps capacity only shrinks,
    which cannot create a fit.
    """

    #: Differential-test knob: the reference subclass disables the
    #: blocked-class memo to recover full-scan-per-pass behaviour.
    _memoize = True

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        strategy: Optional[SchedulingStrategy] = None,
        node_health=None,
    ):
        self.env = env
        self.cluster = cluster
        self.strategy = strategy or FifoStrategy()
        #: Optional :class:`~repro.resilience.NodeHealth`; quarantined
        #: nodes are dropped from every pod's candidate list.  Engines
        #: that carry a health object install it here at construction.
        self.node_health = node_health
        self.pending: OrderedSet = OrderedSet()
        self.running: OrderedSet = OrderedSet()
        self.finished: list[Pod] = []
        self._wake = env.event()
        #: Pod classes with zero fitting nodes, memoized against the
        #: capacity-gain version they were observed at.
        self._blocked: dict[tuple, int] = {}
        #: Local capacity gains the free pool cannot see: fractional
        #: pod releases and quarantine releases.
        self._gain_version = 0
        #: Earliest armed strategy wake deadline (inf = none armed).
        self._deadline_armed_at = float("inf")
        if node_health is not None:
            node_health.watch_release(self._on_quarantine_release)
        env.process(self._scheduler_loop(), name="kube-scheduler")
        register_ckpt_probe(env, "rm.kube", self.ckpt_fingerprint)

    def ckpt_fingerprint(self) -> dict:
        """Queue state for checkpoint verification.

        Identity-free (pod names come from a process-global counter —
        see ``BatchScheduler.ckpt_fingerprint``); the negative-fit memo
        (``_blocked``) is a rebuildable cache and stays out.
        """
        return {
            "pending": len(self.pending),
            "running": len(self.running),
            "finished": len(self.finished),
            "gain_version": self._gain_version,
            # inf = no deadline armed; keep the JSON strict-parseable.
            "deadline_armed_at": (
                None
                if self._deadline_armed_at == float("inf")
                else self._deadline_armed_at
            ),
        }

    # -- client API ------------------------------------------------------------

    def submit(self, pod: Pod) -> Pod:
        """Enqueue a pod; ``pod.completion`` triggers at terminal state."""
        if pod.state != JobState.PENDING:
            raise ValueError(f"{pod} is not pending")
        pod.submit_time = self.env.now
        pod.completion = self.env.event()
        self.pending.append(pod)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant(
                "submit",
                category="rm.pod",
                component="kube",
                tags={"pod": pod.name, "cores": pod.cores},
            )
            tracer.metrics.gauge("pending_pods", component="kube").set(
                self.env.now, len(self.pending)
            )
        self._kick()
        return pod

    def set_strategy(self, strategy: SchedulingStrategy) -> None:
        """Swap the scheduling strategy (how CWS installs itself).

        Fit memos survive the swap: the blocked-class verdict is pure
        capacity ("no node fits"), which no strategy can change.
        """
        self.strategy = strategy
        self._kick()

    @property
    def pending_count(self) -> int:
        return len(self.pending)

    # -- scheduling loop ------------------------------------------------------------

    def _kick(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()

    def _scheduler_loop(self):
        while True:
            self._try_schedule()
            yield self._wake
            self._wake = self.env.event()

    def _capacity_version(self) -> int:
        return self.cluster.free_pool.version + self._gain_version

    def _on_quarantine_release(self, node_id: str) -> None:
        """Probation ended: eligibility grew, so blocked classes may
        fit again — bump the gain version and re-run the pass."""
        self._gain_version += 1
        self._kick()

    def _try_schedule(self) -> None:
        deadline = float("inf")  # earliest strategy-requested re-look
        version = self._capacity_version()
        memoize = self._memoize
        progressed = True
        while progressed:
            progressed = False
            if not self.pending:
                break
            ordered = self.strategy.prioritize(list(self.pending), self)
            avoid = (
                self.node_health.quarantined_ids()
                if self.node_health is not None
                else ()
            )
            for pod in ordered:
                key = (pod.cores, pod.gpus, pod.memory_gb)
                if memoize and self._blocked.get(key) == version:
                    # No capacity gained since this class last found
                    # zero candidates; the scan would find zero again.
                    # (Binds within this pass only shrink capacity, so
                    # the memo stays exact mid-pass.)
                    continue
                candidates = [
                    n
                    for n in self.cluster.nodes
                    if n.id not in avoid
                    and n.fits(pod.cores, pod.gpus, pod.memory_gb)
                ]
                if not candidates:
                    if memoize:
                        self._blocked[key] = version
                    continue
                node = self.strategy.select_node(pod, candidates, self)
                if node is None:  # delay scheduling: pod waits
                    when = self.strategy.wake_deadline_s(pod, self)
                    if when is not None and self.env.now < when < deadline:
                        deadline = when
                    continue
                self._bind(pod, node)
                progressed = True
                break  # re-prioritize after each placement
        if deadline < self._deadline_armed_at:
            # One exact one-shot timer for the earliest patience expiry
            # — event-driven, not a polling tick.
            self._deadline_armed_at = deadline
            self.env.process(self._deadline_wake(deadline), name="kube-deadline")

    def _deadline_wake(self, at: float):
        yield self.env.timeout(at - self.env.now)
        self._deadline_armed_at = float("inf")
        self._kick()

    # -- pod execution ---------------------------------------------------------------

    def _bind(self, pod: Pod, node: Node) -> None:
        self.pending.remove(pod)
        pod.state = JobState.RUNNING
        pod.start_time = self.env.now
        pod.node = node
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.gauge("pending_pods", component="kube").set(
                self.env.now, len(self.pending)
            )
            pod._obs_span = tracer.start(
                pod.name,
                category="rm.pod",
                component="kube",
                tags={
                    "node": node.id,
                    "cores": pod.cores,
                    "gpus": pod.gpus,
                    "strategy": self.strategy.name,
                },
            )
        # Allocate synchronously so this scheduling pass sees the node's
        # reduced capacity before placing the next pod.
        alloc = node.allocate(
            cores=pod.cores, gpus=pod.gpus, memory_gb=pod.memory_gb, owner=pod.name
        )
        self.running.append(pod)
        self.env.process(self._run_pod(pod, node, alloc), name=f"pod:{pod.name}")

    def _run_pod(self, pod: Pod, node: Node, alloc):
        self.cluster.track_acquire(cores=pod.cores, gpus=pod.gpus)
        me = self.env.active_process
        node.register_occupant(pod.name, me)
        inner = None
        try:
            stage_s = self.strategy.stage_cost_s(pod, node, self)
            if stage_s > 0:
                pod.labels["stage_cost_s"] = stage_s
                yield self.env.timeout(stage_s)
            if pod.duration is not None:
                yield self.env.timeout(pod.duration / node.effective_speed)
            else:
                inner = self.env.process(
                    pod.work(self.env, pod, node), name=f"podwork:{pod.name}"
                )
                yield inner
            pod.state = JobState.COMPLETED
        except Interrupt as intr:
            pod.state = JobState.FAILED
            pod.failure_cause = intr.cause
            # Propagate into the work generator so it stops consuming
            # (simulated) resources on a node that no longer exists,
            # absorbing its outcome.
            if inner is not None and inner.is_alive:
                inner.interrupt(cause=intr.cause)
                try:
                    yield inner
                # simlint: disable=RES001 -- kill-path drain: pod already marked FAILED with its classified cause; the work generator's own outcome is deliberately absorbed
                except BaseException:
                    pass
        except BaseException as exc:
            pod.state = JobState.FAILED
            pod.failure_cause = exc
        finally:
            node.unregister_occupant(pod.name)
            alloc.release()
            self.cluster.track_release(cores=pod.cores, gpus=pod.gpus)
            pod.end_time = self.env.now
            if pod in self.running:
                self.running.remove(pod)
            self.finished.append(pod)
            span = getattr(pod, "_obs_span", None)
            if span is not None:
                span.tag(state=pod.state.value).finish()
            pod.completion.succeed(pod)
            # Fractional capacity gain the free pool's whole-node
            # version cannot see; invalidates blocked-class memos.
            self._gain_version += 1
            self._kick()
