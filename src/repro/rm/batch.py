"""HPC batch scheduler: whole-node jobs, FIFO + EASY backfill, fair share.

This is the SLURM/LSF stand-in.  It intentionally knows nothing about
workflows: jobs are opaque (the "workflow-blind" baseline of §3).  The
EnTK pilot (§4) submits one big job here; JAWS task shards (§6) submit
many small ones.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.simkernel import Environment, Interrupt, register_ckpt_probe
from repro.cluster import Cluster, Node
from repro.rm.base import Job, JobState, ResourceRequest
from repro.rm.util import OrderedSet


class BatchScheduler:
    """FIFO batch scheduler with optional EASY backfill and fair share.

    Parameters
    ----------
    env, cluster:
        Simulation environment and the cluster to schedule onto.
    backfill:
        Enable EASY backfill: while the queue head waits for nodes,
        later jobs may run if they fit now and provably do not delay
        the head job's reservation (using walltime as the runtime bound).
    fair_share:
        Order the queue by accumulated per-user core-seconds (ascending)
        before submit order — the policy §6.2 notes Cromwell lacks.

    Hot-path notes (the "scheduler fast path"):

    - Wakeups are event-driven and coalesced: completions, submits and
      quarantine releases ``_kick`` a single ``_wake`` event, so N
      triggers landing on one simulated instant run exactly one
      scheduling pass.
    - Placement is incremental: a resource class that found no fit is
      memoized against the free pool's capacity-gain version
      (:attr:`FreeNodePool.version` plus a local counter bumped on
      quarantine release), so the saturated steady state re-scans only
      classes whose verdict could have changed.  Exactness: capacity
      only shrinks while the version stands still, and shrinking cannot
      create a fit; every gain channel (release → pool version, node
      recover → pool version, quarantine release → local counter) bumps
      the key.
    - Duration-only jobs complete off a single kernel timer instead of
      a payload process racing a walltime timeout (``_direct_timers``);
      the walltime verdict is decided arithmetically up front, which
      matches the event-order outcome of the race, ties included.
      Exactness scope: every job's start/end time, state and failure
      cause is preserved.  Because the timer resumes the job process
      without the race's process-end/condition hops, jobs finishing at
      the *same instant* may return their nodes to the pool in a
      different within-instant order, which can permute *which* of
      several equally free nodes a same-instant scheduling pass grants
      (never whether, when, or how many — see
      ``tests/rm/test_differential.py``; all golden scenario digests
      are byte-identical with the fast path on).
    """

    #: Internal knobs for differential tests: the reference subclass
    #: turns these off to recover the pre-fast-path pass-per-wakeup
    #: behaviour (full re-scan every pass, payload-process execution).
    _direct_timers = True
    _memoize = True

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        backfill: bool = True,
        fair_share: bool = False,
        node_health=None,
    ):
        self.env = env
        self.cluster = cluster
        self.backfill = backfill
        self.fair_share = fair_share
        #: Optional :class:`~repro.resilience.NodeHealth`; quarantined
        #: nodes are excluded from every placement decision.
        self.node_health = node_health
        self.queue: OrderedSet = OrderedSet()
        self.running: OrderedSet = OrderedSet()
        self.finished: list[Job] = []
        #: Per-user consumed core-seconds (fair-share input).
        self.usage: dict[str, float] = defaultdict(float)
        #: Queued jobs with afterok dependencies — the only ones the
        #: doomed-job sweep has to look at.
        self._dep_queued: OrderedSet = OrderedSet()
        self._submit_seq: dict[str, int] = {}
        self._seq = 0
        self._wake = env.event()
        #: Resource classes with no current fit, memoized against the
        #: capacity-gain version they were observed at.
        self._blocked: dict[tuple, int] = {}
        #: Local capacity-gain counter (quarantine releases — gains the
        #: free pool cannot see because the node never left it).
        self._gain_version = 0
        if node_health is not None:
            # Event-driven replacement for the old 5 s health recheck
            # poll: probation ending wakes the scheduler exactly then.
            node_health.watch_release(self._on_quarantine_release)
        env.process(self._scheduler_loop(), name="batch-scheduler")
        register_ckpt_probe(env, "rm.batch", self.ckpt_fingerprint)

    def ckpt_fingerprint(self) -> dict:
        """Queue/usage state for checkpoint verification.

        Identity-free on purpose: job ids come from a *process-global*
        counter, so they differ between a fresh recording process and
        an in-process resume that ran other scenarios first.  Counts
        and per-user usage are per-run deterministic either way; the
        negative-fit memo (``_blocked``) is a rebuildable cache and
        stays out.
        """
        return {
            "queued": len(self.queue),
            "running": len(self.running),
            "finished": len(self.finished),
            "usage": sorted(self.usage.items()),
            "gain_version": self._gain_version,
        }

    # -- client API ------------------------------------------------------------

    def submit(self, job: Job) -> Job:
        """Enqueue a job; ``job.completion`` triggers at terminal state."""
        if job.state != JobState.PENDING:
            raise ValueError(f"{job} is not pending")
        job.submit_time = self.env.now
        job.completion = self.env.event()
        self._seq += 1
        self._submit_seq[job.job_id] = self._seq
        self.queue.append(job)
        if job.depends_on:
            self._dep_queued.append(job)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant(
                "submit",
                category="rm.job",
                component="batch",
                tags={"job": job.name, "user": job.user, "nodes": job.request.nodes},
            )
            tracer.metrics.gauge("queue_length", component="batch").set(
                self.env.now, len(self.queue)
            )
        self._kick()
        return job

    def cancel(self, job: Job) -> None:
        """Remove a still-queued job (running jobs are not preempted)."""
        if job in self.queue:
            self.queue.remove(job)
            self._dep_queued.discard(job)
            self._submit_seq.pop(job.job_id, None)
            job.state = JobState.CANCELLED
            job.end_time = self.env.now
            self.finished.append(job)
            tracer = self.env.tracer
            tracer.instant(
                "cancel",
                category="rm.job",
                component="batch",
                tags={"job": job.name},
            )
            tracer.metrics.gauge("queue_length", component="batch").set(
                self.env.now, len(self.queue)
            )
            job.completion.succeed(job)

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    # -- scheduling loop ------------------------------------------------------------

    def _kick(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()

    def _scheduler_loop(self):
        while True:
            self._cancel_doomed()
            self._try_schedule()
            yield self._wake
            self._wake = self.env.event()

    def _on_quarantine_release(self, node_id: str) -> None:
        """Probation ended: the avoid-set shrank, so blocked classes
        may fit again — bump the gain version and re-run the pass."""
        self._gain_version += 1
        self._kick()

    def _dependency_state(self, job: Job) -> str:
        """'ready' | 'waiting' | 'doomed' for afterok dependencies."""
        state = "ready"
        for dep in job.depends_on:
            if dep.state == JobState.COMPLETED:
                continue
            if dep.state.terminal:  # failed or cancelled
                return "doomed"
            state = "waiting"
        return state

    def _cancel_doomed(self) -> None:
        """Cancel queued jobs whose afterok dependencies failed."""
        if not self._dep_queued:
            return
        for job in list(self._dep_queued):
            if self._dependency_state(job) == "doomed":
                self.cancel(job)

    def _ordered_queue(self) -> list[Job]:
        eligible = [
            j for j in self.queue if self._dependency_state(j) == "ready"
        ]
        if not self.fair_share:
            return eligible
        return sorted(
            eligible,
            key=lambda j: (self.usage[j.user], self._submit_seq[j.job_id]),
        )

    def _first_eligible(self) -> Optional[Job]:
        for job in self.queue:
            if not job.depends_on or self._dependency_state(job) == "ready":
                return job
        return None

    def _free_nodes_for(self, request: ResourceRequest, exclude=()) -> Optional[list[Node]]:
        key = request.placement_class
        if (
            self._memoize
            and self._blocked.get(key)
            == self.cluster.free_pool.version + self._gain_version
        ):
            # Still blocked: no capacity gain since the miss, and a
            # narrower (exclude-restricted) query cannot succeed where
            # the unrestricted one failed.
            return None
        if self.node_health is not None:
            avoid = self.node_health.quarantined_nodes(self.cluster)
            if avoid:
                exclude = avoid | set(exclude)
        nodes = self.cluster.free_pool.first_fit(
            request.cores_per_node,
            request.gpus_per_node,
            request.memory_gb_per_node,
            request.nodes,
            exclude,
        )
        if nodes is None and self._memoize and not exclude:
            # Only the unrestricted miss is a class-wide verdict; an
            # exclude-narrowed miss says nothing about the class.
            self._blocked[key] = (
                self.cluster.free_pool.version + self._gain_version
            )
        return nodes

    def _try_schedule(self) -> None:
        if self.fair_share:
            self._try_schedule_snapshot()
            return
        # FIFO order is queue order, so walk the indexed queue lazily
        # instead of materializing the eligible list every pass.
        # Dependency states cannot change mid-pass (completions arrive
        # via separate events), so per-job eligibility is stable here.
        head = self._first_eligible()
        while head is not None:
            nodes = self._free_nodes_for(head.request)
            if nodes is None:
                break
            self._start(head, nodes)
            head = self._first_eligible()
        if head is None or not self.backfill:
            return
        if not self.cluster.free_pool:
            # Zero idle nodes: no backfill candidate could start, so the
            # reservation walk would be pure overhead.  This is the
            # steady state of a saturated cluster — most wakeups exit
            # here in O(1).
            return
        self._backfill(head, [j for j in self.queue if j is not head])

    def _try_schedule_snapshot(self) -> None:
        """Fair-share pass: order changes between starts, so snapshot."""
        ordered = self._ordered_queue()
        started = True
        while started and ordered:
            started = False
            head = ordered[0]
            nodes = self._free_nodes_for(head.request)
            if nodes is not None:
                self._start(head, nodes)
                ordered.pop(0)
                started = True
        if not ordered or not self.backfill:
            return
        self._backfill(ordered[0], ordered[1:])

    def _backfill(self, head: Job, candidates) -> None:
        # EASY backfill: reserve for the head, let later jobs squeeze in.
        shadow, reserved = self._head_reservation(head)
        free_pool = self.cluster.free_pool
        for job in candidates:
            if not free_pool:
                break  # every remaining fit check would come up empty
            if job.depends_on and self._dependency_state(job) != "ready":
                continue
            nodes = self._free_nodes_for(job.request, exclude=reserved)
            fits_outside_reservation = nodes is not None
            if not fits_outside_reservation:
                nodes = self._free_nodes_for(job.request)
                if nodes is None:
                    continue
                # Using reserved nodes is fine only if we finish before
                # the head could start.
                if self.env.now + job.request.walltime_s > shadow + 1e-9:
                    continue
            self._start(job, nodes)

    def _head_reservation(self, head: Job) -> tuple[float, set]:
        """(shadow start time, nodes reserved for the head job).

        Walks running jobs in projected-end order, freeing their nodes
        until the head's request fits; the fit time is the shadow.
        """
        free = set(
            self.cluster.free_pool.iter_matching(
                head.request.cores_per_node,
                head.request.gpus_per_node,
                head.request.memory_gb_per_node,
            )
        )
        if len(free) >= head.request.nodes:
            # Head fits now in principle (race with in-flight starts);
            # reserve the first-fit set immediately.
            reserved = set(sorted(free, key=lambda n: n.id)[: head.request.nodes])
            return self.env.now, reserved
        ending = sorted(
            (j for j in self.running if j.start_time is not None),
            key=lambda j: j.start_time + j.request.walltime_s,
        )
        pool = set(free)
        for j in ending:
            for n in j.nodes:
                if self._node_satisfies(n, head.request):
                    pool.add(n)
            if len(pool) >= head.request.nodes:
                shadow = j.start_time + j.request.walltime_s
                reserved = set(sorted(pool, key=lambda n: n.id)[: head.request.nodes])
                return shadow, reserved
        # Not satisfiable from running jobs either; reserve nothing and
        # disallow delay-free backfill beyond current free nodes.
        return float("inf"), set()

    @staticmethod
    def _node_satisfies(node: Node, request: ResourceRequest) -> bool:
        spec = node.spec
        return (
            spec.cores >= request.cores_per_node
            and spec.gpus >= request.gpus_per_node
            and spec.memory_gb >= request.memory_gb_per_node - 1e-9
        )

    # -- job execution ---------------------------------------------------------------

    def _start(self, job: Job, nodes: list[Node]) -> None:
        self.queue.remove(job)
        self._dep_queued.discard(job)
        self._submit_seq.pop(job.job_id, None)
        job.state = JobState.RUNNING
        job.start_time = self.env.now
        job.nodes = list(nodes)
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.metrics.gauge("queue_length", component="batch").set(
                self.env.now, len(self.queue)
            )
            job._obs_span = tracer.start(
                job.name,
                category="rm.job",
                component="batch",
                tags={"user": job.user, "nodes": len(nodes)},
            )
        # Allocate synchronously so the scheduling pass that picked these
        # nodes cannot hand them to another job before the run process
        # gets a turn.
        allocs = [
            node.allocate(
                cores=node.spec.cores,  # whole-node grant
                gpus=node.spec.gpus,
                memory_gb=node.spec.memory_gb,
                owner=job.job_id,
            )
            for node in nodes
        ]
        self.running.append(job)
        self.env.process(self._run_job(job, allocs), name=f"run:{job.job_id}")

    def _run_job(self, job: Job, allocs):
        request = job.request
        if len(job.nodes) == 1:  # the overwhelmingly common shape
            only = job.nodes[0]
            spec = only.spec
            tracked_cores, tracked_gpus = spec.cores, spec.gpus
        else:
            only = None
            tracked_cores = sum(n.spec.cores for n in job.nodes)
            tracked_gpus = sum(n.spec.gpus for n in job.nodes)
        self.cluster.track_acquire(cores=tracked_cores, gpus=tracked_gpus)

        me = self.env.active_process
        for node in job.nodes:
            node.register_occupant(job.job_id, me)

        failure_cause = None
        try:
            if job.work is None and self._direct_timers:
                # Fast path: a duration job's outcome is pure
                # arithmetic — the payload timer either beats the
                # walltime or it does not — so run it off ONE kernel
                # timer instead of a payload process racing a walltime
                # timeout through any_of.  The strict `<` matches the
                # event-order tie-break of the race: at run_s ==
                # walltime the walltime timeout was scheduled first
                # and fired first, killing the job.  The timer is
                # never recomputed on node loss, exactly like the
                # legacy payload's one-shot timeout.
                if only is not None:
                    speed = only.spec.speed / only.slowdown
                else:
                    speed = min(n.effective_speed for n in job.nodes)
                run_s = job.duration / speed
                beats_walltime = run_s < request.walltime_s
                timer = self.env.timeout(min(run_s, request.walltime_s))
                # simlint: disable=RES002 -- not a retry: resilient jobs absorb node-death interrupts and keep waiting on the same timer
                while True:
                    try:
                        yield timer
                        if beats_walltime:
                            job.state = JobState.COMPLETED
                        else:
                            job.state = JobState.FAILED
                            failure_cause = "walltime"
                    except Interrupt as intr:
                        if job.resilient:
                            job.nodes = [n for n in job.nodes if n.is_up]
                            continue
                        job.state = JobState.FAILED
                        failure_cause = intr.cause
                    break
            else:
                yield from self._run_payload_race(job, request)
                failure_cause = job.failure_cause
        except BaseException as exc:  # payload raised (propagated via any_of)
            job.state = JobState.FAILED
            failure_cause = exc
        finally:
            for node in job.nodes:
                node.unregister_occupant(job.job_id)
            for alloc in allocs:
                alloc.release()
            self.cluster.track_release(cores=tracked_cores, gpus=tracked_gpus)
            job.end_time = self.env.now
            job.failure_cause = failure_cause
            if job in self.running:
                self.running.remove(job)
            self.finished.append(job)
            self.usage[job.user] += (job.end_time - job.start_time) * request.total_cores
            span = getattr(job, "_obs_span", None)
            if span is not None:
                span.tag(state=job.state.value).finish()
            job.completion.succeed(job)
            self._kick()

    def _run_payload_race(self, job: Job, request: ResourceRequest):
        """Legacy execution shape: a payload process raced against a
        walltime timeout (kept for ``work=`` jobs, and as the reference
        semantics the direct-timer fast path must reproduce)."""
        payload = self.env.process(self._payload(job), name=f"payload:{job.job_id}")
        walltime = self.env.timeout(request.walltime_s)
        # simlint: disable=RES002 -- not a retry: pilot jobs absorb node-death interrupts and keep waiting on the survivors; task-level retries go through RetryPolicy in the engines
        while True:
            try:
                yield self.env.any_of([payload, walltime])
            except Interrupt as intr:
                # A node under this job died.  Resilient (pilot)
                # jobs shrug and keep running on the survivors;
                # plain jobs fail.
                if job.resilient and payload.is_alive:
                    job.nodes = [n for n in job.nodes if n.is_up]
                    continue
                job.state = JobState.FAILED
                job.failure_cause = intr.cause
                if payload.is_alive:
                    payload.interrupt(cause=intr.cause)
                break
            if payload.is_alive:  # walltime fired first
                payload.interrupt(cause="walltime")
                job.state = JobState.FAILED
                job.failure_cause = "walltime"
            elif payload.ok:
                job.state = JobState.COMPLETED
            else:
                job.state = JobState.FAILED
                job.failure_cause = payload.value
            break

    def _payload(self, job: Job):
        """The job's actual work, scaled by the slowest granted node."""
        inner = None
        try:
            if job.duration is not None:
                speed = min(n.effective_speed for n in job.nodes)
                yield self.env.timeout(job.duration / speed)
            else:
                inner = self.env.process(
                    job.work(self.env, job, job.nodes), name=f"work:{job.job_id}"
                )
                yield inner
        except Interrupt as intr:
            # Killed by walltime or node failure; propagate into the
            # work generator so it can clean up, absorbing its outcome.
            if inner is not None and inner.is_alive:
                inner.interrupt(cause=intr.cause)
                try:
                    yield inner
                # simlint: disable=RES001 -- kill-path drain: the payload's outcome is irrelevant once the job is failed; the cause was already classified from the interrupt
                except BaseException:
                    pass
            return
