"""Retry policies and failure classification.

A failure's *class* decides what to do with it:

- ``TRANSIENT`` — the infrastructure ate the task (node death, spot
  reclaim, transfer fault, site outage).  Retrying on different
  hardware is expected to succeed; this is the E4 story.
- ``PERMANENT`` — the payload itself errored (the §4.3 "time step too
  large" divergences).  Retrying burns allocation for the same crash.
- ``WALLTIME`` — the surrounding job hit its limit; the task itself is
  fine but needs a fresh job to finish in.

The default :class:`RetryPolicy` reproduces the legacy per-engine
loops exactly — retry every class, zero backoff — so adopting the
shared policy changes nothing until a caller opts into classification
or backoff.  All jitter is drawn from seeded generators keyed on
``(seed, attempt, key)`` so identical runs stay identical.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, Optional

import numpy as np

from repro.cluster.node import NodeFailureCause


class FailureClass(enum.Enum):
    """What kind of failure a task saw — the retry-vs-abort input."""

    TRANSIENT = "transient"
    PERMANENT = "permanent"
    WALLTIME = "walltime"


#: Substrings that mark a textual failure cause as infrastructure loss.
_TRANSIENT_MARKERS = (
    "dead-node",
    "node-failure",
    "spot-reclaim",
    "preempt",
    "site-outage",
    "outage",
    "transfer",
    "transient",
    "pilot-shutdown",
    "slot lost",
)


def classify_failure(cause: Any) -> FailureClass:
    """Map a failure cause (exception, interrupt cause, or text) to a class.

    The convention across the codebase: node deaths arrive as
    :class:`~repro.cluster.node.NodeFailureCause` or ``"dead-node:<id>"``
    strings, walltime kills as the literal ``"walltime"``, and payload
    errors as raised exceptions.  Unknown causes classify as PERMANENT —
    the conservative default (never retry what we don't understand
    unless the policy says retry everything).
    """
    if isinstance(cause, FailureClass):
        return cause
    if isinstance(cause, NodeFailureCause):
        return FailureClass.TRANSIENT
    # Exceptions that explicitly carry transience (e.g. TransferError).
    transient_attr = getattr(cause, "transient", None)
    if transient_attr is True:
        return FailureClass.TRANSIENT
    text = str(cause).lower()
    if "walltime" in text:
        return FailureClass.WALLTIME
    if any(marker in text for marker in _TRANSIENT_MARKERS):
        return FailureClass.TRANSIENT
    return FailureClass.PERMANENT


#: Retry-everything: the legacy engine behaviour.
ALL_CLASSES: FrozenSet[FailureClass] = frozenset(FailureClass)
#: Retry only infrastructure loss — the E4-faithful policy.
TRANSIENT_ONLY: FrozenSet[FailureClass] = frozenset(
    {FailureClass.TRANSIENT}
)
#: Transient + walltime (a fresh job can absorb a walltime kill).
RECOVERABLE: FrozenSet[FailureClass] = frozenset(
    {FailureClass.TRANSIENT, FailureClass.WALLTIME}
)


@dataclass(frozen=True)
class RetryPolicy:
    """Shared retry policy: attempt budget, backoff, classification.

    Parameters
    ----------
    max_retries:
        Resubmissions after the first attempt (``max_retries=0`` means
        one attempt total).  The single home of the ``>= 0`` check the
        engines used to duplicate.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff: retry *n* waits
        ``min(backoff_max_s, backoff_base_s * backoff_factor**(n-1))``
        seconds.  The default base of 0 disables backoff entirely (no
        timeout event is even scheduled), matching the legacy loops.
    jitter:
        Fractional jitter: the delay is scaled by a deterministic
        uniform draw from ``1 - jitter`` to ``1 + jitter`` seeded on
        ``(seed, attempt, key)`` — identical runs stay identical, but
        concurrent retries of different tasks desynchronize (no
        resubmission storms landing on one scheduler tick).
    retry_on:
        Failure classes worth retrying.  Defaults to *all* classes
        (legacy semantics); pass ``TRANSIENT_ONLY`` to abort fast on
        payload errors, the behaviour the chaos matrix asserts.
    classifier:
        Override the cause → :class:`FailureClass` mapping.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 300.0
    jitter: float = 0.0
    seed: int = 0
    retry_on: FrozenSet[FailureClass] = ALL_CLASSES
    classifier: Callable[[Any], FailureClass] = field(
        default=classify_failure, repr=False
    )

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if not self.retry_on:
            raise ValueError("retry_on must name at least one FailureClass")
        object.__setattr__(self, "retry_on", frozenset(self.retry_on))

    # -- classification ------------------------------------------------------

    def classify(self, cause: Any) -> FailureClass:
        return self.classifier(cause)

    # -- decisions -----------------------------------------------------------

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def should_retry(self, attempts: int, cause: Any = None) -> bool:
        """Whether a task that has run ``attempts`` times and just
        failed with ``cause`` deserves another submission."""
        if attempts > self.max_retries:
            return False
        if cause is None:
            return True
        return self.classify(cause) in self.retry_on

    def backoff_s(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        ``key`` (typically the task name) decorrelates the jitter of
        tasks retrying at the same attempt count.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        if self.backoff_base_s <= 0:
            return 0.0
        raw = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter <= 0:
            return raw
        rng = np.random.default_rng(
            [self.seed, attempt, zlib.crc32(key.encode())]
        )
        return raw * (1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0))

    # -- canned profiles -----------------------------------------------------

    @classmethod
    def legacy(cls, max_retries: int) -> "RetryPolicy":
        """The pre-resilience engine loop: retry anything, no backoff."""
        return cls(max_retries=max_retries)

    @classmethod
    def resilient(
        cls,
        max_retries: int = 3,
        backoff_base_s: float = 5.0,
        jitter: float = 0.25,
        seed: int = 0,
        retry_walltime: bool = False,
    ) -> "RetryPolicy":
        """Classification-aware profile: retry infrastructure loss with
        jittered exponential backoff, abort on payload errors."""
        return cls(
            max_retries=max_retries,
            backoff_base_s=backoff_base_s,
            jitter=jitter,
            seed=seed,
            retry_on=RECOVERABLE if retry_walltime else TRANSIENT_ONLY,
        )


__all__ = [
    "ALL_CLASSES",
    "FailureClass",
    "RECOVERABLE",
    "RetryPolicy",
    "TRANSIENT_ONLY",
    "classify_failure",
]
