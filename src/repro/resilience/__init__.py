"""Unified fault-tolerance substrate shared by every execution layer.

The paper's E4 result (§4.3) — eight tasks killed by one Frontier node
failure, all automatically resubmitted to a clean finish — only works
because the runtime absorbs node loss.  Before this package each engine
hand-rolled its own ``max_retries`` loop with no backoff, no failure
classification, and no memory of which nodes are flaky.  The pieces:

- :class:`RetryPolicy` — attempt budget, exponential backoff with
  deterministic seeded jitter, and a failure classifier
  (transient infrastructure loss vs. permanent payload error vs.
  walltime) deciding retry-vs-abort.  The default policy reproduces the
  legacy engine loops bit-for-bit (retry everything, zero backoff) so
  traces stay byte-identical until a caller opts in.
- :class:`NodeHealth` — a per-node circuit breaker: repeated failures
  quarantine a node, quarantined nodes feed an avoid-set into
  :class:`~repro.rm.batch.BatchScheduler` /
  :class:`~repro.rm.kube.KubeScheduler` placement and the EnTK
  :class:`~repro.entk.agent.PilotAgent`, and a probation window
  un-quarantines them for a fresh look.
- :mod:`repro.resilience.metrics` — MTTR / availability reductions over
  the fault-injection log.
- :mod:`repro.resilience.slo` — stock alert rules ("task failure rate",
  "quarantined nodes", "resubmission storm") usable from
  :mod:`repro.report`.

Everything here defaults *off/neutral*: engines built without an
explicit policy or health tracker behave exactly as before, down to the
event ordering the golden trace digests pin.
"""

from repro.resilience.policy import (
    ALL_CLASSES,
    RECOVERABLE,
    TRANSIENT_ONLY,
    FailureClass,
    RetryPolicy,
    classify_failure,
)
from repro.resilience.health import NodeHealth, QuarantineEvent, QuarantineSpec
from repro.resilience.metrics import availability, mttr, node_downtime
from repro.resilience.slo import resilience_context, stock_resilience_rules

__all__ = [
    "ALL_CLASSES",
    "RECOVERABLE",
    "TRANSIENT_ONLY",
    "FailureClass",
    "NodeHealth",
    "QuarantineEvent",
    "QuarantineSpec",
    "RetryPolicy",
    "availability",
    "classify_failure",
    "mttr",
    "node_downtime",
    "resilience_context",
    "stock_resilience_rules",
]
