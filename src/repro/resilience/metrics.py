"""MTTR and availability reductions over the fault-injection log.

These operate on the :class:`~repro.cluster.faults.NodeFailure` records
a :class:`~repro.cluster.faults.FaultInjector` accumulates (or any
iterable of objects with ``time`` / ``recovered_at`` / ``node_id``),
so benchmarks and chaos scenarios can report Mean-Time-To-Recovery and
fleet availability without re-deriving them from traces.
"""

from __future__ import annotations

from typing import Iterable, Optional


def mttr(failures: Iterable, until: Optional[float] = None) -> Optional[float]:
    """Mean time to recovery across node failures.

    Unrecovered failures count as down until ``until`` when given, and
    are excluded otherwise.  Returns ``None`` when nothing contributes.
    """
    repair_times = []
    for f in failures:
        if f.recovered_at is not None:
            repair_times.append(f.recovered_at - f.time)
        elif until is not None:
            repair_times.append(until - f.time)
    if not repair_times:
        return None
    return sum(repair_times) / len(repair_times)


def node_downtime(failures: Iterable, until: float) -> float:
    """Total node-seconds of downtime inside the ``[0, until]`` window."""
    total = 0.0
    for f in failures:
        end = f.recovered_at if f.recovered_at is not None else until
        total += max(0.0, min(end, until) - f.time)
    return total


def availability(failures: Iterable, n_nodes: int, window_s: float) -> float:
    """Fleet availability: fraction of node-time the cluster was up.

    ``1.0`` with no failures; one node down for the whole window on an
    ``n``-node cluster gives ``1 - 1/n``.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    down = node_downtime(failures, window_s)
    return max(0.0, 1.0 - down / (n_nodes * window_s))


__all__ = ["availability", "mttr", "node_downtime"]
