"""Stock resilience SLO rules for :mod:`repro.report`.

Three alerts production fault-tolerance dashboards always carry,
expressed in the :mod:`repro.obs.alerts` rule grammar so any report
(``build_report(..., rules=stock_resilience_rules(...))``) can attach
them:

- **task-failure-rate** — failure events per submitted task stayed
  under a budget (E4's 10/7875 ≈ 0.13%; default budget 5%).
- **quarantined-nodes** — the avoid-set never grew past a ceiling
  (a widening quarantine means the cluster, not a node, is sick).
- **resubmission-storm** — total resubmissions stayed bounded (retry
  amplification is how a single gray failure melts a scheduler).

The scalar quantities come from the evaluation *context*;
:func:`resilience_context` assembles that dict from the live objects a
run already has (agent/engine run records, a NodeHealth, a
FaultInjector).  The ``quarantined-nodes`` rule reads the
``<name>/quarantined_nodes`` gauge NodeHealth maintains in the metrics
registry, so it is judged over time, not just at end of run.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.alerts import Rule
from repro.resilience.metrics import availability, mttr


def stock_resilience_rules(
    n_tasks: int,
    max_failure_rate: float = 0.05,
    max_quarantined: int = 1,
    max_resubmissions: Optional[int] = None,
    health_component: str = "resilience",
    series: bool = True,
) -> list:
    """The stock rule set, sized to a run of ``n_tasks`` tasks.

    ``series=False`` drops the registry-backed quarantine series rule
    in favour of a scalar ``quarantined_nodes`` context value (for
    reports evaluated without a trace).
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    if max_resubmissions is None:
        # A storm is when resubmissions rival first submissions.
        max_resubmissions = max(8, n_tasks // 4)
    quarantine_lhs = (
        f"series({health_component}/quarantined_nodes)"
        if series
        else "quarantined_nodes"
    )
    return [
        Rule(
            f"failure_rate <= {max_failure_rate}",
            severity="critical",
            name="task-failure-rate",
        ),
        Rule(
            f"{quarantine_lhs} <= {max_quarantined}",
            severity="warning",
            name="quarantined-nodes",
        ),
        Rule(
            f"resubmissions <= {max_resubmissions}",
            severity="critical",
            name="resubmission-storm",
        ),
    ]


def resilience_context(
    n_tasks: int,
    failure_events: int,
    resubmissions: int,
    health=None,
    injector=None,
    window_s: Optional[float] = None,
    n_nodes: Optional[int] = None,
) -> dict:
    """Scalar context for :func:`stock_resilience_rules` plus the
    MTTR/availability headline numbers, from whatever is at hand."""
    context = {
        "failure_rate": failure_events / n_tasks if n_tasks else 0.0,
        "resubmissions": float(resubmissions),
    }
    if health is not None:
        context["quarantined_nodes"] = float(len(health.quarantined_ids()))
        context["quarantine_events"] = float(health.quarantine_count)
    if injector is not None:
        recovery = mttr(injector.failures, until=window_s)
        if recovery is not None:
            context["mttr_s"] = recovery
        if window_s and n_nodes:
            context["availability"] = availability(
                injector.failures, n_nodes, window_s
            )
    return context


__all__ = ["resilience_context", "stock_resilience_rules"]
