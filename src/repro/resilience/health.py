"""Per-node failure history and quarantine (a node circuit breaker).

The E4 failure cascade happens because the runtime keeps handing out a
dead node until enough tasks die on it.  :class:`NodeHealth` is the
shared memory that stops the bleeding: every execution layer reports
task failures per node, nodes that accumulate ``strikes`` failures are
*quarantined* (placed on an avoid-set the schedulers and the pilot
agent consult), and after a ``probation_s`` window the node gets a
fresh look — gray failures (a transient slowdown, a flapping link)
should not blacklist hardware forever.

Successes reset the strike counter (classic circuit-breaker
half-open→closed transition), so a node that recovers organically never
reaches quarantine.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Set

from repro.simkernel import Environment, register_ckpt_probe


@dataclass(frozen=True)
class QuarantineSpec:
    """Declarative quarantine parameters (carried by configs that are
    frozen dataclasses themselves, e.g. ``AgentConfig``)."""

    strikes: int = 3
    probation_s: Optional[float] = 600.0

    def __post_init__(self):
        if self.strikes < 1:
            raise ValueError("strikes must be >= 1")
        if self.probation_s is not None and self.probation_s <= 0:
            raise ValueError("probation_s must be positive (or None)")

    def build(self, env: Environment, name: str = "resilience") -> "NodeHealth":
        return NodeHealth(
            env, strikes=self.strikes, probation_s=self.probation_s, name=name
        )


@dataclass
class QuarantineEvent:
    """One quarantine episode of one node."""

    node_id: str
    quarantined_at: float
    released_at: Optional[float] = None  # None = still quarantined
    cause: Any = None

    @property
    def active(self) -> bool:
        return self.released_at is None


class NodeHealth:
    """Tracks per-node failure history; quarantines repeat offenders.

    Parameters
    ----------
    env:
        Simulation environment (time source + probation timers).
    strikes:
        Task failures on a node before it is quarantined.
    probation_s:
        Quarantine duration; after it the node is released with a clean
        slate.  ``None`` quarantines forever (the legacy blacklist).
    name:
        Component name for the ``quarantined_nodes`` gauge and the
        ``fault.quarantine`` trace events.
    """

    def __init__(
        self,
        env: Environment,
        strikes: int = 3,
        probation_s: Optional[float] = 600.0,
        name: str = "resilience",
    ):
        if strikes < 1:
            raise ValueError("strikes must be >= 1")
        if probation_s is not None and probation_s <= 0:
            raise ValueError("probation_s must be positive (or None)")
        self.env = env
        self.strikes = strikes
        self.probation_s = probation_s
        self.name = name
        self._strikes: dict[str, int] = defaultdict(int)
        self._quarantined: dict[str, QuarantineEvent] = {}
        #: Every quarantine episode, chronological (closed ones keep
        #: their release time — the MTTR input).
        self.log: list[QuarantineEvent] = []
        #: Total failures reported, per node (never reset).
        self.failure_counts: dict[str, int] = defaultdict(int)
        #: Callbacks ``fn(node_id)`` fired when a node leaves quarantine
        #: — runtimes blocked waiting for usable nodes subscribe so a
        #: probation release re-triggers their placement logic.
        self._release_watchers: list = []
        self._gauge = env.tracer.metrics.gauge(
            "quarantined_nodes", component=name, t0=env.now
        )
        register_ckpt_probe(env, f"health.{name}", self.ckpt_fingerprint)

    def ckpt_fingerprint(self) -> dict:
        """Strike counters and the quarantine set, for verification.

        Node ids are deterministic (spec-derived), so the full maps are
        safe to include; episode log length stands in for the log
        itself (timestamps inside it are covered by determinism of the
        counters plus the kernel clock fingerprint).
        """
        return {
            "strikes": sorted(
                (n, c) for n, c in self._strikes.items() if c
            ),
            "quarantined": sorted(self._quarantined),
            "failures": sorted(self.failure_counts.items()),
            "episodes": len(self.log),
        }

    # -- reporting -----------------------------------------------------------

    def record_failure(self, node_id: str, cause: Any = None) -> bool:
        """Report a task failure attributed to ``node_id``.

        Returns True when this report pushed the node into quarantine.
        """
        self.failure_counts[node_id] += 1
        if node_id in self._quarantined:
            return False
        self._strikes[node_id] += 1
        if self._strikes[node_id] < self.strikes:
            return False
        event = QuarantineEvent(
            node_id=node_id, quarantined_at=self.env.now, cause=cause
        )
        self._quarantined[node_id] = event
        self.log.append(event)
        self._gauge.set(self.env.now, len(self._quarantined))
        self.env.tracer.instant(
            "quarantine",
            category="fault.quarantine",
            component=self.name,
            tags={"node": node_id, "strikes": self._strikes[node_id]},
        )
        if self.probation_s is not None:
            self.env.process(
                self._probation(node_id), name=f"probation:{node_id}"
            )
        return True

    def record_success(self, node_id: str) -> None:
        """Report a task success on ``node_id`` — closes the breaker."""
        if node_id not in self._quarantined:
            self._strikes.pop(node_id, None)

    def watch_release(self, fn) -> None:
        """Subscribe ``fn(node_id)`` to quarantine-release events."""
        self._release_watchers.append(fn)

    def _probation(self, node_id: str):
        yield self.env.timeout(self.probation_s)
        self.release(node_id)

    def release(self, node_id: str) -> None:
        """Un-quarantine ``node_id`` with a clean strike slate."""
        event = self._quarantined.pop(node_id, None)
        if event is None:
            return
        event.released_at = self.env.now
        self._strikes.pop(node_id, None)
        self._gauge.set(self.env.now, len(self._quarantined))
        self.env.tracer.instant(
            "release",
            category="fault.quarantine",
            component=self.name,
            tags={"node": node_id},
        )
        for fn in self._release_watchers:
            fn(node_id)

    # -- queries -------------------------------------------------------------

    def is_quarantined(self, node_id: str) -> bool:
        return node_id in self._quarantined

    def quarantined_ids(self) -> Set[str]:
        """Node ids currently on the avoid-set."""
        return set(self._quarantined)

    def quarantined_nodes(self, cluster) -> set:
        """The avoid-set as Node objects of ``cluster`` (ids the cluster
        does not know are ignored — health may outlive a node set)."""
        out = set()
        for node_id in self._quarantined:
            try:
                out.add(cluster.node(node_id))
            except KeyError:
                continue
        return out

    def strikes_for(self, node_id: str) -> int:
        return self._strikes.get(node_id, 0)

    @property
    def quarantine_count(self) -> int:
        """Total quarantine episodes (including released ones)."""
        return len(self.log)

    def total_quarantine_time(self, until: Optional[float] = None) -> float:
        """Node-seconds spent quarantined (open episodes accrue until
        ``until``, default now)."""
        horizon = self.env.now if until is None else until
        return sum(
            (e.released_at if e.released_at is not None else horizon)
            - e.quarantined_at
            for e in self.log
        )

    def __repr__(self) -> str:
        return (
            f"<NodeHealth strikes>={self.strikes} "
            f"quarantined={sorted(self._quarantined)}>"
        )


__all__ = ["NodeHealth", "QuarantineEvent", "QuarantineSpec"]
