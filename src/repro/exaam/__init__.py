"""ExaAM UQ pipeline (§4): process-to-structure-to-properties.

The paper's UQ pipeline has three main stages (Fig 3):

- **Stage 0** — generate the UQ sample grid with TASMANIAN.  We
  implement the same mathematics from scratch: Smolyak sparse grids on
  nested Clenshaw-Curtis points (:mod:`repro.exaam.tasmanian`).
- **Stage 1** — melt-pool thermal simulation (AdditiveFOAM) feeding
  microstructure generation (ExaCA).  We substitute surrogate physics
  that produces real, checkable numbers at toy scale: the analytic
  Rosenthal moving-source solution and a genuine 2-D cellular-automaton
  solidification model (:mod:`repro.exaam.models`).
- **Stage 3** — local property calculations (ExaConstit): a
  Taylor-type crystal-plasticity homogenization over the CA's grain
  orientations, then a least-squares fit of macroscopic material-model
  parameters.

:mod:`repro.exaam.pipeline` assembles these into EnTK PST applications
with the Frontier resource footprints of §4.3 (AdditiveFOAM 4-node CPU
tasks, ExaCA 1-node 7CPU+1GPU tasks, ExaConstit 8-node tasks of
10-25 min).
"""

from repro.exaam.tasmanian import cc_points, cc_weights, sparse_grid
from repro.exaam.models import (
    MeltPoolResult,
    exaca_grain_growth,
    exaconstit_homogenize,
    fit_material_model,
    rosenthal_meltpool,
)
from repro.exaam.pipeline import (
    UQCase,
    build_stage0_cases,
    build_uq_pipelines,
    frontier_stage3_tasks,
)
from repro.exaam.uq import calibrate_absorptivity, main_effects, weighted_moments

__all__ = [
    "MeltPoolResult",
    "UQCase",
    "build_stage0_cases",
    "build_uq_pipelines",
    "calibrate_absorptivity",
    "cc_points",
    "cc_weights",
    "main_effects",
    "weighted_moments",
    "exaca_grain_growth",
    "exaconstit_homogenize",
    "fit_material_model",
    "frontier_stage3_tasks",
    "rosenthal_meltpool",
    "sparse_grid",
]
