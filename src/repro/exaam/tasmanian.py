"""Sparse grids on nested Clenshaw-Curtis points (the TASMANIAN role).

Stage 0 of the UQ pipeline "generates the UQ grid using TASMANIAN".
This module implements the same construction: the Smolyak combination
of nested Clenshaw-Curtis tensor grids, with quadrature weights, so the
grid is not just a point cloud but an exact integrator for polynomials
— which is what the tests verify.
"""

from __future__ import annotations

import itertools
from math import comb
from typing import Optional

import numpy as np


def cc_points(level: int) -> np.ndarray:
    """Nested Clenshaw-Curtis points on [-1, 1] at ``level``.

    ``m(0) = 1`` (the midpoint), ``m(l) = 2**l + 1`` extrema of the
    Chebyshev polynomial — nested: points(l) ⊂ points(l+1).
    """
    if level < 0:
        raise ValueError("level must be >= 0")
    if level == 0:
        return np.zeros(1)
    m = 2**level + 1
    j = np.arange(m)
    return -np.cos(np.pi * j / (m - 1))


def cc_weights(level: int) -> np.ndarray:
    """Clenshaw-Curtis quadrature weights for :func:`cc_points`.

    Weights integrate over [-1, 1] (they sum to 2).  Closed-form
    Fejér/CC expression for an even number of intervals.
    """
    if level < 0:
        raise ValueError("level must be >= 0")
    if level == 0:
        return np.array([2.0])
    m = 2**level + 1
    n = m - 1  # number of intervals, even
    weights = np.empty(m)
    ks = np.arange(1, n // 2 + 1)
    b = np.where(ks == n // 2, 1.0, 2.0)
    for j in range(m):
        c = 1.0 if j in (0, n) else 2.0
        s = np.sum(b / (4.0 * ks**2 - 1.0) * np.cos(2.0 * ks * j * np.pi / n))
        weights[j] = (c / n) * (1.0 - s)
    return weights


def sparse_grid(
    dim: int,
    level: int,
    lower: Optional[np.ndarray] = None,
    upper: Optional[np.ndarray] = None,
) -> tuple:
    """Smolyak sparse grid of total ``level`` in ``dim`` dimensions.

    Returns ``(points, weights)``: points of shape (N, dim) and weights
    integrating over the box [lower, upper] (default [-1, 1]^dim).

    Uses the combination technique:

    ``Q_L = Σ_{L-d+1 <= |l| <= L} (-1)^{L-|l|} C(d-1, L-|l|) (Q_{l1} ⊗ ... ⊗ Q_{ld})``
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    if level < 0:
        raise ValueError("level must be >= 0")

    acc: dict[tuple, float] = {}
    low = max(level - dim + 1, 0)
    for total in range(low, level + 1):
        coeff = (-1.0) ** (level - total) * comb(dim - 1, level - total)
        for combo in _compositions(total, dim):
            pts_1d = [cc_points(l) for l in combo]
            wts_1d = [cc_weights(l) for l in combo]
            for idx in itertools.product(*(range(len(p)) for p in pts_1d)):
                point = tuple(
                    round(float(pts_1d[d_][i]), 14) for d_, i in enumerate(idx)
                )
                weight = coeff * float(
                    np.prod([wts_1d[d_][i] for d_, i in enumerate(idx)])
                )
                acc[point] = acc.get(point, 0.0) + weight

    # Drop numerically-cancelled points, keep deterministic order.
    items = sorted((p, w) for p, w in acc.items() if abs(w) > 1e-13)
    points = np.array([p for p, _ in items], dtype=float)
    weights = np.array([w for _, w in items], dtype=float)

    if lower is not None or upper is not None:
        lower = np.full(dim, -1.0) if lower is None else np.asarray(lower, float)
        upper = np.full(dim, 1.0) if upper is None else np.asarray(upper, float)
        if lower.shape != (dim,) or upper.shape != (dim,):
            raise ValueError("lower/upper must have shape (dim,)")
        if np.any(upper <= lower):
            raise ValueError("upper must exceed lower")
        scale = (upper - lower) / 2.0
        points = lower + (points + 1.0) * scale
        weights = weights * np.prod(scale)
    return points, weights


def _compositions(total: int, parts: int):
    """All tuples of ``parts`` non-negative ints summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest
