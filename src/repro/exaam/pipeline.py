"""Assembling the ExaAM UQ pipeline as EnTK applications (§4.2).

Two construction modes:

- ``mode="simulated"`` — tasks are pure resource footprints with the
  §4.3 Frontier profile; used for the scale experiments (E2/E3/E4).
- ``mode="real"`` — task ``work`` functions actually run the surrogate
  physics at toy scale while consuming proportional simulated time;
  used by the end-to-end example and correctness tests.  Data flows
  between stages through a shared ``results`` dict, mirroring the
  file-based hand-off the real pipeline uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.entk.pst import EnTask, Pipeline, Stage
from repro.exaam.models import (
    exaca_grain_growth,
    exaconstit_homogenize,
    fit_material_model,
    rosenthal_meltpool,
)
from repro.exaam.tasmanian import sparse_grid


@dataclass(frozen=True)
class UQCase:
    """One melt-pool UQ sample: (power, speed, absorptivity)."""

    case_id: int
    power_W: float
    speed_m_per_s: float
    absorptivity: float
    weight: float = 1.0


def build_stage0_cases(
    level: int = 2,
    power_range=(150.0, 350.0),
    speed_range=(0.4, 1.2),
    absorptivity_range=(0.25, 0.45),
) -> list:
    """Stage 0: the TASMANIAN sparse grid over process parameters."""
    lower = np.array([power_range[0], speed_range[0], absorptivity_range[0]])
    upper = np.array([power_range[1], speed_range[1], absorptivity_range[1]])
    points, weights = sparse_grid(3, level, lower=lower, upper=upper)
    return [
        UQCase(
            case_id=i,
            power_W=float(p[0]),
            speed_m_per_s=float(p[1]),
            absorptivity=float(p[2]),
            weight=float(w),
        )
        for i, (p, w) in enumerate(zip(points, weights))
    ]


def build_uq_pipelines(
    cases: Optional[list] = None,
    microstructure_params: Optional[list] = None,
    n_rves: int = 2,
    loading_directions: int = 2,
    temperatures=(293.0, 773.0),
    mode: str = "real",
    rng: Optional[np.random.Generator] = None,
    results: Optional[dict] = None,
) -> tuple:
    """Build the three-stage UQ pipeline; returns (pipeline, results).

    Stage 1 holds AdditiveFOAM tasks (even/odd runs + a gather step is
    folded into each case task here) then ExaCA tasks for the cartesian
    product of melt-pool cases × microstructure parameters; Stage 3
    holds one ExaConstit task per (microstructure × RVE × direction ×
    temperature) plus the final optimization task.
    """
    if mode not in ("real", "simulated"):
        raise ValueError("mode must be 'real' or 'simulated'")
    rng = rng or np.random.default_rng(0)
    cases = cases if cases is not None else build_stage0_cases(level=1)
    micro = (
        microstructure_params
        if microstructure_params is not None
        else [0.2, 0.6]  # directional-bias UQ parameter
    )
    results = results if results is not None else {}
    results.setdefault("meltpools", {})
    results.setdefault("microstructures", {})
    results.setdefault("curves", [])

    pipeline = Pipeline(name="exaam-uq")

    # -- Stage 1a: AdditiveFOAM (CPU-only, 4 nodes x 56 cores each) ------
    foam = Stage(name="additivefoam")
    for case in cases:
        foam.add_task(_foam_task(case, mode, results, rng))
    pipeline.add_stage(foam)

    # -- Stage 1b: ExaCA (1 node, 8 ranks, 7 CPU + 1 GPU each) ------------
    caa = Stage(name="exaca")
    for case in cases:
        for mi, bias in enumerate(micro):
            caa.add_task(_exaca_task(case, mi, bias, mode, results, rng))
    pipeline.add_stage(caa)

    # -- Stage 3: ExaConstit (8 nodes x 8 ranks, 10-25 min) ----------------
    constit = Stage(name="exaconstit")
    for case in cases:
        for mi in range(len(micro)):
            for rve in range(n_rves):
                for direction in range(loading_directions):
                    for temp in temperatures:
                        constit.add_task(
                            _constit_task(
                                case, mi, rve, direction, temp, mode, results, rng
                            )
                        )
    pipeline.add_stage(constit)

    # -- Final optimization: fit the macroscopic material model -----------
    opt = Stage(name="optimize")
    opt.add_task(_optimize_task(mode, results))
    pipeline.add_stage(opt)

    return pipeline, results


# -- task factories --------------------------------------------------------------


def _foam_task(case: UQCase, mode: str, results: dict, rng) -> EnTask:
    name = f"foam-{case.case_id:04d}"
    if mode == "simulated":
        return EnTask(
            duration=float(rng.uniform(3600, 7200)),
            nodes=4,
            cores_per_node=56,
            name=name,
            tags={"stage": "additivefoam", "case": case.case_id},
        )

    def work(env, task, nodes):
        # Even and odd runs, then the gather step (§4.2).
        mp_even = rosenthal_meltpool(
            case.power_W, case.speed_m_per_s, case.absorptivity
        )
        yield env.timeout(30.0)
        mp_odd = rosenthal_meltpool(
            case.power_W * 1.001, case.speed_m_per_s, case.absorptivity
        )
        yield env.timeout(30.0)
        results["meltpools"][case.case_id] = mp_even  # gathered output
        yield env.timeout(5.0)  # post-processing gather

    return EnTask(
        work=work,
        nodes=4,
        cores_per_node=56,
        name=name,
        tags={"stage": "additivefoam", "case": case.case_id},
    )


def _exaca_task(case: UQCase, mi: int, bias: float, mode: str, results: dict, rng) -> EnTask:
    name = f"exaca-{case.case_id:04d}-m{mi}"
    if mode == "simulated":
        return EnTask(
            duration=float(rng.uniform(7200, 14400)),
            nodes=1,
            cores_per_node=56,
            gpus_per_node=8,
            name=name,
            tags={"stage": "exaca", "case": case.case_id, "micro": mi},
        )

    def work(env, task, nodes):
        mp = results["meltpools"][case.case_id]
        # Cooling rate modulates nucleation density; bias is the UQ
        # microstructure parameter.
        n_seeds = int(np.clip(10 + mp.cooling_rate_K_per_s / 5e7, 10, 60))
        structure = exaca_grain_growth(
            nx=32, ny=32, n_seeds=n_seeds, directional_bias=bias,
            rng=np.random.default_rng(case.case_id * 100 + mi),
        )
        results["microstructures"][(case.case_id, mi)] = structure
        yield env.timeout(60.0)

    return EnTask(
        work=work,
        nodes=1,
        cores_per_node=56,
        gpus_per_node=8,
        name=name,
        tags={"stage": "exaca", "case": case.case_id, "micro": mi},
    )


def _constit_task(
    case: UQCase, mi: int, rve: int, direction: int, temp: float,
    mode: str, results: dict, rng,
) -> EnTask:
    name = f"constit-{case.case_id:04d}-m{mi}-r{rve}-d{direction}-T{int(temp)}"
    if mode == "simulated":
        return EnTask(
            duration=float(rng.uniform(600, 1500)),  # "~10-25 min"
            nodes=8,
            cores_per_node=56,
            gpus_per_node=8,
            name=name,
            tags={"stage": "exaconstit", "case": case.case_id},
        )

    def work(env, task, nodes):
        structure = results["microstructures"][(case.case_id, mi)]
        # Seed from the (case, microstructure, RVE) coordinates directly:
        # default_rng folds the tuple through SeedSequence, which is
        # stable across processes (hash() is not for str-bearing keys).
        rve_rng = np.random.default_rng((case.case_id, mi, rve))
        subset = rve_rng.choice(
            structure.orientations_deg,
            size=max(3, structure.n_grains // 2),
            replace=True,
        )
        # Coarsening step then the CP solve (§4.2: "coarsens the
        # microstructures... generates all the simulation option files").
        yield env.timeout(10.0)
        strain, stress = exaconstit_homogenize(subset, temperature_K=temp)
        results["curves"].append((strain, stress))
        yield env.timeout(50.0)

    return EnTask(
        work=work,
        nodes=8,
        cores_per_node=56,
        gpus_per_node=8,
        name=name,
        tags={"stage": "exaconstit", "case": case.case_id},
    )


def _optimize_task(mode: str, results: dict) -> EnTask:
    if mode == "simulated":
        return EnTask(duration=120.0, nodes=1, cores_per_node=56, name="optimize",
                      tags={"stage": "optimize"})

    def work(env, task, nodes):
        results["material_model"] = fit_material_model(results["curves"])
        yield env.timeout(20.0)

    return EnTask(work=work, nodes=1, cores_per_node=56, name="optimize",
                  tags={"stage": "optimize"})


def frontier_stage3_tasks(
    n_tasks: int = 7875,
    nodes_per_task: int = 8,
    runtime_range=(600.0, 1500.0),
    cores_per_node: int = 56,
    gpus_per_node: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> list:
    """The E2/E3 workload: the UQ Stage 3 ExaConstit ensemble at
    Frontier scale — 7875 8-node tasks of 10-25 minutes.

    ``cores_per_node``/``gpus_per_node`` default to the Frontier node
    shape; pass the platform's shape for Summit-sized runs.
    """
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    rng = rng or np.random.default_rng(42)
    return [
        EnTask(
            duration=float(rng.uniform(*runtime_range)),
            nodes=nodes_per_task,
            cores_per_node=cores_per_node,
            gpus_per_node=gpus_per_node,
            name=f"exaconstit-{i:05d}",
            tags={"stage": "exaconstit"},
        )
        for i in range(n_tasks)
    ]
