"""UQ analysis over the sparse-grid ensemble (closing the Fig 3 loop).

The pipeline exists to "quantify the effect that uncertainty has on
local mechanical responses in processing conditions" — this module
does the quantification:

- :func:`weighted_moments` — mean/variance/std of any response
  quantity under the sparse-grid quadrature weights (the whole reason
  Stage 0 produces *weights*, not just points).
- :func:`main_effects` — per-parameter first-order sensitivity
  estimates from the quadrature ensemble (variance of the conditional
  means over parameter bins), normalized Sobol-style.
- :func:`calibrate_absorptivity` — the inverse problem of the paper's
  ref. [30] ("Calibrating uncertain parameters in melt pool
  simulations"): least-squares fit of the laser absorptivity against
  measured melt-pool widths using the Rosenthal surrogate.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np
from scipy import optimize

from repro.exaam.models import rosenthal_meltpool


def weighted_moments(values: Sequence[float], weights: Sequence[float]) -> dict:
    """Quadrature mean / variance / std of a response quantity.

    ``weights`` are the sparse-grid quadrature weights over the
    parameter box; they are normalized internally so the result is an
    expectation under the uniform distribution on the box.  Smolyak
    weights can be negative — that is fine for the mean, and the
    variance is computed as E[x²] − E[x]² under the same rule (clipped
    at zero against quadrature noise).
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise ValueError("values and weights must have the same shape")
    if values.size == 0:
        raise ValueError("need at least one sample")
    total = weights.sum()
    if abs(total) < 1e-12:
        raise ValueError("weights sum to zero")
    w = weights / total
    mean = float(np.dot(w, values))
    var = float(max(0.0, np.dot(w, values**2) - mean**2))
    return {"mean": mean, "variance": var, "std": var**0.5, "n": values.size}


def main_effects(
    points: np.ndarray,
    values: Sequence[float],
    weights: Sequence[float],
    n_bins: int = 3,
) -> np.ndarray:
    """First-order (main-effect) sensitivity per parameter.

    For each parameter dimension, samples are grouped into ``n_bins``
    quantile bins; the variance of the bin-conditional weighted means,
    normalized by the total variance, approximates the Sobol main
    effect.  Coarse but assumption-free — right for the small
    ensembles the sparse grid produces.
    """
    points = np.asarray(points, dtype=float)
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if points.ndim != 2 or points.shape[0] != values.size:
        raise ValueError("points must be (n_samples, dim) matching values")
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2")
    total = weighted_moments(values, weights)
    if total["variance"] <= 0:
        return np.zeros(points.shape[1])
    # Positive analysis weights (quadrature signs don't matter for
    # grouping statistics).
    w = np.abs(weights)
    w = w / w.sum()
    effects = np.empty(points.shape[1])
    for d in range(points.shape[1]):
        x = points[:, d]
        edges = np.quantile(x, np.linspace(0, 1, n_bins + 1))
        edges[-1] += 1e-9
        bin_means = []
        bin_weights = []
        for b in range(n_bins):
            mask = (x >= edges[b]) & (x < edges[b + 1])
            if not mask.any() or w[mask].sum() <= 0:
                continue
            bin_means.append(np.average(values[mask], weights=w[mask]))
            bin_weights.append(w[mask].sum())
        if len(bin_means) < 2:
            effects[d] = 0.0
            continue
        bin_means = np.asarray(bin_means)
        bin_weights = np.asarray(bin_weights)
        bin_weights = bin_weights / bin_weights.sum()
        grand = np.dot(bin_weights, bin_means)
        between_var = np.dot(bin_weights, (bin_means - grand) ** 2)
        effects[d] = float(min(1.0, between_var / total["variance"]))
    return effects


def calibrate_absorptivity(
    measured_widths_m: Sequence[float],
    powers_W: Sequence[float],
    speeds_m_per_s: Sequence[float],
    bounds: tuple = (0.1, 0.9),
    **rosenthal_kwargs,
) -> dict:
    """Fit the laser absorptivity to measured melt-pool widths.

    The ref-[30] inverse problem at surrogate scale: given observed
    pool widths from (power, speed) experiments, find the absorptivity
    minimizing the squared relative width error under the Rosenthal
    model.  Returns the fitted value, the residual, and per-experiment
    predicted widths.
    """
    measured = np.asarray(measured_widths_m, dtype=float)
    powers = np.asarray(powers_W, dtype=float)
    speeds = np.asarray(speeds_m_per_s, dtype=float)
    if not (measured.size == powers.size == speeds.size > 0):
        raise ValueError("need equal-length, non-empty experiment arrays")
    if np.any(measured <= 0):
        raise ValueError("measured widths must be positive")

    def predicted(eta: float) -> np.ndarray:
        return np.array(
            [
                rosenthal_meltpool(
                    power_W=p, speed_m_per_s=v, absorptivity=eta,
                    **rosenthal_kwargs,
                ).width_m
                for p, v in zip(powers, speeds)
            ]
        )

    def loss(eta: float) -> float:
        return float(np.mean((predicted(eta) / measured - 1.0) ** 2))

    result = optimize.minimize_scalar(loss, bounds=bounds, method="bounded")
    eta = float(result.x)
    return {
        "absorptivity": eta,
        "rms_relative_error": float(np.sqrt(loss(eta))),
        "predicted_widths_m": predicted(eta).tolist(),
        "n_experiments": int(measured.size),
    }
