"""Surrogate physics for the ExaAM chain.

Each stand-in produces real numerical output with the right qualitative
physics at laptop scale:

- :func:`rosenthal_meltpool` — the classic analytic solution for a
  moving point heat source (the AdditiveFOAM stand-in): melt pool
  dimensions and the thermal conditions (G, R) at the solidification
  front.
- :func:`exaca_grain_growth` — a genuine 2-D cellular-automaton
  solidification model (the ExaCA stand-in): competitive grain growth
  from seeded nuclei under a directional bias, producing a grain-ID map
  and orientation statistics.
- :func:`exaconstit_homogenize` — Taylor-type crystal-plasticity
  homogenization (the ExaConstit stand-in): a polycrystal stress-strain
  curve from per-grain Taylor factors and power-law hardening.
- :func:`fit_material_model` — the "optimization script" of §4.2:
  least-squares fit of macroscopic Ludwik parameters over many curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import optimize


# -- Stage 1a: melt pool (AdditiveFOAM surrogate) ---------------------------------


@dataclass(frozen=True)
class MeltPoolResult:
    """Melt pool geometry and solidification conditions."""

    length_m: float
    width_m: float
    depth_m: float
    thermal_gradient_K_per_m: float   # G at the trailing edge
    solidification_rate_m_per_s: float  # R (= scan speed at the tail)
    peak_temperature_K: float

    @property
    def cooling_rate_K_per_s(self) -> float:
        """G × R — the quantity that selects the microstructure regime."""
        return self.thermal_gradient_K_per_m * self.solidification_rate_m_per_s


def rosenthal_meltpool(
    power_W: float = 200.0,
    speed_m_per_s: float = 0.8,
    absorptivity: float = 0.35,
    conductivity_W_mK: float = 25.0,
    diffusivity_m2_s: float = 7e-6,
    t_ambient_K: float = 353.0,
    t_melt_K: float = 1620.0,
    n_grid: int = 200,
) -> MeltPoolResult:
    """Analytic Rosenthal solution for a moving point source.

    T(x, r) = T0 + (ηQ / 2πk R_d) · exp(−v (R_d + x) / 2α), with the
    source moving in −x (so the tail trails at x > 0).  The melt pool
    boundary is the T = T_melt isotherm, located numerically on a
    centreline/cross-section grid.
    """
    if power_W <= 0 or speed_m_per_s <= 0:
        raise ValueError("power and speed must be positive")
    if not 0 < absorptivity <= 1:
        raise ValueError("absorptivity must be in (0, 1]")

    q = absorptivity * power_W
    k = conductivity_W_mK
    v = speed_m_per_s
    alpha = diffusivity_m2_s

    def temperature(x: np.ndarray, r_perp: np.ndarray) -> np.ndarray:
        rd = np.sqrt(x**2 + r_perp**2)
        rd = np.maximum(rd, 1e-9)
        return t_ambient_K + q / (2 * np.pi * k * rd) * np.exp(
            -v * (rd + x) / (2 * alpha)
        )

    # Characteristic length for grid sizing.
    l_char = q / (2 * np.pi * k * (t_melt_K - t_ambient_K))
    span = 50 * l_char
    xs = np.linspace(-span, span, n_grid * 4)
    t_line = temperature(xs, np.zeros_like(xs))
    melted = t_line >= t_melt_K
    length = xs[melted].max() - xs[melted].min() if melted.any() else 0.0
    if length < 1e-6:
        # The point-source singularity always exceeds T_melt in an
        # infinitesimal neighbourhood; a pool below 1 micron means the
        # parameters do not produce a physical melt track.
        raise ValueError(
            "Parameters produce no resolvable melting; increase power "
            "or absorptivity"
        )

    rs = np.linspace(1e-8, span, n_grid * 4)
    # Width/depth at the source plane (x = 0): Rosenthal is axisymmetric
    # about the travel axis, so half-width == depth.
    t_cross = temperature(np.zeros_like(rs), rs)
    cross_melted = rs[t_cross >= t_melt_K]
    half_width = cross_melted.max() if cross_melted.size else 0.0

    # Thermal gradient at the trailing edge of the pool (centreline).
    # With the source moving in -x, the tail (solidification front) is
    # the most negative melted x.
    x_tail = xs[melted].min()
    dx = span / (n_grid * 40)
    g = abs(
        (temperature(np.array([x_tail + dx]), np.zeros(1))
         - temperature(np.array([x_tail - dx]), np.zeros(1)))[0]
    ) / (2 * dx)

    peak = float(temperature(np.array([1e-7]), np.zeros(1))[0])
    return MeltPoolResult(
        length_m=float(length),
        width_m=float(2 * half_width),
        depth_m=float(half_width),
        thermal_gradient_K_per_m=float(g),
        solidification_rate_m_per_s=v,
        peak_temperature_K=peak,
    )


# -- Stage 1b: cellular automaton (ExaCA surrogate) --------------------------------


@dataclass(frozen=True)
class GrainStructure:
    """Output of the CA: grain map + orientation statistics."""

    grain_map: np.ndarray          # (ny, nx) int grain ids
    orientations_deg: np.ndarray   # (n_grains,) lattice orientation
    mean_grain_area: float
    n_grains: int
    aspect_ratio: float            # columnar (>1) vs equiaxed (~1)


def exaca_grain_growth(
    nx: int = 64,
    ny: int = 64,
    n_seeds: int = 30,
    directional_bias: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> GrainStructure:
    """Competitive grain growth on a 2-D cellular automaton.

    Seeds nucleate with random crystallographic orientations at the
    bottom boundary region and grow cell-by-cell; ``directional_bias``
    in [0, 1] favours growth along +y (high thermal gradient →
    columnar grains), 0 gives isotropic (equiaxed) growth — the G/R
    dependence ExaCA models.
    """
    if nx < 4 or ny < 4:
        raise ValueError("grid must be at least 4x4")
    if not 0 <= directional_bias <= 1:
        raise ValueError("directional_bias must be in [0, 1]")
    if n_seeds < 1 or n_seeds > nx * ny // 4:
        raise ValueError("n_seeds out of range")
    rng = rng or np.random.default_rng(0)

    grain = np.zeros((ny, nx), dtype=np.int32)  # 0 = liquid
    orientations = rng.uniform(0, 90, size=n_seeds)

    # Nucleation site placement follows the solidification regime: a
    # strong directional gradient (high bias) grows epitaxially from
    # the melt-pool boundary (bottom rows only); low bias nucleates
    # throughout the volume (equiaxed).
    seed_band = max(2, int(round(ny * (1.0 - 0.9 * directional_bias))))
    seed_y = rng.integers(0, seed_band, size=n_seeds)
    seed_x = rng.integers(0, nx, size=n_seeds)
    for gid in range(n_seeds):
        grain[seed_y[gid], seed_x[gid]] = gid + 1

    # Iterate capture events until no liquid remains.  Growth favours
    # +y with probability weight (1 + bias) vs lateral (1 - bias).
    while (grain == 0).any():
        new = grain.copy()
        liquid = np.argwhere(grain == 0)
        rng.shuffle(liquid)
        changed = False
        for y, x in liquid:
            neighbours = []
            weights = []
            if y > 0 and grain[y - 1, x]:
                neighbours.append(grain[y - 1, x])
                weights.append(1.0 + directional_bias)  # growing upward
            if y < ny - 1 and grain[y + 1, x]:
                neighbours.append(grain[y + 1, x])
                weights.append(1.0 - directional_bias * 0.9)
            if x > 0 and grain[y, x - 1]:
                neighbours.append(grain[y, x - 1])
                weights.append(1.0 - directional_bias * 0.9)
            if x < nx - 1 and grain[y, x + 1]:
                neighbours.append(grain[y, x + 1])
                weights.append(1.0 - directional_bias * 0.9)
            if not neighbours:
                continue
            w = np.asarray(weights)
            pick = rng.choice(len(neighbours), p=w / w.sum())
            new[y, x] = neighbours[pick]
            changed = True
        grain = new
        if not changed:
            # Isolated liquid pocket with no solid neighbour cannot
            # happen on a connected grid, but guard against stalls.
            break

    ids, counts = np.unique(grain[grain > 0], return_counts=True)
    # Aspect ratio: mean grain extent in y over extent in x.
    aspects = []
    for gid in ids:
        ys, xs = np.where(grain == gid)
        ey = ys.max() - ys.min() + 1
        ex = xs.max() - xs.min() + 1
        aspects.append(ey / ex)
    return GrainStructure(
        grain_map=grain,
        orientations_deg=orientations[ids - 1],
        mean_grain_area=float(counts.mean()),
        n_grains=int(ids.size),
        aspect_ratio=float(np.mean(aspects)),
    )


# -- Stage 3: crystal plasticity (ExaConstit surrogate) ------------------------------


def exaconstit_homogenize(
    orientations_deg: np.ndarray,
    strain: Optional[np.ndarray] = None,
    sigma0_MPa: float = 250.0,
    hardening_K_MPa: float = 600.0,
    hardening_n: float = 0.45,
    temperature_K: float = 293.0,
) -> tuple:
    """Polycrystal stress-strain curve via Taylor-factor averaging.

    Each grain contributes ``M(θ) · τ(ε)`` with an orientation-dependent
    Taylor factor M ∈ [2.0, 3.67] (fcc bounds) and Ludwik slip hardening
    ``τ = σ0 + K ε^n``; thermal softening scales flow stress by
    ``(1 − 3·10⁻⁴ (T − 293))``.  Returns ``(strain, stress_MPa)``.
    """
    orientations = np.asarray(orientations_deg, dtype=float)
    if orientations.size == 0:
        raise ValueError("need at least one grain orientation")
    if strain is None:
        strain = np.linspace(0.0, 0.2, 41)
    strain = np.asarray(strain, dtype=float)
    if np.any(strain < 0):
        raise ValueError("strain must be non-negative")

    # Taylor factor varies smoothly with misorientation from <001>.
    m = 2.0 + 1.67 * np.sin(np.deg2rad(orientations))**2  # in [2.0, 3.67]
    m_bar = float(np.mean(m)) / 3.06  # normalize by random-texture Taylor factor

    softening = max(0.1, 1.0 - 3e-4 * (temperature_K - 293.0))
    stress = m_bar * softening * (sigma0_MPa + hardening_K_MPa * strain**hardening_n)
    stress[strain == 0] = 0.0  # elastic origin omitted in this surrogate
    return strain, stress


def fit_material_model(curves: list) -> dict:
    """Fit macroscopic Ludwik parameters over many RVE curves.

    The §4.2 "optimization script [that] calculates the necessary
    macroscopic material model parameters".  ``curves`` is a list of
    ``(strain, stress)`` pairs; returns fitted ``sigma0``, ``K``, ``n``
    and the RMS residual.
    """
    if not curves:
        raise ValueError("need at least one curve")
    strain = np.concatenate([np.asarray(c[0], float) for c in curves])
    stress = np.concatenate([np.asarray(c[1], float) for c in curves])
    mask = strain > 0
    if mask.sum() < 3:
        raise ValueError("need at least three plastic points to fit")
    strain, stress = strain[mask], stress[mask]

    def ludwik(eps, sigma0, big_k, n):
        return sigma0 + big_k * eps**n

    p0 = (float(stress.min()), float(np.ptp(stress) + 1.0), 0.5)
    params, _ = optimize.curve_fit(
        ludwik, strain, stress, p0=p0, maxfev=20000,
        bounds=([0, 0, 0.01], [np.inf, np.inf, 1.0]),
    )
    residual = float(np.sqrt(np.mean((ludwik(strain, *params) - stress) ** 2)))
    return {
        "sigma0_MPa": float(params[0]),
        "K_MPa": float(params[1]),
        "n": float(params[2]),
        "rms_residual_MPa": residual,
        "n_points": int(strain.size),
    }
