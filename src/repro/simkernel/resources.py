"""Shared-resource primitives built on the event kernel.

These mirror the classic DES resource trio:

- :class:`Resource` — ``capacity`` identical slots with a FIFO queue
  (cores on a node, pilot slots, EC2 instance pool).
- :class:`Container` — a continuous quantity with put/get (memory
  bytes, storage capacity, network tokens).
- :class:`Store` / :class:`FilterStore` — queues of Python objects
  (work queues, message queues).

All queue disciplines are deterministic: requests are served strictly
in arrival order (or priority then arrival order for the priority
variants).  The implementations are tuned for large waiter counts —
``Resource`` keeps its queue as a ``(priority, seq)`` binary heap with
lazy cancellation, the stores use deques instead of ``pop(0)`` lists,
and ``FilterStore`` only re-tests waiting getters against *newly*
admitted items — but every grant order is bit-identical to the
straightforward sorted-list versions they replaced (pinned by
``tests/simkernel/test_reference_model.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.simkernel.events import Event
from repro.simkernel.queueing import heap_make, heap_pop, heap_push


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the slot ...
    """

    __slots__ = ("resource", "priority", "_seq", "_cancelled")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._cancelled = False
        resource._seq += 1
        self._seq = resource._seq
        # (priority, seq) is a unique total order, so the heap never
        # compares Request objects and grants exactly in sorted order.
        heap_push(resource._queue, (priority, self._seq, self))
        resource._waiting += 1
        resource._trigger_queued()

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        if self.triggered or self._cancelled:
            return
        self._cancelled = True
        self.resource._waiting -= 1
        self.resource._maybe_compact()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` interchangeable slots with a deterministic queue."""

    def __init__(self, env, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: Requests currently holding a slot (insertion-ordered set).
        self.users: dict[Request, None] = {}
        # Heap of (priority, seq, request); cancelled requests stay in
        # the heap as tombstones and are skipped when popped.
        self._queue: list[tuple[int, int, Request]] = []
        self._waiting = 0
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return self._waiting

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a slot previously granted to ``request``.

        Releasing an ungranted request cancels it instead.
        """
        if request in self.users:
            del self.users[request]
            self._trigger_queued()
        else:
            request.cancel()

    def _trigger_queued(self) -> None:
        while self._waiting and len(self.users) < self.capacity:
            req = heap_pop(self._queue)[2]
            if req._cancelled:
                continue
            self._waiting -= 1
            self.users[req] = None
            req.succeed()

    def _maybe_compact(self) -> None:
        # Keep cancel O(1) amortized: rebuild once tombstones dominate.
        if len(self._queue) > 2 * self._waiting + 16:
            self._queue = [e for e in self._queue if not e[2]._cancelled]
            heap_make(self._queue)


class PriorityResource(Resource):
    """A :class:`Resource` whose queue orders by ``priority`` (low first)."""

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)


class Container:
    """A continuous quantity between 0 and ``capacity``.

    ``put``/``get`` events trigger once the operation can complete in
    full (no partial fills).  Waiters are served FIFO — a large ``get``
    at the head of the queue blocks smaller ones behind it, which is the
    conservative (non-starving) discipline batch schedulers use.
    """

    def __init__(self, env, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: deque[tuple[float, Event]] = deque()
        self._putters: deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; triggers when it fits under ``capacity``."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self.capacity:
            # A put that can never fit would deadlock silently; reject it
            # up front, symmetrically with get().
            raise ValueError(f"put({amount}) exceeds capacity {self.capacity}")
        ev = Event(self.env)
        self._putters.append((amount, ev))
        self._drain()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; triggers when at least that much is stored."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self.capacity:
            raise ValueError(f"get({amount}) exceeds capacity {self.capacity}")
        ev = Event(self.env)
        self._getters.append((amount, ev))
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, ev = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.popleft()
                    ev.succeed(amount)
                    progressed = True
            if self._getters:
                amount, ev = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.popleft()
                    ev.succeed(amount)
                    progressed = True


class Store:
    """A FIFO queue of arbitrary objects with optional capacity."""

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Any, Event]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; triggers once there is room."""
        ev = Event(self.env)
        self._putters.append((item, ev))
        self._drain()
        return ev

    def get(self) -> Event:
        """Remove the oldest item; triggers once one is available."""
        ev = Event(self.env)
        self._getters.append(ev)
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                item, ev = self._putters.popleft()
                self.items.append(item)
                ev.succeed(item)
                progressed = True
            while self._getters and self.items:
                ev = self._getters.popleft()
                item = self.items.popleft()
                ev.succeed(item)
                progressed = True

    # -- checkpoint support --------------------------------------------------

    def ckpt_items(self) -> list:
        """The stored items, oldest first (snapshot view).

        Waiting get/put *events* are deliberately not part of a
        snapshot: checkpoint-safe processes re-issue their own pending
        operations when re-entered from their registered factory
        (:mod:`repro.ckpt`), so only the data — the items actually in
        the store — crosses the snapshot boundary.
        """
        return list(self.items)

    def ckpt_waiting(self) -> tuple[int, int]:
        """``(waiting getters, waiting putters)`` for fingerprints."""
        return len(self._getters), len(self._putters)

    def ckpt_restore_items(self, items) -> None:
        """Load snapshot items into a freshly built (empty) store."""
        if self.items or self._getters or self._putters:
            raise RuntimeError(
                "ckpt_restore_items requires a pristine store; restore "
                "state before any process touches it"
            )
        self.items.extend(items)


class FilterStore(Store):
    """A :class:`Store` whose getters may select items by predicate.

    Getters are records of ``(predicate, event)``; each is granted the
    first stored item its predicate accepts, in getter arrival order.

    Invariant between operations: every waiting getter has already been
    tested (and failed) against every stored item.  Each drain therefore
    only tests getters against items admitted *during* that drain — a
    new getter is the one exception and scans the full store once — so
    total predicate work is O(getters × new items), not quadratic in the
    number of passes.
    """

    def __init__(self, env, capacity: float = float("inf")):
        super().__init__(env, capacity)
        # Records are [predicate, event, active]; cancelled-by-grant
        # records flip active to False and are compacted lazily so that
        # iteration stays in arrival order with O(1) removal.
        self._getters: list[list] = []  # type: ignore[assignment]
        self._active_getters = 0
        self.items: list[Any] = []  # arbitrary removal: keep it a list

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:  # noqa: A002
        ev = Event(self.env)
        predicate = filter or (lambda item: True)
        match = next((i for i in self.items if predicate(i)), _NO_MATCH)
        if match is _NO_MATCH:
            self._getters.append([predicate, ev, True])
            self._active_getters += 1
        else:
            self.items.remove(match)
            ev.succeed(match)
            self._drain()  # freed capacity may admit queued putters
        return ev

    def _drain(self) -> None:
        while True:
            fresh: list[list] = []  # [item, still-available] slots
            while self._putters and len(self.items) < self.capacity:
                item, ev = self._putters.popleft()
                self.items.append(item)
                ev.succeed(item)
                fresh.append([item, True])
            if not fresh or not self._active_getters:
                break
            matched = False
            for record in self._getters:
                if not record[2]:
                    continue
                predicate, ev = record[0], record[1]
                for slot in fresh:
                    if slot[1] and predicate(slot[0]):
                        slot[1] = False
                        self.items.remove(slot[0])
                        record[2] = False
                        self._active_getters -= 1
                        ev.succeed(slot[0])
                        matched = True
                        break
            if matched:
                self._compact_getters()
            else:
                break  # nothing matched; queued putters stay queued

    def _compact_getters(self) -> None:
        if len(self._getters) > 2 * self._active_getters + 16:
            self._getters = [r for r in self._getters if r[2]]


_NO_MATCH = object()
