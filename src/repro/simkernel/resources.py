"""Shared-resource primitives built on the event kernel.

These mirror the classic DES resource trio:

- :class:`Resource` — ``capacity`` identical slots with a FIFO queue
  (cores on a node, pilot slots, EC2 instance pool).
- :class:`Container` — a continuous quantity with put/get (memory
  bytes, storage capacity, network tokens).
- :class:`Store` / :class:`FilterStore` — queues of Python objects
  (work queues, message queues).

All queue disciplines are deterministic: requests are served strictly
in arrival order (or priority then arrival order for the priority
variants).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simkernel.events import Event


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the slot ...
    """

    __slots__ = ("resource", "priority", "_seq")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._seq += 1
        self._seq = resource._seq
        resource._queue.append(self)
        resource._queue.sort(key=lambda r: (r.priority, r._seq))
        resource._trigger_queued()

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        if self.triggered:
            return
        try:
            self.resource._queue.remove(self)
        except ValueError:
            pass

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` interchangeable slots with a deterministic queue."""

    def __init__(self, env, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        #: Requests currently holding a slot.
        self.users: list[Request] = []
        self._queue: list[Request] = []
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Return a slot previously granted to ``request``.

        Releasing an ungranted request cancels it instead.
        """
        if request in self.users:
            self.users.remove(request)
            self._trigger_queued()
        else:
            request.cancel()

    def _trigger_queued(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            req = self._queue.pop(0)
            self.users.append(req)
            req.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose queue orders by ``priority`` (low first)."""

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)


class Container:
    """A continuous quantity between 0 and ``capacity``.

    ``put``/``get`` events trigger once the operation can complete in
    full (no partial fills).  Waiters are served FIFO — a large ``get``
    at the head of the queue blocks smaller ones behind it, which is the
    conservative (non-starving) discipline batch schedulers use.
    """

    def __init__(self, env, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: list[tuple[float, Event]] = []
        self._putters: list[tuple[float, Event]] = []

    @property
    def level(self) -> float:
        """Current stored amount."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; triggers when it fits under ``capacity``."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = Event(self.env)
        self._putters.append((amount, ev))
        self._drain()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount``; triggers when at least that much is stored."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        if amount > self.capacity:
            raise ValueError(f"get({amount}) exceeds capacity {self.capacity}")
        ev = Event(self.env)
        self._getters.append((amount, ev))
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, ev = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.pop(0)
                    ev.succeed(amount)
                    progressed = True
            if self._getters:
                amount, ev = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.pop(0)
                    ev.succeed(amount)
                    progressed = True


class Store:
    """A FIFO queue of arbitrary objects with optional capacity."""

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Any, Event]] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; triggers once there is room."""
        ev = Event(self.env)
        self._putters.append((item, ev))
        self._drain()
        return ev

    def get(self) -> Event:
        """Remove the oldest item; triggers once one is available."""
        ev = Event(self.env)
        self._getters.append(ev)
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                item, ev = self._putters.pop(0)
                self.items.append(item)
                ev.succeed(item)
                progressed = True
            while self._getters and self.items:
                ev = self._getters.pop(0)
                item = self.items.pop(0)
                ev.succeed(item)
                progressed = True


class FilterStore(Store):
    """A :class:`Store` whose getters may select items by predicate.

    Getters are records of ``(predicate, event)``; each is granted the
    first stored item its predicate accepts, in getter arrival order.
    """

    def __init__(self, env, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._getters: list[tuple[Callable[[Any], bool], Event]] = []  # type: ignore[assignment]

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:  # noqa: A002
        ev = Event(self.env)
        self._getters.append((filter or (lambda item: True), ev))
        self._drain()
        return ev

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                item, ev = self._putters.pop(0)
                self.items.append(item)
                ev.succeed(item)
                progressed = True
            for record in list(self._getters):
                predicate, ev = record
                match = next((i for i in self.items if predicate(i)), _NO_MATCH)
                if match is not _NO_MATCH:
                    self.items.remove(match)
                    self._getters.remove(record)
                    ev.succeed(match)
                    progressed = True


_NO_MATCH = object()
