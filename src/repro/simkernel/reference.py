"""The naive reference event loop: :class:`NaiveEnvironment`.

This is the pre-calendar-queue implementation, preserved verbatim in
spirit: one global binary heap keyed ``(time, priority, sequence)``,
one event popped and dispatched per step, no batching, no timeout
recycling, no inlined fast paths.  It is deliberately boring — its only
job is to be *obviously correct* so the differential fuzzer in
``tests/simkernel/test_reference_model.py`` can hold the optimized
:class:`repro.simkernel.core.Environment` to byte-identical observable
behaviour (orderings, timestamps, values, exceptions) over randomized
programs.

It shares the event types in ``events.py`` (so a divergence found by
the fuzzer localizes to the queueing machinery, which is what the
rewrite changed) and honours the same dispatch contract: an event's
``_waiter`` — the sole process parked in the fast slot — resumes before
the callback list, reproducing registration order.

Do not optimize this module.  Every clever trick added here is a trick
the differential suite can no longer catch in the real loop.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.obs.tracer import NULL_TRACER
from repro.simkernel.core import SimulationError, StopSimulation
from repro.simkernel.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    Process,
    Timeout,
)
from repro.simkernel.queueing import heap_pop, heap_push


class NaiveEnvironment:
    """Single-heap discrete-event environment (reference semantics).

    API-compatible with :class:`repro.simkernel.core.Environment`; see
    that class for documentation.  Heap entries are
    ``(time, priority, sequence, event)`` so simultaneous events process
    in a deterministic order: urgent first, then FIFO by creation.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None
        self.tracer = NULL_TRACER

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def scheduled_events(self) -> int:
        return self._eid

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    @property
    def active_process_generator(self):
        return self._active_proc.generator if self._active_proc else None

    # -- scheduling ----------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        self._eid += 1
        heap_push(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        return self._queue[0][0] if self._queue else float("inf")

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        proc = Process(self, generator, name=name)
        if self.tracer.trace_kernel:
            span = self.tracer.start(
                proc.name or "process",
                category="kernel.process",
                component="simkernel",
            )
            proc.callbacks.append(lambda event, _s=span: _s.finish())
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- running ---------------------------------------------------------------

    def step(self) -> None:
        time, _prio, _eid, event = heap_pop(self._queue)
        self._now = time

        self._active_proc = None
        waiter = event._waiter
        callbacks, event.callbacks = event.callbacks, None
        if waiter is not None:
            event._waiter = None
            waiter._resume(event)
        if callbacks:
            for callback in callbacks:
                if callback is not None:  # None = tombstoned (interrupt detach)
                    callback(event)

        if not event._ok and not event.defused:
            exc = event._value
            raise SimulationError(
                f"Unhandled failure in {event!r}: {exc!r}"
            ) from exc

    def run(self, until: "float | Event | None" = None) -> Any:
        stop_at: Optional[float] = None
        stop_event: Optional[Event] = None

        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(self._stop_callback)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(f"until={stop_at} is in the past (now={self._now})")

        try:
            while self._queue:
                if stop_at is not None and self._queue[0][0] > stop_at:
                    break
                self.step()
        except StopSimulation:
            pass
        finally:
            self._active_proc = None

        if stop_at is not None and self._now < stop_at:
            self._now = stop_at

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) ran out of events before the event triggered"
                )
            if stop_event._ok:
                return stop_event._value
            stop_event.defused = True
            raise stop_event._value
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()

    def __repr__(self) -> str:
        return f"<NaiveEnvironment now={self._now} queued={len(self._queue)}>"
