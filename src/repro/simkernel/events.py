"""Event types for the discrete-event kernel.

An :class:`Event` moves through three states:

``PENDING``
    Created but not yet triggered.  Processes may register callbacks.
``TRIGGERED``
    ``succeed()`` / ``fail()`` was called; the event sits in the
    environment's queue waiting to be *processed*.
``PROCESSED``
    The environment popped the event and ran its callbacks.

The distinction between *triggered* and *processed* is what gives the
kernel deterministic semantics: all state changes caused by an event
happen at a single well-defined point in the event loop.

Waiter fast slot
----------------

The overwhelmingly common wait shape is "exactly one process waiting on
exactly one event".  Registering that wait as a bound-method append to
``callbacks`` costs a method object, a list append, and (at dispatch) a
list iteration per event.  Instead, the *first* process to wait on an
event with no other callbacks parks itself in the dedicated ``_waiter``
slot; dispatch resumes ``_waiter`` first (it registered first), then
runs ``callbacks`` in order, so observable ordering is identical to the
all-callbacks scheme.  Any further registrant — a second process, a
:class:`Condition`, user code appending to ``callbacks`` — goes on the
list exactly as before.  ``docs/SIMKERNEL.md`` spells out the
invariants.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Scheduling priorities.  Lower sorts earlier at equal simulated time.
URGENT = 0
NORMAL = 1


class EventAlreadyTriggered(RuntimeError):
    """Raised when ``succeed``/``fail`` is called on a triggered event."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`, e.g. a description of a node failure.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening in simulated time that processes can wait on.

    Events are single-shot: they trigger at most once, with either a
    value (success) or an exception (failure).
    """

    __slots__ = ("env", "callbacks", "_waiter", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):  # noqa: F821 (forward ref)
        self.env = env
        #: Callbacks invoked (in registration order) when processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        #: Fast slot: the sole waiting process, resumed before
        #: ``callbacks`` (it can only occupy the slot by registering
        #: first).  See the module docstring.
        self._waiter: Optional["Process"] = None
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (callbacks list is discarded)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._value is PENDING:
            raise AttributeError("Event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._value is PENDING:
            raise AttributeError("Event has not been triggered yet")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        If no waiting process handles the exception the environment will
        re-raise it from :meth:`Environment.run` (unless ``defused``).
        """
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)

    # -- failure bookkeeping ------------------------------------------------

    @property
    def defused(self) -> bool:
        """True when a failure was handled and must not crash the run."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation.

    Prefer ``env.timeout(delay)`` over constructing directly: the
    environment recycles processed timeouts through an allocation-free
    pool (see ``core.py``), and only the factory can hand out pooled
    instances.
    """

    __slots__ = ("delay",)

    def __init__(self, env, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"Negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env, process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume_cb)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class _InterruptEvent(Event):
    """Internal event delivering an :class:`Interrupt` to a process."""

    __slots__ = ()

    def __init__(self, env, process: "Process", cause: Any):
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(process._resume_interrupt)
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A process: a generator driven by the events it yields.

    The process event itself triggers when the generator returns (with
    the return value) or raises (with the exception), so processes can
    be waited on like any other event::

        def child(env):
            yield env.timeout(5)
            return 42

        def parent(env):
            result = yield env.process(child(env))
            assert result == 42
    """

    # _send/_throw/_resume_cb cache the bound generator methods and our
    # own resume callback: they are hit once per event in the loop, and
    # a slot load is ~3x cheaper than re-binding a method each time.
    __slots__ = (
        "generator",
        "target",
        "name",
        "_cb_index",
        "_send",
        "_throw",
        "_resume_cb",
    )

    def __init__(self, env, generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if not
        #: started or already terminated).
        self.target: Optional[Event] = None
        #: Index of this process's resume callback in
        #: ``target.callbacks`` (callback lists are append-only, so the
        #: index stays valid), or -1 when parked in ``target._waiter``.
        self._cb_index: int = -1
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is about to be resumed is allowed (the interrupt wins,
        because interrupt events are URGENT).
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self.generator is self.env.active_process_generator:
            raise RuntimeError("A process is not allowed to interrupt itself")
        _InterruptEvent(self.env, self, cause)

    # -- generator driving (called by the event loop via callbacks) --------

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # terminated before interrupt delivery
            return
        # Detach from whatever we were waiting on: clear the waiter
        # fast slot, or tombstone our callback slot instead of
        # list.remove (O(1) vs O(waiters); the event loop skips None
        # callbacks).
        target = self.target
        if target is not None and target.callbacks is not None:
            cbs = target.callbacks
            if target._waiter is self:
                target._waiter = None
            else:
                i = self._cb_index
                if 0 <= i < len(cbs) and cbs[i] is self._resume_cb:
                    cbs[i] = None
            # We may have been the last party that could observe this
            # event.  If it later *fails* — a child being torn down
            # after this same interrupt, a condition one of whose
            # constituents fails — the exception has effectively been
            # swallowed by the process dying here, and nobody is left
            # to handle it.  Mark the event defused now rather than
            # crash the simulation when it fires.  (This used to
            # special-case Condition targets only; the asymmetry let a
            # plain failed event escape the loop.)
            if target._waiter is None and all(cb is None for cb in cbs):
                target.defused = True
        self._do_resume(event)

    def _resume(self, event: Event) -> None:
        self._do_resume(event)

    def _do_resume(self, event: Event) -> None:
        env = self.env
        while True:
            env._active_proc = self
            try:
                if event._ok:
                    next_event = self._send(event._value)
                else:
                    event.defused = True
                    next_event = self._throw(event._value)
            except StopIteration as exc:
                env._active_proc = None
                self.target = None
                self._ok = True
                self._value = exc.value
                env.schedule(self)
                return
            except BaseException as exc:
                env._active_proc = None
                self.target = None
                self._ok = False
                self._value = exc
                env.schedule(self)
                return

            if not isinstance(next_event, Event):
                env._active_proc = None
                self.target = None
                self._throw(
                    TypeError(f"Process {self.name} yielded non-event {next_event!r}")
                )
                return

            cbs = next_event.callbacks
            if cbs is not None:
                # Event still pending or triggered-but-unprocessed: wait.
                if not cbs and next_event._waiter is None:
                    next_event._waiter = self
                    self._cb_index = -1
                else:
                    self._cb_index = len(cbs)
                    cbs.append(self._resume_cb)
                self.target = next_event
                env._active_proc = None
                return
            if not next_event._ok:
                # Already-processed failure: deliver it on the next spin.
                event = next_event
                continue
            # Event already processed: resume immediately with its value.
            event = next_event

    def __repr__(self) -> str:
        return f"<Process {self.name} {'alive' if self.is_alive else 'done'}>"


class Condition(Event):
    """Base for events composed of other events (``AllOf`` / ``AnyOf``).

    The condition's value is a dict mapping each *triggered* constituent
    event to its value, preserving construction order.
    """

    __slots__ = ("events", "_count")

    def __init__(self, env, events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._count = 0
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("Cannot mix events from different environments")
        if self._evaluate_immediately():
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _evaluate_immediately(self) -> bool:
        if not self.events:
            self.succeed({})
            return True
        return False

    def _satisfied(self, count: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            # The condition already resolved; a constituent failing now
            # has been "observed" through the condition, so defuse it
            # rather than crash the run (e.g. children failing during a
            # teardown that already detached from this condition).
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied(self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # Only *processed* events count: a Timeout is "triggered" at
        # creation (its value is pre-set) but has not happened until the
        # event loop reaches it.  (Constituents are referenced by
        # ``self.events``, so the recycling pool can never reclaim them
        # while the condition is alive — ``callbacks is None`` remains a
        # sound processed-test here.)
        return {
            ev: ev._value
            for ev in self.events
            if ev.callbacks is None and ev._ok
        }


class AllOf(Condition):
    """Triggers when every constituent event has triggered successfully."""

    __slots__ = ()

    def _satisfied(self, count: int) -> bool:
        return count == len(self.events)


class AnyOf(Condition):
    """Triggers when at least one constituent event triggers."""

    __slots__ = ()

    def _satisfied(self, count: int) -> bool:
        return count >= 1
