"""Queueing primitives for the kernel: the calendar queue and the heap.

This module is the **single sanctioned import site for ``heapq``** in
the simulation kernel (enforced by simlint rule KER005).  Everything in
``repro.simkernel`` that needs heap ordering — the calendar queue's
overflow index, the resource priority queues — imports the primitives
from here instead of reaching for ``heapq`` directly, so there is
exactly one place to audit the ordering guarantees that determinism
rests on.

Calendar-queue layout
---------------------

The :class:`Environment` hot loop does not push one heap entry per
event.  It keeps a *calendar*:

``buckets``
    ``dict[float, list[Event]]`` — NORMAL-priority events, keyed by
    their exact trigger time.  Append order within a bucket **is** the
    schedule order, so no per-entry ``(time, priority, seq)`` tuples
    and no sorting are ever needed.
``urgent``
    the same, for URGENT events (process initialization, interrupts).
    At equal time every urgent event dispatches before every normal
    one, which reproduces the old heap's ``(time, priority, seq)``
    order exactly.
``times``
    a plain ``heapq`` heap of *distinct* timestamps — the lazy
    overflow spill.  Only bucket creation pushes here (one entry per
    distinct time, not per event), so heap traffic drops from
    O(events·log events) to O(instants·log instants).  Duplicate or
    stale entries are tolerated: the run loop re-checks the dicts and
    skips empty times, which keeps deletion lazy and O(1).

The helpers below implement the slow-path operations on that layout.
The :class:`Environment` run loop intentionally inlines the fast-path
equivalents (see ``core.py``) — a function call per event would cost
more than the work it wraps — but slow paths (``peek``, ``step``,
batch recovery after ``StopSimulation``) route through here so the
invariants live in one place.
"""

from __future__ import annotations

# The one sanctioned heapq import (KER005): re-exported for the rest of
# the kernel.
from heapq import heapify as heap_make  # noqa: F401  (re-export)
from heapq import heappop as heap_pop
from heapq import heappush as heap_push
from heapq import merge as heap_merge  # noqa: F401  (re-export)
from typing import Optional

__all__ = [
    "heap_make",
    "heap_merge",
    "heap_pop",
    "heap_push",
    "calendar_insert",
    "calendar_peek",
    "calendar_pending",
    "calendar_pop_one",
    "calendar_reinsert",
]


def calendar_insert(buckets: dict, other: dict, times: list, t: float, event) -> None:
    """Append ``event`` to ``buckets[t]``, creating the bucket if needed.

    ``other`` is the opposite-priority calendar for the same clock: a
    timestamp is pushed onto ``times`` only when neither calendar knows
    it yet, so each distinct time costs one heap entry at most (dup
    pushes from racing creations are tolerated by the consumers).
    """
    bucket = buckets.get(t)
    if bucket is None:
        if t not in other:
            heap_push(times, t)
        buckets[t] = [event]
    else:
        bucket.append(event)


def calendar_peek(buckets: dict, urgent: dict, times: list) -> float:
    """Earliest timestamp with at least one event, or ``inf``.

    Lazily drops stale ``times`` entries (times whose buckets have
    already been drained) while peeking.
    """
    while times:
        t = times[0]
        if t in urgent or t in buckets:
            return t
        heap_pop(times)
    return float("inf")


def calendar_pending(buckets: dict, urgent: dict) -> int:
    """Total number of events currently scheduled."""
    n = 0
    for bucket in buckets.values():
        n += len(bucket)
    for bucket in urgent.values():
        n += len(bucket)
    return n


def calendar_pop_one(buckets: dict, urgent: dict, times: list) -> Optional[tuple]:
    """Pop the single next ``(time, event)`` in dispatch order.

    Slow path backing :meth:`Environment.step`.  Returns ``None`` when
    both calendars are empty.  Emptied buckets are deleted; the stale
    ``times`` entry is cleaned up lazily by the next peek.
    """
    t = calendar_peek(buckets, urgent, times)
    if t == float("inf"):
        return None
    bucket = urgent.get(t)
    source = urgent
    if not bucket:
        bucket = buckets.get(t)
        source = buckets
    event = bucket.pop(0)
    if not bucket:
        del source[t]
    return t, event


def calendar_reinsert(buckets: dict, other: dict, times: list, t: float, rest: list) -> None:
    """Put an interrupted batch remainder back at the *front* of ``buckets[t]``.

    Used when ``StopSimulation`` (or a propagating error) aborts a
    same-timestamp batch mid-dispatch: the not-yet-dispatched tail must
    keep its position ahead of anything scheduled at ``t`` during the
    batch.
    """
    if not rest:
        return
    bucket = buckets.get(t)
    if bucket:
        rest.extend(bucket)
    if t not in buckets and t not in other:
        heap_push(times, t)
    buckets[t] = rest
