"""Time-series instrumentation for simulations.

Two small recorders used throughout the substrate layers:

- :class:`TimeSeriesMonitor` — step-function samples ``(t, value)``
  with integration and resampling, used for concurrency curves (Fig 5)
  and queue lengths.
- :class:`UtilizationTracker` — busy-interval accounting for capacity
  resources, used for the Fig 4 utilization reproduction.
"""

from __future__ import annotations

import bisect
from typing import Optional

import numpy as np


class TimeSeriesMonitor:
    """Records a piecewise-constant signal over simulated time.

    The signal holds each recorded value until the next record.  All
    derived statistics (time average, integral, resampling) treat it as
    a right-open step function.
    """

    def __init__(self, name: str = "", initial: float = 0.0, t0: float = 0.0):
        self.name = name
        self.times: list[float] = [t0]
        self.values: list[float] = [float(initial)]

    def record(self, t: float, value: float) -> None:
        """Record that the signal equals ``value`` from time ``t`` on."""
        if t < self.times[-1]:
            raise ValueError(
                f"Non-monotonic record: t={t} < last t={self.times[-1]}"
            )
        if t == self.times[-1]:
            self.values[-1] = float(value)
        else:
            self.times.append(float(t))
            self.values.append(float(value))

    def increment(self, t: float, delta: float = 1.0) -> None:
        """Record ``current + delta`` at time ``t``."""
        self.record(t, self.values[-1] + delta)

    @property
    def current(self) -> float:
        return self.values[-1]

    @property
    def peak(self) -> float:
        return max(self.values)

    def value_at(self, t: float) -> float:
        """Signal value at time ``t`` (last record at or before ``t``)."""
        idx = bisect.bisect_right(self.times, t) - 1
        if idx < 0:
            raise ValueError(f"t={t} precedes first record {self.times[0]}")
        return self.values[idx]

    def integral(self, t_end: Optional[float] = None) -> float:
        """Integral of the step function from first record to ``t_end``.

        ``t_end`` may fall before the last record; segments past it
        contribute nothing.
        """
        t_end = self.times[-1] if t_end is None else t_end
        ts = np.asarray(self.times)
        vs = np.asarray(self.values)
        seg_ends = np.minimum(np.append(ts[1:], max(t_end, ts[-1])), t_end)
        widths = np.clip(seg_ends - ts, 0.0, None)
        return float(np.dot(widths, vs))

    def time_average(self, t_end: Optional[float] = None) -> float:
        """Time-weighted mean of the signal."""
        t_end = self.times[-1] if t_end is None else t_end
        span = t_end - self.times[0]
        if span <= 0:
            return self.values[0]
        return self.integral(t_end) / span

    def resample(self, n: int = 200, t_end: Optional[float] = None):
        """Return ``(times, values)`` arrays sampled on a uniform grid."""
        t_end = self.times[-1] if t_end is None else t_end
        grid = np.linspace(self.times[0], t_end, n)
        idx = np.searchsorted(self.times, grid, side="right") - 1
        idx = np.clip(idx, 0, len(self.values) - 1)
        return grid, np.asarray(self.values)[idx]

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        return (
            f"<TimeSeriesMonitor {self.name!r} points={len(self.times)} "
            f"current={self.current}>"
        )


class UtilizationTracker:
    """Busy-capacity accounting against a fixed total capacity.

    Call :meth:`acquire`/:meth:`release` as capacity units come into and
    out of use.  :meth:`utilization` is the busy integral divided by
    ``capacity × span`` — the quantity Fig 4 of the paper reports as
    "resource utilization".
    """

    def __init__(self, capacity: float, name: str = "", t0: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self.name = name
        self.busy = TimeSeriesMonitor(name=f"{name}.busy", initial=0.0, t0=t0)

    def acquire(self, t: float, amount: float = 1.0) -> None:
        """Mark ``amount`` capacity units busy from time ``t``."""
        new = self.busy.current + amount
        if new > self.capacity + 1e-9:
            raise ValueError(
                f"Oversubscription: busy {new} > capacity {self.capacity}"
            )
        self.busy.record(t, new)

    def release(self, t: float, amount: float = 1.0) -> None:
        """Mark ``amount`` capacity units free from time ``t``."""
        new = self.busy.current - amount
        if new < -1e-9:
            raise ValueError(f"Releasing more than acquired: {new}")
        self.busy.record(t, max(new, 0.0))

    def utilization(self, t_start: Optional[float] = None, t_end: Optional[float] = None) -> float:
        """Fraction of capacity-time in use over ``[t_start, t_end]``."""
        t_start = self.busy.times[0] if t_start is None else t_start
        t_end = self.busy.times[-1] if t_end is None else t_end
        span = t_end - t_start
        if span <= 0:
            return 0.0
        total = self.busy.integral(t_end) - self.busy.integral(t_start)
        return total / (self.capacity * span)

    def __repr__(self) -> str:
        return (
            f"<UtilizationTracker {self.name!r} busy={self.busy.current}"
            f"/{self.capacity}>"
        )
