"""Time-series instrumentation for simulations.

Historical home of the two recorders used throughout the substrate
layers.  The implementations now live in :mod:`repro.obs.metrics` —
the observability layer's single source of truth — and are re-exported
here under their original names for compatibility:

- :class:`TimeSeriesMonitor` is :class:`repro.obs.metrics.Gauge` —
  step-function samples ``(t, value)`` with integration and
  resampling, used for concurrency curves (Fig 5) and queue lengths.
- :class:`UtilizationTracker` — busy-interval accounting for capacity
  resources, used for the Fig 4 utilization reproduction.

Both can be adopted into a tracer's
:class:`~repro.obs.metrics.MetricsRegistry`, so everything recorded
through them shows up in exported traces.

:func:`find_idle_gaps` (from :mod:`repro.obs.analyze`) is re-exported
here too: it consumes exactly these recorders, answering "when was
this resource doing nothing" for any monitor or tracker.
"""

from __future__ import annotations

from repro.obs.analyze import find_idle_gaps
from repro.obs.metrics import Gauge, UtilizationTracker

#: Historical name for :class:`repro.obs.metrics.Gauge`.
TimeSeriesMonitor = Gauge

__all__ = ["TimeSeriesMonitor", "UtilizationTracker", "find_idle_gaps"]
