"""The event loop: :class:`Environment`.

The environment owns the simulated clock and a **calendar queue** of
scheduled events (see ``queueing.py`` for the layout): per-timestamp
bucket lists for NORMAL and URGENT events plus a small heap of distinct
timestamps.  Within a bucket, append order *is* schedule order, so the
old per-event ``(time, priority, sequence)`` heap entries — and their
allocation, comparison, and sift costs — disappear while the dispatch
order they encoded is reproduced exactly:

* lower time first (the ``times`` heap),
* URGENT before NORMAL at equal time (urgent buckets drain first),
* FIFO by schedule order at equal ``(time, priority)`` (list append).

Three further mechanisms make the hot path allocation-free (measured
~5x seed throughput on the ``kernel_events`` bench; see
``docs/SIMKERNEL.md`` for the full design and invariants):

* **Batched same-instant dispatch** — the loop pops a whole bucket and
  iterates it, entering the queue machinery once per *instant* instead
  of once per event.  An URGENT event scheduled mid-batch splices the
  un-dispatched remainder back into the calendar so priority order
  still holds (see :meth:`Environment.schedule`).
* **Timeout recycling pool** — a processed :class:`Timeout` that nobody
  else can observe (checked with ``sys.getrefcount``) is reset and
  reused by the next ``env.timeout()`` call instead of being freed and
  reallocated.  A single-slot cache (``_timeout_slot``) keeps the
  steady-state dispatch->create alternation in one object.
* **Inlined waiter resume** — the canonical event shape (a ``Timeout``
  with exactly one waiting process and no callbacks) is resumed
  directly in the loop body: no bound-method allocation, no callback
  list iteration, no ``_dispatch`` frame.

Anything outside that shape — manual events, conditions, interrupts,
failures, multiple waiters — takes the generic :meth:`_dispatch` path,
which is semantically identical to the old single-heap loop (preserved
as :class:`repro.simkernel.reference.NaiveEnvironment` and held equal
by the differential fuzzer in ``tests/simkernel/``).
"""

from __future__ import annotations

from sys import getrefcount
from typing import Any, Generator, Iterable, Optional

from repro.obs.tracer import NULL_TRACER
from repro.simkernel.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    PENDING,
    Process,
    Timeout,
)
from repro.simkernel.queueing import (
    calendar_peek,
    calendar_pending,
    calendar_pop_one,
    calendar_reinsert,
    heap_pop,
    heap_push,
)


class SimulationError(RuntimeError):
    """An unhandled failure propagated out of the event loop."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


class Environment:
    """Discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (default ``0.0``).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(3)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    3.0
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        #: Calendar queue: NORMAL buckets, URGENT buckets, distinct-time heap.
        self._buckets: dict[float, list[Event]] = {}
        self._urgent: dict[float, list[Event]] = {}
        self._times: list[float] = []
        #: Events handed to dispatch so far (scheduled_events counter).
        self._dispatched = 0
        self._active_proc: Optional[Process] = None
        #: Timeout recycling pool: single hot slot + overflow list.
        self._timeout_slot: Optional[Timeout] = None
        self._timeout_pool: list[Timeout] = []
        #: Last-bucket cache: the bucket most recently appended to.  A
        #: float compare beats a dict probe for the common "burst of
        #: timeouts landing on one instant" pattern.  Must be
        #: invalidated whenever the cached list may no longer be the
        #: live ``buckets[t]`` (batch pop, urgent splice, recovery).
        self._bcache_t: Optional[float] = None
        self._bcache: Optional[list[Event]] = None
        #: The bucket currently being dispatched (batch) and its
        #: iterator — consulted by the urgent splice and by recovery
        #: after StopSimulation / propagating errors.
        self._batch: Optional[list[Event]] = None
        self._batch_it = None
        self._batch_t = 0.0
        self._batch_urgent = False
        #: Observability sink shared by every component holding this
        #: environment.  The default null tracer records nothing; call
        #: :func:`repro.obs.enable_tracing` to install a real one.
        self.tracer = NULL_TRACER
        #: Checkpoint state probes: ``(name, fn)`` pairs registered by
        #: components via :func:`register_ckpt_probe`; each ``fn()``
        #: returns a JSON-able view of that component's semantic state.
        #: The list is append-only and empty unless :mod:`repro.ckpt`
        #: is in play — zero cost on the hot path.
        self.ckpt_probes: list = []
        #: simsan hook: when :func:`repro.sanitizer.enable_sanitizer`
        #: attaches one, ``run()`` hands the calendar to its
        #: instrumented drive loop instead of ``_run_loop``.  ``None``
        #: costs a single attribute test per ``run()`` call — nothing
        #: on the per-event path.
        self._sanitizer = None
        #: ``timeout`` is installed as an instance attribute (a closure
        #: over the calendar structures): the hot path pays one
        #: attribute load instead of a descriptor + bound-method
        #: allocation per call.
        self.timeout = self._make_timeout()

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def scheduled_events(self) -> int:
        """Total events scheduled since creation (perf-harness counter)."""
        return self._dispatched + calendar_pending(self._buckets, self._urgent)

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    @property
    def active_process_generator(self):
        return self._active_proc.generator if self._active_proc else None

    # -- scheduling ----------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Queue ``event`` to be processed ``delay`` time units from now."""
        t = self._now + delay
        if priority:  # NORMAL
            if t == self._bcache_t:
                self._bcache.append(event)
                return
            buckets = self._buckets
            bucket = buckets.get(t)
            if bucket is None:
                if t not in self._urgent:
                    heap_push(self._times, t)
                buckets[t] = bucket = [event]
            else:
                bucket.append(event)
            self._bcache_t = t
            self._bcache = bucket
            return
        # URGENT: separate calendar, drained before NORMAL at equal time.
        urgent = self._urgent
        bucket = urgent.get(t)
        if bucket is None:
            if t not in self._buckets:
                heap_push(self._times, t)
            urgent[t] = [event]
        else:
            bucket.append(event)
        # Urgent splice: if a NORMAL batch at this same instant is being
        # dispatched right now, its un-dispatched remainder must yield
        # to the new URGENT event.  Persist the remainder back into the
        # calendar (ahead of anything scheduled at t meanwhile) and
        # terminate the live batch iterator; the run loop then re-pops
        # urgent[t] before resuming the normals.  This keeps the hot
        # loop free of any per-event priority check.
        batch = self._batch
        if batch and not self._batch_urgent and t == self._batch_t:
            rest = batch[len(batch) - self._batch_it.__length_hint__():]
            if rest:
                self._dispatched -= len(rest)
                calendar_reinsert(
                    self._buckets, self._urgent, self._times, t, rest
                )
                self._bcache_t = None
            batch.clear()

    def schedule_at(self, event: Event, t: float, priority: int = NORMAL) -> None:
        """Queue ``event`` at the *exact* absolute instant ``t``.

        ``schedule(event, delay=t - now)`` is not the same thing: float
        round-trips (``now + (t - now)``) can land one ulp off ``t``,
        which splits a bucket and reorders same-instant dispatch — fatal
        for checkpoint/resume, where a restored run must re-arm events
        at bit-identical timestamps.  This entry point skips the
        addition entirely.
        """
        t = float(t)
        if t < self._now:
            raise ValueError(f"schedule_at t={t} is in the past (now={self._now})")
        if priority:  # NORMAL
            if t == self._bcache_t:
                self._bcache.append(event)
                return
            buckets = self._buckets
            bucket = buckets.get(t)
            if bucket is None:
                if t not in self._urgent:
                    heap_push(self._times, t)
                buckets[t] = bucket = [event]
            else:
                bucket.append(event)
            self._bcache_t = t
            self._bcache = bucket
            return
        urgent = self._urgent
        bucket = urgent.get(t)
        if bucket is None:
            if t not in self._buckets:
                heap_push(self._times, t)
            urgent[t] = [event]
        else:
            bucket.append(event)
        batch = self._batch
        if batch and not self._batch_urgent and t == self._batch_t:
            rest = batch[len(batch) - self._batch_it.__length_hint__():]
            if rest:
                self._dispatched -= len(rest)
                calendar_reinsert(
                    self._buckets, self._urgent, self._times, t, rest
                )
                self._bcache_t = None
            batch.clear()

    def timeout_at(self, t: float, value: Any = None) -> Event:
        """An event triggering at the exact absolute instant ``t``.

        The absolute-time counterpart of ``env.timeout(delay)`` (see
        :meth:`schedule_at` for why the delta form cannot be exact).
        Checkpoint-safe processes wait on an absolute grid so a resumed
        run re-arms bit-identical instants.
        """
        ev = Event(self)
        ev._ok = True
        ev._value = value
        self.schedule_at(ev, t)
        return ev

    def ckpt_fingerprint(self) -> dict:
        """A JSON-able digest of the kernel's semantic queue state.

        Captures the clock, the dispatch counter, and the calendar
        *shape* (per-instant urgent/normal bucket sizes, time order).
        Event identities are process-local and deliberately excluded;
        two deterministic executions of the same program reach the same
        fingerprint at the same trigger point, which is exactly the
        invariant :mod:`repro.ckpt` verifies on resume.
        """
        shape = sorted(
            set(self._buckets) | set(self._urgent)
        )
        return {
            "now": self._now,
            "dispatched": self._dispatched,
            "calendar": [
                [
                    t,
                    len(self._urgent.get(t, ())),
                    len(self._buckets.get(t, ())),
                ]
                for t in shape
            ],
        }

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return calendar_peek(self._buckets, self._urgent, self._times)

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """A pending event to be triggered manually."""
        return Event(self)

    def _make_timeout(self):
        buckets = self._buckets
        times = self._times
        pool = self._timeout_pool
        push = heap_push
        new = Timeout

        def timeout(delay: float, value: Any = None) -> Timeout:
            """An event triggering ``delay`` time units from now.

            Serves recycled :class:`Timeout` instances from the pool
            when available (see the module docstring); falls back to a
            fresh allocation, which schedules itself.
            """
            ev = self._timeout_slot
            if ev is not None:
                self._timeout_slot = None
            elif pool:
                ev = pool.pop()
            else:
                return new(self, delay, value)
            if delay < 0:
                pool.append(ev)
                raise ValueError(f"Negative timeout delay: {delay}")
            ev._value = value
            ev.delay = delay
            t = self._now + delay
            if t == self._bcache_t:
                self._bcache.append(ev)
            else:
                bucket = buckets.get(t)
                if bucket is None:
                    if t not in self._urgent:
                        push(times, t)
                    buckets[t] = bucket = [ev]
                else:
                    bucket.append(ev)
                self._bcache_t = t
                self._bcache = bucket
            return ev

        return timeout

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        proc = Process(self, generator, name=name)
        if self.tracer.trace_kernel:
            # Kernel spans are opt-in (enable_tracing(trace_kernel=True)):
            # one span per process, closed when the process terminates.
            # Process has __slots__, so the link lives in the callback
            # closure rather than on the process object.
            span = self.tracer.start(
                proc.name or "process",
                category="kernel.process",
                component="simkernel",
            )
            proc.callbacks.append(lambda event, _s=span: _s.finish())
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when any of ``events`` triggers."""
        return AnyOf(self, events)

    # -- running ---------------------------------------------------------------

    def _dispatch(self, event: Event) -> None:
        """Process one event the generic way: waiter, then callbacks.

        The waiter (if any) registered before every callback — it can
        only occupy the slot when the callback list is empty — so
        resuming it first preserves registration order exactly.
        """
        self._active_proc = None
        waiter = event._waiter
        callbacks = event.callbacks
        event.callbacks = None
        if waiter is not None:
            event._waiter = None
            waiter._resume(event)
        if callbacks:
            for callback in callbacks:
                if callback is not None:  # None = tombstoned (interrupt detach)
                    callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            raise SimulationError(
                f"Unhandled failure in {event!r}: {exc!r}"
            ) from exc

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        IndexError
            If the queue is empty.
        SimulationError
            If the event failed and nobody defused the failure.
        """
        popped = calendar_pop_one(self._buckets, self._urgent, self._times)
        if popped is None:
            raise IndexError("step from an empty schedule")
        # The pop may have deleted the bucket the cache aliases.
        self._bcache_t = None
        t, event = popped
        self._now = t
        self._dispatched += 1
        self._dispatch(event)

    def _run_loop(self, stop_at: float) -> None:
        """Drain the calendar, batching same-instant dispatch.

        ``stop_at`` is checked once per distinct instant (not per
        event); pass ``inf`` to run to exhaustion.
        """
        times = self._times
        buckets = self._buckets
        urgent = self._urgent
        pool = self._timeout_pool
        getrc = getrefcount
        TO = Timeout
        while times:
            t = heap_pop(times)
            if t > stop_at:
                heap_push(times, t)
                return
            self._now = t
            while True:
                batch = urgent.pop(t, None)
                if batch is not None:
                    self._dispatched += len(batch)
                    self._batch = batch
                    self._batch_it = it = iter(batch)
                    self._batch_t = t
                    self._batch_urgent = True
                    for ev in it:
                        self._dispatch(ev)
                    self._batch = None
                    continue
                batch = buckets.pop(t, None)
                if batch is None:
                    break
                # The cache may alias this (now live) batch list.
                self._bcache_t = None
                self._dispatched += len(batch)
                self._batch = batch
                self._batch_it = it = iter(batch)
                self._batch_t = t
                self._batch_urgent = False
                for ev in it:
                    # Fast path: a Timeout with exactly one waiting
                    # process and no callbacks — resume it inline.
                    # Timeouts cannot fail, so no _ok/_defused check.
                    if ev.__class__ is TO:
                        proc = ev._waiter
                        cbs = ev.callbacks
                        if proc is not None and not cbs:
                            value = ev._value
                            send = proc._send
                            if getrc(ev) == 4:
                                # Sole refs: the batch list, the loop
                                # var, getrefcount's arg, proc.target.
                                # Nobody can observe it again — recycle.
                                ev._waiter = None
                                ev._value = PENDING
                                if self._timeout_slot is None:
                                    self._timeout_slot = ev
                                else:
                                    pool.append(ev)
                            else:
                                ev._waiter = None
                                ev.callbacks = None
                            while True:
                                self._active_proc = proc
                                try:
                                    nxt = send(value)
                                except StopIteration as exc:
                                    proc.target = None
                                    proc._ok = True
                                    proc._value = exc.value
                                    self.schedule(proc)
                                    break
                                except BaseException as exc:
                                    proc.target = None
                                    proc._ok = False
                                    proc._value = exc
                                    self.schedule(proc)
                                    break
                                try:
                                    ncbs = nxt.callbacks
                                except AttributeError:
                                    self._active_proc = None
                                    proc.target = None
                                    proc._throw(
                                        TypeError(
                                            f"Process {proc.name} yielded "
                                            f"non-event {nxt!r}"
                                        )
                                    )
                                    break
                                if ncbs is None:
                                    if nxt._ok:
                                        # Already-processed success:
                                        # feed its value straight back.
                                        value = nxt._value
                                        continue
                                    # Already-processed failure: the
                                    # generic path handles defusing.
                                    self._active_proc = None
                                    proc._resume(nxt)
                                    nxt = None
                                    break
                                if not ncbs and nxt._waiter is None:
                                    nxt._waiter = proc
                                else:
                                    proc._cb_index = len(ncbs)
                                    ncbs.append(proc._resume_cb)
                                proc.target = nxt
                                # Drop the local pin: `nxt` is function-
                                # scoped and would otherwise hold a 5th
                                # reference to this event at its own
                                # dispatch, defeating the recycle check.
                                nxt = None
                                break
                        else:
                            # Timeout with extra callbacks (or no
                            # waiter): generic dispatch minus the
                            # failure check.
                            self._active_proc = None
                            ev.callbacks = None
                            if proc is not None:
                                ev._waiter = None
                                proc._resume(ev)
                            if cbs:
                                for cb in cbs:
                                    if cb is not None:
                                        cb(ev)
                    else:
                        self._dispatch(ev)
                self._batch = None
                self._active_proc = None

    def _recover_batch(self) -> None:
        """Reinsert the un-dispatched tail of an aborted batch.

        Called after ``StopSimulation`` or a propagating error cut a
        batch short, so the environment stays consistent and a later
        ``run()`` resumes exactly where this one stopped.
        """
        batch = self._batch
        if batch is None:
            return
        rest = list(self._batch_it)
        self._batch = None
        self._batch_it = None
        self._active_proc = None
        if not rest:
            return
        self._dispatched -= len(rest)
        t = self._batch_t
        if self._batch_urgent:
            calendar_reinsert(self._urgent, self._buckets, self._times, t, rest)
        else:
            calendar_reinsert(self._buckets, self._urgent, self._times, t, rest)
            self._bcache_t = None

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue empties, a time is reached, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            number — run until the clock reaches that time (clock is set
            to exactly ``until`` even if no event lands there).
            :class:`Event` — run until that event is processed; returns
            its value (re-raising its exception on failure).
        """
        stop_at = float("inf")
        stop_event: Optional[Event] = None

        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(self._stop_callback)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(f"until={stop_at} is in the past (now={self._now})")

        try:
            if self._sanitizer is not None:
                self._sanitizer.drive(self, stop_at)
            else:
                self._run_loop(stop_at)
        except StopSimulation:
            pass
        finally:
            self._recover_batch()

        if stop_event is None:
            if stop_at != float("inf") and self._now < stop_at:
                self._now = stop_at
            return None
        if not stop_event.triggered:
            raise SimulationError(
                "run(until=event) ran out of events before the event triggered"
            )
        if stop_event._ok:
            return stop_event._value
        stop_event.defused = True
        raise stop_event._value

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()

    def __repr__(self) -> str:
        queued = calendar_pending(self._buckets, self._urgent)
        return f"<Environment now={self._now} queued={queued}>"


def register_ckpt_probe(env, name: str, fn) -> None:
    """Register a named checkpoint state probe on ``env``, if supported.

    ``fn()`` must return a JSON-able view of one component's semantic
    state; :mod:`repro.ckpt` hashes the probe outputs into the snapshot
    and re-verifies them at the same trigger point on resume.  Probes
    must capture *decisions*, not caches: anything rebuilt lazily
    (negative-fit memos, recycling pools) stays out so record and
    resume agree.  A ``None`` probe name for an env without the probe
    list (``NaiveEnvironment``, test stubs) is silently a no-op —
    components register unconditionally and stay kernel-agnostic.
    """
    probes = getattr(env, "ckpt_probes", None)
    if probes is not None:
        probes.append((str(name), fn))
