"""The event loop: :class:`Environment`.

The environment owns the simulated clock and a binary heap of scheduled
events.  Heap entries are keyed ``(time, priority, sequence)`` so that
simultaneous events process in a deterministic, reproducible order:
urgent events (process initialization, interrupts) before normal ones,
then FIFO by creation.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from repro.obs.tracer import NULL_TRACER
from repro.simkernel.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    Process,
    Timeout,
)


class SimulationError(RuntimeError):
    """An unhandled failure propagated out of the event loop."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at an event."""


class Environment:
    """Discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock (default ``0.0``).

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(3)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    3.0
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None
        #: Observability sink shared by every component holding this
        #: environment.  The default null tracer records nothing; call
        #: :func:`repro.obs.enable_tracing` to install a real one.
        self.tracer = NULL_TRACER

    # -- clock --------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def scheduled_events(self) -> int:
        """Total events scheduled since creation (perf-harness counter)."""
        return self._eid

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    @property
    def active_process_generator(self):
        return self._active_proc.generator if self._active_proc else None

    # -- scheduling ----------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Queue ``event`` to be processed ``delay`` time units from now."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """A pending event to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        proc = Process(self, generator, name=name)
        if self.tracer.trace_kernel:
            # Kernel spans are opt-in (enable_tracing(trace_kernel=True)):
            # one span per process, closed when the process terminates.
            # Process has __slots__, so the link lives in the callback
            # closure rather than on the process object.
            span = self.tracer.start(
                proc.name or "process",
                category="kernel.process",
                component="simkernel",
            )
            proc.callbacks.append(lambda event, _s=span: _s.finish())
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when any of ``events`` triggers."""
        return AnyOf(self, events)

    # -- running ---------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        IndexError
            If the queue is empty.
        SimulationError
            If the event failed and nobody defused the failure.
        """
        time, _prio, _eid, event = heapq.heappop(self._queue)
        self._now = time

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            if callback is not None:  # None = tombstoned (interrupt detach)
                callback(event)

        if not event._ok and not event.defused:
            exc = event._value
            raise SimulationError(
                f"Unhandled failure in {event!r}: {exc!r}"
            ) from exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue empties, a time is reached, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            number — run until the clock reaches that time (clock is set
            to exactly ``until`` even if no event lands there).
            :class:`Event` — run until that event is processed; returns
            its value (re-raising its exception on failure).
        """
        stop_at: Optional[float] = None
        stop_event: Optional[Event] = None

        if isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:  # already processed
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(self._stop_callback)
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(f"until={stop_at} is in the past (now={self._now})")

        try:
            while self._queue:
                if stop_at is not None and self._queue[0][0] > stop_at:
                    break
                self.step()
        except StopSimulation:
            pass

        if stop_at is not None and self._now < stop_at:
            self._now = stop_at

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) ran out of events before the event triggered"
                )
            if stop_event._ok:
                return stop_event._value
            stop_event.defused = True
            raise stop_event._value
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation()

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={len(self._queue)}>"
