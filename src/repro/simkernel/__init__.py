"""Deterministic discrete-event simulation kernel.

This package is the single source of simulated time for every substrate
in :mod:`repro`.  It provides a small, dependency-free event loop in the
style of SimPy: *processes* are Python generators that ``yield`` events
(timeouts, resource requests, other processes) and are resumed when
those events trigger.

Design goals, in order:

1. **Determinism** — identical inputs produce identical event orderings.
   Ties in simulated time are broken by (priority, creation sequence),
   never by hash order or wall-clock time.
2. **Legibility** — the kernel is small and aggressively documented so
   the higher layers (cluster, resource managers, workflow engines) are
   auditable end to end.
3. **Speed where it matters** — the hot path is a calendar queue with
   batched same-instant dispatch and a recycling pool for timeouts
   (see ``docs/SIMKERNEL.md``); the original single-heap loop is kept
   as :class:`NaiveEnvironment` and a differential fuzzer holds the
   two behaviorally identical.

Public API
----------

- :class:`Environment` — event queue + simulated clock.
- :class:`NaiveEnvironment` — the preserved seed loop (reference model
  for differential testing and live speedup gates).
- :class:`Event`, :class:`Timeout`, :class:`Process` — awaitable events.
- :class:`AllOf`, :class:`AnyOf` — condition events.
- :class:`Interrupt` — exception thrown into interrupted processes.
- :class:`Resource`, :class:`PriorityResource` — capacity-limited shared
  resources with FIFO / priority queues.
- :class:`Container` — continuous quantity (e.g. bytes, memory MB).
- :class:`Store`, :class:`FilterStore` — object queues.
"""

from repro.simkernel.events import (
    AllOf,
    AnyOf,
    Event,
    EventAlreadyTriggered,
    Interrupt,
    PENDING,
    Process,
    Timeout,
)
from repro.simkernel.core import (
    Environment,
    SimulationError,
    StopSimulation,
    register_ckpt_probe,
)
from repro.simkernel.reference import NaiveEnvironment
from repro.simkernel.resources import (
    Container,
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)
from repro.simkernel.monitor import TimeSeriesMonitor, UtilizationTracker

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "FilterStore",
    "Interrupt",
    "NaiveEnvironment",
    "PENDING",
    "PriorityResource",
    "Process",
    "Resource",
    "SimulationError",
    "register_ckpt_probe",
    "StopSimulation",
    "Store",
    "TimeSeriesMonitor",
    "Timeout",
    "UtilizationTracker",
]
