"""SLO rules and alerting over recorded traces.

A :class:`Rule` is a comparison between a measured quantity and a
threshold — ``"utilization >= 0.85"``, ``"p99(entk.exec) <= 1500"``,
``"failed_tasks <= 0"`` — with a severity.  :func:`evaluate_rules`
resolves each rule's left-hand side against a trace (plus caller
context), checks it **on simulated time**, and returns an
:class:`AlertReport`:

- Scalar quantities (context values, span aggregates) are judged once
  at end of run: a violated rule yields an alert that fires at the end
  of the window and never resolves.
- Series quantities (a :class:`~repro.obs.metrics.Gauge`, e.g. a
  queue length or a cumulative-utilization curve) are walked over
  their change points: every maximal violation interval sustained for
  at least ``for_s`` becomes one alert with firing and — if the series
  recovers — resolution times.

Every alert is recorded back into the trace as a span (category
``obs.alert``, component ``slo``) so exported traces carry their own
verdicts, the WfBench "benchmarks must emit machine-readable
performance verdicts" requirement.

Left-hand-side grammar::

    utilization >= 0.85          # scalar from the evaluation context
    p99(entk.exec) <= 1500       # percentile over span durations
    mean(jaws.call) < 600        # also: p50/p90/p95/p99/min/max/mean
    count(entk.exec) >= 400      # number of finished spans
    sum(atlas.step) <= 1e6       # total span-seconds
    series(pilot/pending_launch) <= 5000   # registry gauge, over time

Everything is deterministic: no wall clock, rules evaluated in the
order given, span ids sequential.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.obs.metrics import Gauge, UtilizationTracker
from repro.obs.query import TraceQuery
from repro.obs.tracer import Tracer

SEVERITIES = ("info", "warning", "critical")

_OPS = {
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_RULE_RE = re.compile(
    r"^\s*(?P<lhs>[A-Za-z_][\w.]*(?:\(\s*[^()]*?\s*\))?)\s*"
    r"(?P<op><=|>=|==|!=|<|>)\s*"
    r"(?P<rhs>[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?)\s*$"
)

_AGG_RE = re.compile(r"^(?P<fn>p50|p90|p95|p99|min|max|mean|count|sum)\((?P<arg>[^()]*)\)$")
_SERIES_RE = re.compile(r"^series\((?P<arg>[^()]*)\)$")


class RuleError(ValueError):
    """A rule that cannot be parsed or resolved."""


@dataclass(frozen=True)
class Rule:
    """One SLO: ``<quantity> <op> <threshold>`` at a severity."""

    expr: str
    severity: str = "warning"
    name: str = ""
    for_s: float = 0.0  # sustained violation required before firing

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise RuleError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )
        lhs, op, rhs = parse_expr(self.expr)
        if not self.name:
            object.__setattr__(self, "name", lhs)

    @property
    def parts(self) -> tuple:
        return parse_expr(self.expr)


def parse_expr(expr: str) -> tuple:
    """``(lhs, op, threshold)`` from an SLO expression string."""
    m = _RULE_RE.match(expr)
    if not m:
        raise RuleError(
            f"cannot parse SLO expression {expr!r}; expected "
            "'<quantity> <op> <number>'"
        )
    return m.group("lhs"), m.group("op"), float(m.group("rhs"))


@dataclass
class Alert:
    """One rule violation: when it fired and whether it resolved."""

    rule: str
    expr: str
    severity: str
    fired_at: float
    resolved_at: Optional[float]  # None = still firing at end of run
    value: float  # worst value observed during the violation

    @property
    def firing(self) -> bool:
        return self.resolved_at is None

    @property
    def state(self) -> str:
        return "firing" if self.firing else "resolved"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "expr": self.expr,
            "severity": self.severity,
            "state": self.state,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "value": self.value,
        }


@dataclass
class RuleOutcome:
    """Final verdict of one rule after evaluation."""

    rule: Rule
    ok: bool  # no alert active at end of run
    value: Optional[float]  # final/scalar value of the quantity
    alerts: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.name,
            "expr": self.rule.expr,
            "severity": self.rule.severity,
            "ok": self.ok,
            "value": self.value,
            "alerts": [a.to_dict() for a in self.alerts],
        }


@dataclass
class AlertReport:
    """All rule outcomes of one evaluation pass."""

    outcomes: list = field(default_factory=list)
    window: tuple = (0.0, 0.0)

    @property
    def alerts(self) -> list:
        return [a for o in self.outcomes for a in o.alerts]

    def active(self, severity: Optional[str] = None) -> list:
        """Alerts still firing at end of run (optionally one severity)."""
        return [
            a
            for a in self.alerts
            if a.firing and (severity is None or a.severity == severity)
        ]

    @property
    def ok(self) -> bool:
        """No critical alert left firing — the CI gate."""
        return not self.active("critical")

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "window": list(self.window),
            "rules": [o.to_dict() for o in self.outcomes],
        }

    def summary_rows(self) -> list:
        """``[name, severity, verdict, value, expr]`` rows for tables."""
        rows = []
        for o in self.outcomes:
            verdict = "ok"
            if o.alerts:
                verdict = (
                    "FIRING" if any(a.firing for a in o.alerts) else "resolved"
                )
            value = "n/a" if o.value is None else f"{o.value:g}"
            rows.append([o.rule.name, o.rule.severity, verdict, value, o.rule.expr])
        return rows


def _resolve_lhs(lhs: str, query: TraceQuery, context: dict):
    """Resolve a rule's quantity: context first, then trace builtins."""
    if lhs in context:
        return context[lhs]

    agg = _AGG_RE.match(lhs)
    if agg:
        fn, arg = agg.group("fn"), agg.group("arg").strip()
        durations = sorted(query.durations(category=arg))
        if fn == "count":
            return float(len(durations))
        if not durations:
            raise RuleError(f"no finished spans in category {arg!r}")
        if fn == "sum":
            return float(sum(durations))
        if fn == "min":
            return durations[0]
        if fn == "max":
            return durations[-1]
        if fn == "mean":
            return sum(durations) / len(durations)
        pct = float(fn[1:]) / 100.0
        # Nearest-rank on the sorted sample: deterministic, no interp.
        idx = min(len(durations) - 1, max(0, round(pct * len(durations)) - 1))
        return durations[idx]

    series = _SERIES_RE.match(lhs)
    if series:
        arg = series.group("arg").strip()
        comp, _, name = arg.rpartition("/")
        try:
            metric = query.tracer.metrics.get(name, component=comp)
        except KeyError:
            raise RuleError(f"no metric {arg!r} in the trace registry")
        return metric.busy if isinstance(metric, UtilizationTracker) else metric

    if lhs == "makespan":
        spans = [s for s in query.tracer.spans if s.end is not None]
        if not spans:
            return 0.0
        return max(s.end for s in spans) - min(s.start for s in spans)
    if lhs == "failed_tasks":
        return float(
            sum(
                1
                for s in query.tracer.spans
                if str(s.tags.get("state", "")).upper() == "FAILED"
            )
        )
    raise RuleError(
        f"cannot resolve quantity {lhs!r}: not in context and not a "
        "trace builtin (makespan, failed_tasks, p*/min/max/mean/count/"
        "sum(category), series(component/name))"
    )


class OnlineViolations:
    """Single-pass sustained-violation detector over a streamed series.

    Feed the ``(t, value)`` change points of a step signal in time
    order; :meth:`result` returns exactly what :func:`_violations`
    computes on the full series (the batch walker *is* this class fed
    from the retained gauge).  Memory is O(violations found).
    """

    def __init__(self, ok, threshold: float, t_end: float, for_s: float):
        self._ok = ok
        self._threshold = float(threshold)
        self._t_end = float(t_end)
        self._for_s = float(for_s)
        self._open_at: Optional[float] = None
        self._worst: Optional[float] = None
        self._out: list[tuple] = []
        self._done = False  # a point at/past t_end has been processed
        self._last_t: Optional[float] = None

    def feed(self, t: float, value: float) -> None:
        t, value = float(t), float(value)
        # The tail check below spans the *whole* series extent, points
        # past t_end included, so track last_t unconditionally.
        self._last_t = t
        if self._done:
            return
        if not self._ok(value):
            if self._open_at is None:
                self._open_at = t
                self._worst = value
            elif abs(value - self._threshold) > abs(self._worst - self._threshold):
                self._worst = value
        elif self._open_at is not None:
            if t - self._open_at >= self._for_s:
                self._out.append((self._open_at + self._for_s, t, self._worst))
            self._open_at = None
        if t >= self._t_end:
            self._done = True

    def result(self) -> list:
        """``(fired_at, resolved_at_or_None, worst)`` triples so far."""
        out = list(self._out)
        if self._open_at is not None and self._last_t is not None:
            if max(self._t_end, self._last_t) - self._open_at >= self._for_s:
                out.append((self._open_at + self._for_s, None, self._worst))
        return out


def _violations(
    gauge: Gauge, ok, threshold: float, t_end: float, for_s: float
) -> list:
    """Maximal sustained intervals where ``ok(value)`` is false.

    Returns ``(fired_at, resolved_at_or_None, worst_value)`` triples;
    the worst value is the violating sample farthest from the
    threshold.  Implemented as :class:`OnlineViolations` fed from the
    retained series, so batch and streaming evaluation agree exactly.
    """
    walker = OnlineViolations(ok, threshold, t_end, for_s)
    for t, v in zip(gauge.times, gauge.values):
        walker.feed(t, v)
    return walker.result()


def evaluate_rules(
    rules: list,
    trace: Union[Tracer, TraceQuery, None] = None,
    context: Optional[dict] = None,
    record: bool = True,
) -> AlertReport:
    """Evaluate SLO rules against a trace and/or scalar context.

    ``context`` maps quantity names to scalars (or Gauges) the caller
    already measured — e.g. ``{"utilization": profile.core_utilization}``.
    ``record=True`` (default) writes each alert back into the tracer as
    an ``obs.alert`` span with firing/resolution times and tags.
    """
    context = dict(context or {})
    query: Optional[TraceQuery] = None
    tracer: Optional[Tracer] = None
    if trace is not None:
        query = trace if isinstance(trace, TraceQuery) else TraceQuery(trace)
        tracer = query.tracer

    if query is not None and query.tracer.spans:
        finished = [s for s in query.tracer.spans if s.end is not None]
        t0 = min((s.start for s in query.tracer.spans), default=0.0)
        t_end = max((s.end for s in finished), default=t0)
    else:
        t0 = 0.0
        t_end = 0.0

    outcomes = []
    for rule in rules:
        lhs, op, threshold = rule.parts
        ok_fn = _OPS[op]
        if query is None and lhs not in context:
            raise RuleError(
                f"rule {rule.expr!r} needs a trace or a context value"
            )
        quantity = _resolve_lhs(lhs, query, context) if query is not None else context[lhs]

        alerts: list[Alert] = []
        if isinstance(quantity, UtilizationTracker):
            quantity = quantity.busy
        if isinstance(quantity, Gauge):
            final_value = quantity.current
            for fired, resolved, worst in _violations(
                quantity,
                lambda v: ok_fn(v, threshold),
                threshold,
                t_end,
                rule.for_s,
            ):
                alerts.append(
                    Alert(
                        rule=rule.name,
                        expr=rule.expr,
                        severity=rule.severity,
                        fired_at=fired,
                        resolved_at=resolved,
                        value=worst,
                    )
                )
            ok = not any(a.firing for a in alerts)
        else:
            final_value = float(quantity)
            ok = bool(ok_fn(final_value, threshold))
            if not ok:
                alerts.append(
                    Alert(
                        rule=rule.name,
                        expr=rule.expr,
                        severity=rule.severity,
                        fired_at=t_end,
                        resolved_at=None,
                        value=final_value,
                    )
                )
        outcomes.append(
            RuleOutcome(rule=rule, ok=ok, value=final_value, alerts=alerts)
        )

    report = AlertReport(outcomes=outcomes, window=(t0, t_end))
    if record and tracer is not None and tracer.enabled:
        _record_alert_spans(tracer, report, t_end)
    return report


def _record_alert_spans(tracer: Tracer, report: AlertReport, t_end: float) -> None:
    """Write firing/resolved alert spans back into the trace."""
    for outcome in report.outcomes:
        for alert in outcome.alerts:
            span = tracer.start(
                alert.rule,
                category="obs.alert",
                component="slo",
                t=alert.fired_at,
                tags={
                    "expr": alert.expr,
                    "severity": alert.severity,
                    "value": alert.value,
                    "state": alert.state,
                },
            )
            span.event("firing", t=alert.fired_at)
            if alert.resolved_at is not None:
                span.event("resolved", t=alert.resolved_at)
            span.finish(
                t=alert.resolved_at
                if alert.resolved_at is not None
                else max(t_end, alert.fired_at)
            )


# -- online evaluation ------------------------------------------------------------


class _OnlineCategory:
    """Constant-memory duration aggregates for one span category."""

    __slots__ = ("stats", "quantiles")

    def __init__(self, pcts=()):
        from repro.obs.metrics import P2Quantile, RunningStats

        self.stats = RunningStats()
        self.quantiles = {p: P2Quantile(p) for p in sorted(pcts)}

    def add(self, duration: float) -> None:
        self.stats.add(duration)
        for q in self.quantiles.values():
            q.add(duration)


class OnlineRuleEvaluator:
    """Evaluate SLO rules incrementally as spans close.

    The streaming counterpart of :func:`evaluate_rules`: feed it span
    lifecycle events (:meth:`observe_start` / :meth:`observe_finish`,
    or attach it to a tracer via
    :class:`repro.obs.stream.StreamingAnalytics`), then call
    :meth:`finalize` for an :class:`AlertReport` of the same shape —
    without ever holding the span list in memory.

    Equivalence contract (``tests/obs/test_stream.py``): ``count``,
    ``sum``, ``min``, ``max``, ``mean``, ``makespan``, ``failed_tasks``
    and context scalars are **exact**; ``p50``–``p99`` use the
    :class:`~repro.obs.metrics.P2Quantile` estimator (exact below five
    samples, a few percent of the distribution span beyond);
    ``series(...)`` rules are walked over the metric registry at
    finalize (metric change-point series are bounded by design, unlike
    span lists).

    ``on_alert`` (optional) is called as ``on_alert(rule, value, t)``
    the moment a scalar rule first transitions into violation — the
    live-paging hook that post-hoc evaluation cannot provide.
    ``failed_tasks`` counts the terminal ``state`` tag at finish time,
    so tasks that fail *and finish* page immediately.
    """

    def __init__(self, rules: list, context: Optional[dict] = None, on_alert=None):
        self.rules = list(rules)
        self.context = dict(context or {})
        self.on_alert = on_alert
        self._cats: dict[str, _OnlineCategory] = {}
        pcts_by_cat: dict[str, set] = {}
        for rule in self.rules:
            lhs, _, _ = rule.parts
            agg = _AGG_RE.match(lhs)
            if agg and agg.group("fn").startswith("p"):
                arg = agg.group("arg").strip()
                pct = float(agg.group("fn")[1:]) / 100.0
                pcts_by_cat.setdefault(arg, set()).add(pct)
        self._pcts_by_cat = pcts_by_cat
        self._failed = 0
        self._t_first: Optional[float] = None  # min span start seen
        self._t_last: Optional[float] = None  # max finished span end
        self._live_firing = [False] * len(self.rules)

    # -- ingestion ---------------------------------------------------------

    def observe_start(self, span) -> None:
        t = span.start
        if self._t_first is None or t < self._t_first:
            self._t_first = t

    def observe_finish(self, span) -> None:
        if self._t_first is None or span.start < self._t_first:
            self._t_first = span.start
        if self._t_last is None or span.end > self._t_last:
            self._t_last = span.end
        cat = self._cats.get(span.category)
        if cat is None:
            cat = self._cats[span.category] = _OnlineCategory(
                self._pcts_by_cat.get(span.category, ())
            )
        cat.add(span.end - span.start)
        if str(span.tags.get("state", "")).upper() == "FAILED":
            self._failed += 1
        if self.on_alert is not None:
            self._live_check(span.end)

    def _live_check(self, t: float) -> None:
        for idx, rule in enumerate(self.rules):
            if self._live_firing[idx]:
                continue
            lhs, op, threshold = rule.parts
            try:
                value = self._scalar_value(lhs, self.context)
            except RuleError:
                continue
            if value is None:
                continue
            if not _OPS[op](value, threshold):
                self._live_firing[idx] = True
                self.on_alert(rule, value, t)

    # -- resolution --------------------------------------------------------

    def _scalar_value(self, lhs: str, context: dict) -> Optional[float]:
        """Current scalar value of ``lhs``, or None for series rules."""
        if lhs in context:
            quantity = context[lhs]
            if isinstance(quantity, (UtilizationTracker, Gauge)):
                return None
            return float(quantity)
        agg = _AGG_RE.match(lhs)
        if agg:
            fn, arg = agg.group("fn"), agg.group("arg").strip()
            cat = self._cats.get(arg)
            if fn == "count":
                return float(cat.stats.n if cat else 0)
            if cat is None or cat.stats.n == 0:
                raise RuleError(f"no finished spans in category {arg!r}")
            if fn == "sum":
                return float(cat.stats.total)
            if fn == "min":
                return cat.stats.min
            if fn == "max":
                return cat.stats.max
            if fn == "mean":
                return cat.stats.mean
            pct = float(fn[1:]) / 100.0
            est = cat.quantiles.get(pct)
            if est is None:  # rule set changed after construction
                raise RuleError(
                    f"no quantile estimator registered for {lhs!r}"
                )
            return est.value
        if _SERIES_RE.match(lhs):
            return None
        if lhs == "makespan":
            if self._t_last is None or self._t_first is None:
                return 0.0
            return self._t_last - self._t_first
        if lhs == "failed_tasks":
            return float(self._failed)
        raise RuleError(
            f"cannot resolve quantity {lhs!r}: not in context and not a "
            "trace builtin (makespan, failed_tasks, p*/min/max/mean/count/"
            "sum(category), series(component/name))"
        )

    def finalize(
        self,
        context: Optional[dict] = None,
        registry=None,
    ) -> AlertReport:
        """The end-of-run :class:`AlertReport`.

        ``context`` merges over the constructor's; ``registry`` (a
        :class:`~repro.obs.metrics.MetricsRegistry`) resolves
        ``series(...)`` rules.
        """
        context = {**self.context, **(context or {})}
        t0 = self._t_first if self._t_first is not None else 0.0
        t_end = self._t_last if self._t_last is not None else t0

        outcomes = []
        for rule in self.rules:
            lhs, op, threshold = rule.parts
            ok_fn = _OPS[op]
            quantity = context.get(lhs)
            if quantity is None:
                series = _SERIES_RE.match(lhs)
                if series:
                    arg = series.group("arg").strip()
                    comp, _, name = arg.rpartition("/")
                    if registry is None:
                        raise RuleError(
                            f"rule {rule.expr!r} needs a metrics registry"
                        )
                    try:
                        quantity = registry.get(name, component=comp)
                    except KeyError:
                        raise RuleError(
                            f"no metric {arg!r} in the trace registry"
                        )
                else:
                    quantity = self._scalar_value(lhs, context)

            alerts: list[Alert] = []
            if isinstance(quantity, UtilizationTracker):
                quantity = quantity.busy
            if isinstance(quantity, Gauge):
                final_value = quantity.current
                for fired, resolved, worst in _violations(
                    quantity,
                    lambda v: ok_fn(v, threshold),
                    threshold,
                    t_end,
                    rule.for_s,
                ):
                    alerts.append(
                        Alert(
                            rule=rule.name,
                            expr=rule.expr,
                            severity=rule.severity,
                            fired_at=fired,
                            resolved_at=resolved,
                            value=worst,
                        )
                    )
                ok = not any(a.firing for a in alerts)
            else:
                final_value = float(quantity)
                ok = bool(ok_fn(final_value, threshold))
                if not ok:
                    alerts.append(
                        Alert(
                            rule=rule.name,
                            expr=rule.expr,
                            severity=rule.severity,
                            fired_at=t_end,
                            resolved_at=None,
                            value=final_value,
                        )
                    )
            outcomes.append(
                RuleOutcome(rule=rule, ok=ok, value=final_value, alerts=alerts)
            )
        return AlertReport(outcomes=outcomes, window=(t0, t_end))
