"""Constant-memory streaming observability.

The in-memory :class:`~repro.obs.tracer.InMemorySink` retains every
span for the life of the run — exactly right for the paper-scale
scenarios, and an OOM at the million-task open-arrival scale the
roadmap targets.  This module is the other half of the
:class:`~repro.obs.tracer.SpanSink` protocol: sinks and analyses that
observe the span stream *as it happens* and keep only constant-size
state.

Two modes, two guarantees:

- **Exact replay** (:class:`StubSink` / :class:`StubTrace`): finished
  spans are compacted to :class:`SpanStub` records — the eight fields
  the report analyses read, tags reduced to the terminal ``state`` —
  and the unchanged batch analytics run over the stub store.  Verdicts
  are **byte-identical** to the batch path (it *is* the batch code on
  the same values); memory is one compact slot-record per span instead
  of spans + tags + events + instants.
- **Online analytics** (:class:`StreamingAnalytics` over the
  primitives in :mod:`repro.obs.metrics` /
  :class:`~repro.obs.alerts.OnlineRuleEvaluator`): truly O(1) state per
  category — Welford stats, P² quantiles, running straggler flagging,
  peak-concurrency tracking — with documented tolerances
  (``tests/obs/test_online_stats.py``).  This is what the ≥1M-span
  memory gate in CI runs.

:class:`JsonlSpillSink` spills every finished span to segmented JSONL
files (rotation + retention), byte-compatible with
:func:`repro.obs.export.to_jsonl` records, so a constant-memory run
still leaves a trace that :func:`repro.obs.export.tracer_from_jsonl`
reloads losslessly.  :class:`TeeSink` fans the stream out to several
sinks (spill to disk *and* analyze online, in one pass).
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import re
import sys
import warnings
from typing import Iterable, Optional

from repro.obs.export import _dumps, instant_record, metric_record, span_record
from repro.obs.metrics import MetricsRegistry, P2Quantile, RunningStats
from repro.obs.tracer import SpanSink, Tracer

__all__ = [
    "SpanStub",
    "StubTrace",
    "StubSink",
    "JsonlSpillSink",
    "SpillCorruptionError",
    "SpillResumeMismatch",
    "TeeSink",
    "OnlineConcurrency",
    "OnlineDurationStats",
    "OnlineStragglers",
    "StreamingAnalytics",
    "replay_jsonl",
    "scan_spill",
    "tracer_from_segments",
    "truncate_spill",
]


# -- compact span store (exact mode) ----------------------------------------------


class SpanStub:
    """A finished (or drained-open) span compacted to its analysis fields.

    Everything :mod:`repro.obs.analyze`, :mod:`repro.obs.alerts` and
    :mod:`repro.report` read from a span survives: identity, hierarchy,
    classification, interval, and the terminal ``state`` tag
    (``failed_tasks`` counts it).  Free-form tags, point events and the
    back-reference to the tracer are dropped — that is where the memory
    goes in a real trace.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "component",
        "start",
        "end",
        "tags",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        component: str,
        start: float,
        end: Optional[float],
        state=None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = sys.intern(name)
        self.category = sys.intern(category)
        self.component = sys.intern(component)
        self.start = start
        self.end = end
        self.tags = {} if state is None else {"state": state}

    @classmethod
    def from_span(cls, span) -> "SpanStub":
        return cls(
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            category=span.category,
            component=span.component,
            start=span.start,
            end=span.end,
            state=span.tags.get("state"),
        )

    @classmethod
    def from_record(cls, record: dict) -> "SpanStub":
        """Build from one :func:`~repro.obs.export.span_record` dict."""
        end = record.get("t1")
        return cls(
            span_id=record["id"],
            parent_id=record.get("parent"),
            name=record["name"],
            category=record.get("cat", ""),
            component=record.get("comp", ""),
            start=float(record["t0"]),
            end=None if end is None else float(end),
            state=(record.get("tags") or {}).get("state"),
        )

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def overlaps(self, t0: float, t1: float) -> bool:
        end = self.end if self.end is not None else float("inf")
        return self.start <= t1 and end >= t0

    def __repr__(self) -> str:
        dur = f"{self.duration:.3f}s" if self.end is not None else "open"
        return (
            f"<SpanStub #{self.span_id} {self.category}:{self.name!r} "
            f"@{self.component} {dur}>"
        )


class StubTrace:
    """A Tracer-shaped view over a :class:`SpanStub` store.

    Quacks enough like a :class:`~repro.obs.tracer.Tracer` for
    :class:`~repro.obs.query.TraceQuery` and everything built on it —
    ``spans`` (id-ordered stubs), empty ``instants``, a metrics
    registry — while ``enabled = False`` keeps post-hoc passes (alert
    recording) from trying to write spans back.  This is how the
    ``--stream`` report path runs the *unchanged* batch analytics and
    still produces byte-identical verdicts.
    """

    enabled = False
    trace_kernel = False

    def __init__(self, spans=None, metrics: Optional[MetricsRegistry] = None):
        self.spans: list[SpanStub] = list(spans or [])
        self.instants: list = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def from_tracer(cls, tracer) -> "StubTrace":
        """Compact a retained in-memory trace (shares its registry)."""
        return cls(
            spans=[SpanStub.from_span(s) for s in tracer.spans],
            metrics=tracer.metrics,
        )

    @classmethod
    def from_jsonl(cls, lines: Iterable[str]) -> "StubTrace":
        """Stream-parse JSONL lines into a stub store.

        Accepts any iterable of lines (an open file streams without
        materializing the text); span records compact to stubs, metric
        records land in the registry, instants are skipped (no report
        analysis reads them).
        """
        from repro.obs.export import metric_from_record

        trace = cls()
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"line {lineno} is not valid JSON: {exc}"
                ) from exc
            kind = record.get("type")
            if kind == "span":
                trace.spans.append(SpanStub.from_record(record))
            elif kind == "metric":
                trace.metrics.register(
                    metric_from_record(record),
                    component=record.get("comp", ""),
                )
            elif kind != "instant":
                raise ValueError(f"line {lineno}: unknown record type {kind!r}")
        trace.spans.sort(key=lambda s: s.span_id)
        return trace

    @classmethod
    def from_jsonl_path(cls, path) -> "StubTrace":
        with open(path) as fh:
            return cls.from_jsonl(fh)

    def query(self):
        from repro.obs.query import TraceQuery

        return TraceQuery(self)

    def open_spans(self) -> list:
        return [s for s in self.spans if s.end is None]

    def __repr__(self) -> str:
        return f"<StubTrace spans={len(self.spans)} metrics={len(self.metrics)}>"


class StubSink(SpanSink):
    """Collect :class:`SpanStub` records as spans finish.

    The live-run counterpart of :meth:`StubTrace.from_tracer`: full
    :class:`~repro.obs.tracer.Span` objects (tags, events) become
    garbage as soon as the engine drops them, and only the compact stub
    survives.  ``close()`` drains still-open spans so end-of-run
    analyses see the same population the in-memory sink would.
    """

    def __init__(self):
        self.stubs: list[SpanStub] = []
        self._drained = False

    def on_finish(self, span) -> None:
        self.stubs.append(SpanStub.from_span(span))

    def close(self) -> None:
        if self._drained or self.tracer is None:
            return
        self._drained = True
        for span in self.tracer.open_spans():
            self.stubs.append(SpanStub.from_span(span))

    def trace(self) -> StubTrace:
        """An id-ordered :class:`StubTrace` over the collected stubs."""
        metrics = self.tracer.metrics if self.tracer is not None else None
        return StubTrace(
            spans=sorted(self.stubs, key=lambda s: s.span_id),
            metrics=metrics,
        )


# -- spill-to-disk sink ----------------------------------------------------------


class SpillCorruptionError(ValueError):
    """A spill directory is damaged beyond crash semantics.

    A SIGKILL can only tear the *tail* of the *active* segment (writes
    are sequential and finalized segments were fsynced); a hole or torn
    tail anywhere else means something other than a crash mangled the
    directory, and resuming over it would silently corrupt the trace.
    """


class SpillResumeMismatch(RuntimeError):
    """Resumed re-execution diverged from the bytes already on disk.

    Raised when the suppress-and-verify prefix hash of a resumed run
    does not match the surviving spill segments — the scenario is not
    deterministic (or the directory belongs to a different run), so the
    resume must not be trusted.
    """


_SEGMENT_RE = re.compile(r"^segment-(\d{5})\.jsonl(\.part)?$")


def _scan_segment_names(directory) -> list[tuple[int, str]]:
    """Sorted ``(index, filename)`` for every segment, oldest first."""
    out = []
    for name in os.listdir(str(directory)):
        m = _SEGMENT_RE.match(name)
        if m:
            out.append((int(m.group(1)), name))
    out.sort()
    return out


def scan_spill(directory) -> dict:
    """Inspect a spill directory without modifying it.

    Returns ``{"segments": [(idx, path, n_lines)], "records": total
    complete lines, "sha256": hash over the complete-line bytes in
    segment order, "torn_tail_bytes": bytes after the last newline of
    the final segment (0 when clean)}``.  A torn tail anywhere but the
    final segment raises :class:`SpillCorruptionError`, as does a gap
    in the segment index sequence.
    """
    directory = str(directory)
    names = _scan_segment_names(directory)
    for pos, (idx, _name) in enumerate(names):
        if idx != names[0][0] + pos:
            raise SpillCorruptionError(
                f"segment index gap in {directory!r}: {[n for _, n in names]}"
            )
    hasher = hashlib.sha256()
    segments = []
    records = 0
    torn_tail = 0
    for pos, (idx, name) in enumerate(names):
        path = os.path.join(directory, name)
        with open(path, "rb") as fh:
            data = fh.read()
        cut = data.rfind(b"\n") + 1  # 0 when no newline at all
        if cut != len(data):
            if pos != len(names) - 1:
                raise SpillCorruptionError(
                    f"torn tail in non-final segment {name!r}"
                )
            torn_tail = len(data) - cut
            data = data[:cut]
        n_lines = data.count(b"\n")
        hasher.update(data)
        records += n_lines
        segments.append((idx, path, n_lines))
    return {
        "segments": segments,
        "records": records,
        "sha256": hasher.hexdigest(),
        "torn_tail_bytes": torn_tail,
    }


def truncate_spill(directory, records: int) -> int:
    """Cut a spill directory back to its first ``records`` complete lines.

    Native checkpoint resume uses this to drop every record the crashed
    run emitted *after* its last snapshot's spill cursor (those instants
    will be re-simulated); segments past the cut are deleted, the
    boundary segment is truncated in place and fsynced.  Returns the
    number of lines dropped.  Raises :class:`SpillCorruptionError` when
    the directory holds fewer complete lines than ``records`` — the
    snapshot promised bytes the disk does not have.
    """
    if records < 0:
        raise ValueError("records must be >= 0")
    info = scan_spill(directory)
    if info["records"] < records:
        raise SpillCorruptionError(
            f"spill {str(directory)!r} holds {info['records']} records "
            f"but the snapshot cursor expects {records}"
        )
    dropped = info["records"] - records
    acc = 0
    for pos, (idx, path, n_lines) in enumerate(info["segments"]):
        if acc >= records:
            os.remove(path)
            continue
        if acc + n_lines > records:
            keep_lines = records - acc
            with open(path, "rb") as fh:
                data = fh.read()
            offset = 0
            for _ in range(keep_lines):
                offset = data.index(b"\n", offset) + 1
            with open(path, "r+b") as fh:
                fh.truncate(offset)
                fh.flush()
                os.fsync(fh.fileno())
        elif pos == len(info["segments"]) - 1 and info["torn_tail_bytes"]:
            # Keeping the whole final segment: still shear its torn tail.
            with open(path, "rb") as fh:
                data = fh.read()
            with open(path, "r+b") as fh:
                fh.truncate(len(data) - info["torn_tail_bytes"])
                fh.flush()
                os.fsync(fh.fileno())
        acc += n_lines
    _fsync_dir(str(directory))
    return dropped


def _fsync_dir(directory: str) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class JsonlSpillSink(SpanSink):
    """Spill finished spans to segmented JSONL files, crash-safely.

    Records are byte-identical to :func:`repro.obs.export.to_jsonl`
    lines (same dict shapes, same compact JSON encoding), written in
    event order: a span's line lands when it *finishes*, instants when
    they occur.  ``close()`` drains still-open spans (``"t1": null``)
    and appends the metric registry, so concatenating the segments and
    reloading through :func:`~repro.obs.export.tracer_from_jsonl`
    reproduces the trace exactly (the loader orders spans by id).

    Segments rotate every ``segment_records`` lines.  The **active**
    segment is written as ``segment-00000.jsonl.part``; on rotation (or
    ``close()``) it is flushed, fsynced, and atomically renamed to
    ``segment-00000.jsonl`` — so a ``.jsonl`` name is a *durability
    promise*: its bytes survived a crash.  A SIGKILL can lose only the
    buffered tail of the ``.part`` segment, which readers repair (the
    torn final line is dropped and reported, never raised on).  With
    ``retain_segments=N`` only the newest N survive — bounded *disk*,
    not just bounded memory, for week-long simulated runs where only
    the recent window matters.

    :meth:`reopen` resumes an interrupted spill: the surviving prefix
    is re-verified byte-for-byte (suppress-and-verify) while the
    resumed run replays it, then appending continues mid-segment.
    """

    def __init__(
        self,
        directory,
        segment_records: int = 100_000,
        retain_segments: Optional[int] = None,
    ):
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        if retain_segments is not None and retain_segments < 1:
            raise ValueError("retain_segments must be >= 1 (or None)")
        self.directory = str(directory)
        self.segment_records = int(segment_records)
        self.retain_segments = retain_segments
        os.makedirs(self.directory, exist_ok=True)
        self._fh = None
        self._segment_idx = -1
        self._records_in_segment = 0
        self._closed = False
        #: Totals over the sink's lifetime (rotation never resets them).
        self.total_records = 0
        # Resume (suppress-and-verify) state; see :meth:`reopen`.
        self._suppress_remaining = 0
        self._expected_sha: Optional[str] = None
        self._hasher = None
        #: Bytes dropped from a torn ``.part`` tail during reopen.
        self.repaired_tail_bytes = 0

    @classmethod
    def reopen(
        cls,
        directory,
        segment_records: int = 100_000,
        retain_segments: Optional[int] = None,
        verify_prefix: bool = True,
    ) -> "JsonlSpillSink":
        """Resume spilling into a directory a crashed run left behind.

        Repairs the torn tail of the final segment in place (truncating
        to the last complete line), then arms suppress-and-verify mode:
        the first N records written to the reopened sink — the resumed
        run deterministically re-emitting the prefix — are *not*
        re-written; they are hashed and compared against the surviving
        bytes, and :class:`SpillResumeMismatch` is raised the moment the
        replayed prefix diverges.  Record N+1 onward appends normally,
        continuing mid-segment.

        ``verify_prefix=False`` skips the suppression arming and
        appends from the first write — for native (state-restore)
        resumes that continue *mid-stream* instead of replaying from
        t=0, after :func:`truncate_spill` cut the directory back to the
        snapshot's cursor.
        """
        if retain_segments is not None:
            raise ValueError(
                "reopen() needs the full segment history to verify the "
                "prefix; retain_segments is not supported on resume"
            )
        sink = cls(directory, segment_records=segment_records)
        info = scan_spill(sink.directory)
        if info["torn_tail_bytes"]:
            idx, path, _n = info["segments"][-1]
            with open(path, "rb") as fh:
                data = fh.read()
            with open(path, "wb") as fh:
                fh.write(data[: len(data) - info["torn_tail_bytes"]])
                fh.flush()
                os.fsync(fh.fileno())
            sink.repaired_tail_bytes = info["torn_tail_bytes"]
        if info["segments"]:
            sink._segment_idx = info["segments"][-1][0]
            sink._records_in_segment = info["segments"][-1][2]
            sink.total_records = info["records"] if not verify_prefix else 0
        if not verify_prefix:
            return sink
        sink._suppress_remaining = info["records"]
        sink._expected_sha = info["sha256"]
        sink._hasher = hashlib.sha256()
        if sink._suppress_remaining == 0:
            sink._finish_suppression()
        return sink

    # -- segment bookkeeping -----------------------------------------------

    def _segment_path(self, idx: int) -> str:
        return os.path.join(self.directory, f"segment-{idx:05d}.jsonl")

    def _part_path(self, idx: int) -> str:
        return self._segment_path(idx) + ".part"

    def segments(self) -> list[str]:
        """Paths of the segments on disk, oldest first (incl. active)."""
        return [
            os.path.join(self.directory, name)
            for _idx, name in _scan_segment_names(self.directory)
        ]

    def cursor(self) -> dict:
        """Checkpointable position: total records + segment layout."""
        return {
            "records": self.total_records,
            "segment": self._segment_idx,
            "in_segment": self._records_in_segment,
        }

    def sync(self) -> None:
        """Flush and fsync the active segment (a durability point).

        The checkpoint coordinator calls this before writing a
        snapshot, so every record the snapshot's spill cursor counts is
        actually on disk when a later crash strikes.
        """
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def _finalize_active(self) -> None:
        """Promote the active ``.part`` to a durable ``.jsonl``."""
        idx = self._segment_idx
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            os.replace(self._part_path(idx), self._segment_path(idx))
            _fsync_dir(self.directory)
        elif idx >= 0 and os.path.exists(self._part_path(idx)):
            # Resumed sink that never wrote into its inherited .part.
            os.replace(self._part_path(idx), self._segment_path(idx))
            _fsync_dir(self.directory)

    def _rotate(self) -> None:
        self._finalize_active()
        self._segment_idx += 1
        self._records_in_segment = 0
        self._fh = open(self._part_path(self._segment_idx), "w")
        if self.retain_segments is not None:
            keep_from = max(0, self._segment_idx - self.retain_segments + 1)
            for idx, name in _scan_segment_names(self.directory):
                if idx < keep_from:
                    os.remove(os.path.join(self.directory, name))

    def _open_for_append(self) -> None:
        """Continue writing the inherited final segment after a resume."""
        idx = self._segment_idx
        if os.path.exists(self._segment_path(idx)):
            # Crash landed after finalization: demote back to active.
            os.replace(self._segment_path(idx), self._part_path(idx))
            _fsync_dir(self.directory)
        self._fh = open(self._part_path(idx), "a")

    def _finish_suppression(self) -> None:
        got = self._hasher.hexdigest() if self._hasher is not None else None
        expected = self._expected_sha
        self._suppress_remaining = 0
        self._hasher = None
        self._expected_sha = None
        if expected is not None and got != expected:
            raise SpillResumeMismatch(
                f"resumed run diverged from the spill on disk in "
                f"{self.directory!r}: prefix sha256 {got} != {expected}"
            )

    def _write(self, record: dict) -> None:
        if self._closed:
            raise RuntimeError("JsonlSpillSink is closed")
        if self._suppress_remaining > 0:
            self._hasher.update((_dumps(record) + "\n").encode())
            self.total_records += 1
            self._suppress_remaining -= 1
            if self._suppress_remaining == 0:
                self._finish_suppression()
            return
        if self._fh is None and self._records_in_segment > 0:
            # First post-resume record with room left mid-segment.
            if self._records_in_segment < self.segment_records:
                self._open_for_append()
            else:
                self._rotate()
        elif self._fh is None or self._records_in_segment >= self.segment_records:
            self._rotate()
        self._fh.write(_dumps(record))
        self._fh.write("\n")
        self._records_in_segment += 1
        self.total_records += 1

    # -- sink hooks ---------------------------------------------------------

    def on_finish(self, span) -> None:
        self._write(span_record(span))

    def on_instant(self, instant) -> None:
        self._write(instant_record(instant))

    def close(self) -> None:
        if self._closed:
            return
        if self.tracer is not None:
            for span in self.tracer.open_spans():
                self._write(span_record(span))
            for (comp, _name), metric in self.tracer.metrics.items():
                self._write(metric_record(comp, metric))
        self._finalize_active()
        self._closed = True

    def read_text(self) -> str:
        """Concatenated contents of the retained segments."""
        if self._fh is not None:
            self._fh.flush()
        parts = []
        for path in self.segments():
            with open(path) as fh:
                parts.append(fh.read())
        return "".join(parts)

    def __repr__(self) -> str:
        return (
            f"<JsonlSpillSink {self.directory!r} "
            f"segment={self._segment_idx} records={self.total_records}>"
        )


def _split_torn_tail(text: str) -> tuple[str, str]:
    """Split off a torn (incomplete) trailing line, if any.

    Returns ``(clean_text, torn_tail)``.  A trailing chunk without a
    newline that still parses as JSON is a record whose newline alone
    was lost — kept, not dropped.
    """
    if not text or text.endswith("\n"):
        return text, ""
    cut = text.rfind("\n") + 1
    tail = text[cut:]
    try:
        json.loads(tail)
    except json.JSONDecodeError:
        return text[:cut], tail
    return text + "\n", ""


def tracer_from_segments(directory, on_truncated=None) -> Tracer:
    """Reload a spill directory into an in-memory :class:`Tracer`.

    Tolerates the one kind of damage a crash can cause — a torn final
    line in the last (``.part``) segment: the partial line is dropped
    and *reported*, via ``on_truncated({"directory", "segment",
    "dropped_bytes"})`` when given, else a :class:`UserWarning`.
    Damage anywhere else still raises.
    """
    from repro.obs.export import tracer_from_jsonl

    directory = str(directory)
    names = _scan_segment_names(directory)
    parts = []
    for _idx, name in names:
        with open(os.path.join(directory, name)) as fh:
            parts.append(fh.read())
    if parts:
        clean, torn = _split_torn_tail(parts[-1])
        if torn:
            parts[-1] = clean
            info = {
                "directory": directory,
                "segment": names[-1][1],
                "dropped_bytes": len(torn),
            }
            if on_truncated is not None:
                on_truncated(info)
            else:
                warnings.warn(
                    f"dropped torn final line ({len(torn)} bytes) from "
                    f"{names[-1][1]} in {directory!r}",
                    stacklevel=2,
                )
    return tracer_from_jsonl("".join(parts))


class TeeSink(SpanSink):
    """Fan the span stream out to several sinks in order."""

    def __init__(self, *sinks: SpanSink):
        self.sinks = list(sinks)

    @property
    def spans(self):
        """Delegate to the first retained-span sink in the fanout, so a
        tee that includes an :class:`~repro.obs.tracer.InMemorySink`
        still serves ``tracer.spans`` (getattr sees the AttributeError
        as "not retained" when no inner sink keeps a list)."""
        for sink in self.sinks:
            spans = getattr(sink, "spans", None)
            if spans is not None:
                return spans
        raise AttributeError("no sink in this tee retains spans")

    @property
    def instants(self):
        for sink in self.sinks:
            instants = getattr(sink, "instants", None)
            if instants is not None:
                return instants
        raise AttributeError("no sink in this tee retains instants")

    def attach(self, tracer) -> None:
        self.tracer = tracer
        for sink in self.sinks:
            sink.attach(tracer)

    def on_start(self, span) -> None:
        for sink in self.sinks:
            sink.on_start(span)

    def on_finish(self, span) -> None:
        for sink in self.sinks:
            sink.on_finish(span)

    def on_instant(self, instant) -> None:
        for sink in self.sinks:
            sink.on_instant(instant)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# -- online analytics ------------------------------------------------------------


class OnlineConcurrency:
    """Constant-memory open-span concurrency tracking.

    Feed ``step(t, +1)`` at span start and ``step(t, -1)`` at span end,
    in time order.  Same-time deltas merge before sampling (the batch
    :meth:`~repro.obs.query.TraceQuery.concurrency` collapse), so
    ``peak`` / ``first_peak`` / ``last_peak`` match the batch series'
    ``peak_times`` convention exactly; the running integral gives
    time-averaged concurrency without retaining change points.
    """

    def __init__(self):
        self._level = 0.0
        self._pending_t: Optional[float] = None
        self._committed_t: Optional[float] = None
        self._committed_level = 0.0
        self._integral = 0.0
        self.t0: Optional[float] = None
        self.peak = 0.0
        self.first_peak: Optional[float] = None
        self.last_peak: Optional[float] = None

    def step(self, t: float, delta: float) -> None:
        t = float(t)
        if self._pending_t is not None and t < self._pending_t:
            raise ValueError(
                f"non-monotonic step: t={t} < pending t={self._pending_t}"
            )
        if self._pending_t is None:
            self.t0 = t
        elif t > self._pending_t:
            self._commit()
        self._pending_t = t
        self._level += delta

    def _commit(self) -> None:
        t, level = self._pending_t, self._level
        if self._committed_t is not None:
            self._integral += self._committed_level * (t - self._committed_t)
        self._committed_t = t
        self._committed_level = level
        if level > self.peak:
            self.peak = level
            self.first_peak = t
            self.last_peak = t
        elif level == self.peak and self.peak > 0:
            self.last_peak = t

    def flush(self) -> None:
        """Commit the trailing same-time batch (call before reading)."""
        if self._pending_t is not None and (
            self._committed_t is None or self._pending_t > self._committed_t
        ):
            self._commit()

    @property
    def current(self) -> float:
        return self._level

    def time_average(self, t_end: Optional[float] = None) -> float:
        self.flush()
        if self._committed_t is None or self.t0 is None:
            return 0.0
        integral = self._integral
        t_end = self._committed_t if t_end is None else float(t_end)
        if t_end > self._committed_t:
            integral += self._committed_level * (t_end - self._committed_t)
        span = t_end - self.t0
        return integral / span if span > 0 else self._committed_level

    def __repr__(self) -> str:
        return f"<OnlineConcurrency level={self._level} peak={self.peak}>"


class OnlineDurationStats:
    """Per-category duration statistics in O(categories) memory."""

    def __init__(self, quantiles: Iterable[float] = (0.5, 0.9, 0.99)):
        self.quantiles = tuple(sorted(set(float(q) for q in quantiles)))
        self._cats: dict[str, tuple] = {}

    def add(self, category: str, duration: float) -> None:
        entry = self._cats.get(category)
        if entry is None:
            entry = self._cats[category] = (
                RunningStats(),
                {p: P2Quantile(p) for p in self.quantiles},
            )
        stats, ests = entry
        stats.add(duration)
        for est in ests.values():
            est.add(duration)

    def stats(self, category: str) -> Optional[RunningStats]:
        entry = self._cats.get(category)
        return entry[0] if entry is not None else None

    def quantile(self, category: str, p: float) -> Optional[float]:
        entry = self._cats.get(category)
        if entry is None:
            return None
        est = entry[1].get(float(p))
        return est.value if est is not None else None

    def to_dict(self) -> dict:
        out = {}
        for category in sorted(self._cats):
            stats, ests = self._cats[category]
            doc = stats.to_dict()
            for p, est in ests.items():
                doc[f"p{int(round(p * 100))}"] = est.value
            out[category] = doc
        return out

    def __repr__(self) -> str:
        return f"<OnlineDurationStats categories={len(self._cats)}>"


class _StragglerGroup:
    __slots__ = ("n", "median", "absdev")

    def __init__(self):
        self.n = 0
        self.median = P2Quantile(0.5)
        self.absdev = P2Quantile(0.5)  # running estimate of the MAD


class OnlineStragglers:
    """Running median+MAD straggler flagging as spans close.

    The streaming analogue of
    :func:`repro.obs.analyze.find_stragglers`: group by ``(category,
    component)``, estimate the group median and the median absolute
    deviation with P² quantile trackers, and flag a closing span whose
    modified z-score ``excess / (1.4826 · MAD)`` exceeds ``threshold``
    (relative test when the MAD estimate is ~0, exactly like batch).
    Flags are *online decisions* — made against the estimates at close
    time, the way a live pager would — so early spans judge against
    less history than the batch pass uses; the equivalence tests bound
    the disagreement on controlled outlier injections.
    """

    def __init__(
        self,
        threshold: float = 3.5,
        rel_threshold: float = 0.5,
        min_group: int = 4,
        min_excess_s: float = 0.0,
        max_flagged: int = 1000,
    ):
        self.threshold = float(threshold)
        self.rel_threshold = float(rel_threshold)
        self.min_group = int(min_group)
        self.min_excess_s = float(min_excess_s)
        self.max_flagged = int(max_flagged)
        self._groups: dict[tuple, _StragglerGroup] = {}
        self._flagged: list = []

    def add(self, span) -> Optional[object]:
        """Observe one finished span; returns a Straggler when flagged."""
        from repro.obs.analyze import Straggler

        duration = span.end - span.start
        key = (span.category, span.component)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _StragglerGroup()
        group.median.add(duration)
        group.n += 1
        med = group.median.value
        group.absdev.add(abs(duration - med))
        if group.n < self.min_group:
            return None
        excess = duration - med
        if excess <= max(self.min_excess_s, 0.0):
            return None
        mad = group.absdev.value
        scale = 1.4826 * mad
        if scale > 1e-12:
            score = excess / scale
            if score <= self.threshold:
                return None
        else:
            if med <= 0 or excess / med <= self.rel_threshold:
                return None
            score = float("inf")
        straggler = Straggler(
            span_id=span.span_id,
            name=span.name,
            category=span.category,
            component=span.component,
            duration=duration,
            median=med,
            mad=mad,
            score=score,
        )
        self._flagged.append(straggler)
        if len(self._flagged) > 4 * self.max_flagged:
            self._flagged.sort(key=lambda s: (-s.excess, s.span_id))
            del self._flagged[self.max_flagged :]
        return straggler

    def result(self) -> list:
        """Flagged stragglers, worst excess first (batch sort order)."""
        out = sorted(self._flagged, key=lambda s: (-s.excess, s.span_id))
        return out[: self.max_flagged]

    def __repr__(self) -> str:
        return (
            f"<OnlineStragglers groups={len(self._groups)} "
            f"flagged={len(self._flagged)}>"
        )


class StreamingAnalytics(SpanSink):
    """One-pass run analytics as a span sink.

    Attach (alone or in a :class:`TeeSink`) and every quantity below is
    maintained incrementally, in memory bounded by the number of
    distinct categories — never by the number of spans:

    - per-category duration statistics (count/mean/min/max + P²
      quantiles) via :class:`OnlineDurationStats`;
    - straggler flags via :class:`OnlineStragglers`;
    - open-span concurrency (optionally restricted to one
      category/component) via :class:`OnlineConcurrency`;
    - SLO rules via :class:`~repro.obs.alerts.OnlineRuleEvaluator`,
      with the ``on_alert`` live-paging hook;
    - the run window and span/failure totals.

    ``summary()`` returns the whole state as a JSON-ready dict — the
    payload the CI memory-smoke artifact uploads.
    """

    def __init__(
        self,
        rules: Iterable = (),
        context: Optional[dict] = None,
        on_alert=None,
        concurrency_category: Optional[str] = None,
        concurrency_component: Optional[str] = None,
        quantiles: Iterable[float] = (0.5, 0.9, 0.99),
        straggler_kwargs: Optional[dict] = None,
    ):
        from repro.obs.alerts import OnlineRuleEvaluator

        self.durations = OnlineDurationStats(quantiles=quantiles)
        self.stragglers = OnlineStragglers(**(straggler_kwargs or {}))
        self.concurrency = OnlineConcurrency()
        self.evaluator = OnlineRuleEvaluator(
            list(rules), context=context, on_alert=on_alert
        )
        self._conc_cat = concurrency_category
        self._conc_comp = concurrency_component
        self.n_started = 0
        self.n_finished = 0
        self.n_failed = 0
        self.t_first: Optional[float] = None
        self.t_last: Optional[float] = None

    def _tracks(self, span) -> bool:
        if self._conc_cat is not None and span.category != self._conc_cat:
            return False
        if self._conc_comp is not None and span.component != self._conc_comp:
            return False
        return True

    def on_start(self, span) -> None:
        self.n_started += 1
        if self.t_first is None or span.start < self.t_first:
            self.t_first = span.start
        if self._tracks(span):
            self.concurrency.step(span.start, +1.0)
        self.evaluator.observe_start(span)

    def on_finish(self, span) -> None:
        self.n_finished += 1
        if self.t_last is None or span.end > self.t_last:
            self.t_last = span.end
        if str(span.tags.get("state", "")).upper() == "FAILED":
            self.n_failed += 1
        self.durations.add(span.category, span.end - span.start)
        self.stragglers.add(span)
        if self._tracks(span):
            self.concurrency.step(span.end, -1.0)
        self.evaluator.observe_finish(span)

    def finalize_alerts(self, context: Optional[dict] = None):
        """End-of-run :class:`~repro.obs.alerts.AlertReport`."""
        registry = self.tracer.metrics if self.tracer is not None else None
        return self.evaluator.finalize(context=context, registry=registry)

    @property
    def makespan(self) -> float:
        if self.t_first is None or self.t_last is None:
            return 0.0
        return self.t_last - self.t_first

    def summary(self) -> dict:
        self.concurrency.flush()
        doc = {
            "spans_started": self.n_started,
            "spans_finished": self.n_finished,
            "failed": self.n_failed,
            "window": [self.t_first or 0.0, self.t_last or 0.0],
            "makespan": self.makespan,
            "concurrency": {
                "peak": self.concurrency.peak,
                "first_peak": self.concurrency.first_peak,
                "last_peak": self.concurrency.last_peak,
                "time_average": self.concurrency.time_average(self.t_last),
            },
            "categories": self.durations.to_dict(),
            "stragglers": [s.to_dict() for s in self.stragglers.result()[:10]],
        }
        if self.evaluator.rules:
            try:
                doc["alerts"] = self.finalize_alerts().to_dict()
            except Exception as exc:  # unresolvable rule: report, don't die
                doc["alerts"] = {"error": str(exc)}
        return doc

    def __repr__(self) -> str:
        return (
            f"<StreamingAnalytics started={self.n_started} "
            f"finished={self.n_finished}>"
        )


# -- trace replay ----------------------------------------------------------------


def replay_jsonl(lines: Iterable[str], *sinks: SpanSink, on_truncated=None) -> int:
    """Replay a JSONL trace through sinks as a live event stream.

    Span records (id order = start order in an exported trace) are
    re-interleaved into lifecycle order: each span's ``on_start`` fires
    in start order, and its ``on_finish`` fires when simulated time
    passes its end — exactly the callback sequence a live run would
    have produced.  A heap of open spans keyed by end time does the
    interleaving; memory is O(max concurrently open), not O(trace).

    A torn *final* line (the tail a crashed writer left behind) is
    skipped and reported — through ``on_truncated({"lineno",
    "dropped_bytes"})`` when given, else a :class:`UserWarning`; a
    malformed line anywhere *before* the end still raises
    ``json.JSONDecodeError`` (that is corruption, not a crash).

    Returns the number of spans replayed.  Instants and metric records
    are skipped (replay targets span analytics); ``close()`` is called
    on every sink at the end.
    """
    open_heap: list[tuple] = []  # (end, span_id, stub)
    n = 0

    def drain(up_to: float) -> None:
        while open_heap and open_heap[0][0] <= up_to:
            _, _, stub = heapq.heappop(open_heap)
            for sink in sinks:
                sink.on_finish(stub)

    pending_error = None  # (lineno, raw line, exception)
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        if pending_error is not None:
            # A later line exists, so the bad line was not a torn tail.
            raise pending_error[2]
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            pending_error = (lineno, line, exc)
            continue
        if record.get("type") != "span":
            continue
        stub = SpanStub.from_record(record)
        n += 1
        drain(stub.start)
        for sink in sinks:
            sink.on_start(stub)
        if stub.end is not None:
            heapq.heappush(open_heap, (stub.end, stub.span_id, stub))
    if pending_error is not None:
        info = {
            "lineno": pending_error[0],
            "dropped_bytes": len(pending_error[1]),
        }
        if on_truncated is not None:
            on_truncated(info)
        else:
            warnings.warn(
                f"dropped torn final line {info['lineno']} "
                f"({info['dropped_bytes']} bytes) during replay",
                stacklevel=2,
            )
    drain(float("inf"))
    for sink in sinks:
        sink.close()
    return n
