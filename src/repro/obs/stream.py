"""Constant-memory streaming observability.

The in-memory :class:`~repro.obs.tracer.InMemorySink` retains every
span for the life of the run — exactly right for the paper-scale
scenarios, and an OOM at the million-task open-arrival scale the
roadmap targets.  This module is the other half of the
:class:`~repro.obs.tracer.SpanSink` protocol: sinks and analyses that
observe the span stream *as it happens* and keep only constant-size
state.

Two modes, two guarantees:

- **Exact replay** (:class:`StubSink` / :class:`StubTrace`): finished
  spans are compacted to :class:`SpanStub` records — the eight fields
  the report analyses read, tags reduced to the terminal ``state`` —
  and the unchanged batch analytics run over the stub store.  Verdicts
  are **byte-identical** to the batch path (it *is* the batch code on
  the same values); memory is one compact slot-record per span instead
  of spans + tags + events + instants.
- **Online analytics** (:class:`StreamingAnalytics` over the
  primitives in :mod:`repro.obs.metrics` /
  :class:`~repro.obs.alerts.OnlineRuleEvaluator`): truly O(1) state per
  category — Welford stats, P² quantiles, running straggler flagging,
  peak-concurrency tracking — with documented tolerances
  (``tests/obs/test_online_stats.py``).  This is what the ≥1M-span
  memory gate in CI runs.

:class:`JsonlSpillSink` spills every finished span to segmented JSONL
files (rotation + retention), byte-compatible with
:func:`repro.obs.export.to_jsonl` records, so a constant-memory run
still leaves a trace that :func:`repro.obs.export.tracer_from_jsonl`
reloads losslessly.  :class:`TeeSink` fans the stream out to several
sinks (spill to disk *and* analyze online, in one pass).
"""

from __future__ import annotations

import heapq
import json
import os
import sys
from typing import Iterable, Optional

from repro.obs.export import _dumps, instant_record, metric_record, span_record
from repro.obs.metrics import MetricsRegistry, P2Quantile, RunningStats
from repro.obs.tracer import SpanSink, Tracer

__all__ = [
    "SpanStub",
    "StubTrace",
    "StubSink",
    "JsonlSpillSink",
    "TeeSink",
    "OnlineConcurrency",
    "OnlineDurationStats",
    "OnlineStragglers",
    "StreamingAnalytics",
    "replay_jsonl",
    "tracer_from_segments",
]


# -- compact span store (exact mode) ----------------------------------------------


class SpanStub:
    """A finished (or drained-open) span compacted to its analysis fields.

    Everything :mod:`repro.obs.analyze`, :mod:`repro.obs.alerts` and
    :mod:`repro.report` read from a span survives: identity, hierarchy,
    classification, interval, and the terminal ``state`` tag
    (``failed_tasks`` counts it).  Free-form tags, point events and the
    back-reference to the tracer are dropped — that is where the memory
    goes in a real trace.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "component",
        "start",
        "end",
        "tags",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        component: str,
        start: float,
        end: Optional[float],
        state=None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = sys.intern(name)
        self.category = sys.intern(category)
        self.component = sys.intern(component)
        self.start = start
        self.end = end
        self.tags = {} if state is None else {"state": state}

    @classmethod
    def from_span(cls, span) -> "SpanStub":
        return cls(
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            category=span.category,
            component=span.component,
            start=span.start,
            end=span.end,
            state=span.tags.get("state"),
        )

    @classmethod
    def from_record(cls, record: dict) -> "SpanStub":
        """Build from one :func:`~repro.obs.export.span_record` dict."""
        end = record.get("t1")
        return cls(
            span_id=record["id"],
            parent_id=record.get("parent"),
            name=record["name"],
            category=record.get("cat", ""),
            component=record.get("comp", ""),
            start=float(record["t0"]),
            end=None if end is None else float(end),
            state=(record.get("tags") or {}).get("state"),
        )

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def overlaps(self, t0: float, t1: float) -> bool:
        end = self.end if self.end is not None else float("inf")
        return self.start <= t1 and end >= t0

    def __repr__(self) -> str:
        dur = f"{self.duration:.3f}s" if self.end is not None else "open"
        return (
            f"<SpanStub #{self.span_id} {self.category}:{self.name!r} "
            f"@{self.component} {dur}>"
        )


class StubTrace:
    """A Tracer-shaped view over a :class:`SpanStub` store.

    Quacks enough like a :class:`~repro.obs.tracer.Tracer` for
    :class:`~repro.obs.query.TraceQuery` and everything built on it —
    ``spans`` (id-ordered stubs), empty ``instants``, a metrics
    registry — while ``enabled = False`` keeps post-hoc passes (alert
    recording) from trying to write spans back.  This is how the
    ``--stream`` report path runs the *unchanged* batch analytics and
    still produces byte-identical verdicts.
    """

    enabled = False
    trace_kernel = False

    def __init__(self, spans=None, metrics: Optional[MetricsRegistry] = None):
        self.spans: list[SpanStub] = list(spans or [])
        self.instants: list = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def from_tracer(cls, tracer) -> "StubTrace":
        """Compact a retained in-memory trace (shares its registry)."""
        return cls(
            spans=[SpanStub.from_span(s) for s in tracer.spans],
            metrics=tracer.metrics,
        )

    @classmethod
    def from_jsonl(cls, lines: Iterable[str]) -> "StubTrace":
        """Stream-parse JSONL lines into a stub store.

        Accepts any iterable of lines (an open file streams without
        materializing the text); span records compact to stubs, metric
        records land in the registry, instants are skipped (no report
        analysis reads them).
        """
        from repro.obs.export import metric_from_record

        trace = cls()
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"line {lineno} is not valid JSON: {exc}"
                ) from exc
            kind = record.get("type")
            if kind == "span":
                trace.spans.append(SpanStub.from_record(record))
            elif kind == "metric":
                trace.metrics.register(
                    metric_from_record(record),
                    component=record.get("comp", ""),
                )
            elif kind != "instant":
                raise ValueError(f"line {lineno}: unknown record type {kind!r}")
        trace.spans.sort(key=lambda s: s.span_id)
        return trace

    @classmethod
    def from_jsonl_path(cls, path) -> "StubTrace":
        with open(path) as fh:
            return cls.from_jsonl(fh)

    def query(self):
        from repro.obs.query import TraceQuery

        return TraceQuery(self)

    def open_spans(self) -> list:
        return [s for s in self.spans if s.end is None]

    def __repr__(self) -> str:
        return f"<StubTrace spans={len(self.spans)} metrics={len(self.metrics)}>"


class StubSink(SpanSink):
    """Collect :class:`SpanStub` records as spans finish.

    The live-run counterpart of :meth:`StubTrace.from_tracer`: full
    :class:`~repro.obs.tracer.Span` objects (tags, events) become
    garbage as soon as the engine drops them, and only the compact stub
    survives.  ``close()`` drains still-open spans so end-of-run
    analyses see the same population the in-memory sink would.
    """

    def __init__(self):
        self.stubs: list[SpanStub] = []
        self._drained = False

    def on_finish(self, span) -> None:
        self.stubs.append(SpanStub.from_span(span))

    def close(self) -> None:
        if self._drained or self.tracer is None:
            return
        self._drained = True
        for span in self.tracer.open_spans():
            self.stubs.append(SpanStub.from_span(span))

    def trace(self) -> StubTrace:
        """An id-ordered :class:`StubTrace` over the collected stubs."""
        metrics = self.tracer.metrics if self.tracer is not None else None
        return StubTrace(
            spans=sorted(self.stubs, key=lambda s: s.span_id),
            metrics=metrics,
        )


# -- spill-to-disk sink ----------------------------------------------------------


class JsonlSpillSink(SpanSink):
    """Spill finished spans to segmented JSONL files.

    Records are byte-identical to :func:`repro.obs.export.to_jsonl`
    lines (same dict shapes, same compact JSON encoding), written in
    event order: a span's line lands when it *finishes*, instants when
    they occur.  ``close()`` drains still-open spans (``"t1": null``)
    and appends the metric registry, so concatenating the segments and
    reloading through :func:`~repro.obs.export.tracer_from_jsonl`
    reproduces the trace exactly (the loader orders spans by id).

    Segments rotate every ``segment_records`` lines as
    ``segment-00000.jsonl``, ``segment-00001.jsonl``, …; with
    ``retain_segments=N`` only the newest N survive — bounded *disk*,
    not just bounded memory, for week-long simulated runs where only
    the recent window matters.
    """

    def __init__(
        self,
        directory,
        segment_records: int = 100_000,
        retain_segments: Optional[int] = None,
    ):
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        if retain_segments is not None and retain_segments < 1:
            raise ValueError("retain_segments must be >= 1 (or None)")
        self.directory = str(directory)
        self.segment_records = int(segment_records)
        self.retain_segments = retain_segments
        os.makedirs(self.directory, exist_ok=True)
        self._fh = None
        self._segment_idx = -1
        self._records_in_segment = 0
        self._closed = False
        #: Totals over the sink's lifetime (rotation never resets them).
        self.total_records = 0

    # -- segment bookkeeping -----------------------------------------------

    def _segment_path(self, idx: int) -> str:
        return os.path.join(self.directory, f"segment-{idx:05d}.jsonl")

    def segments(self) -> list[str]:
        """Paths of the segments currently on disk, oldest first."""
        names = sorted(
            n
            for n in os.listdir(self.directory)
            if n.startswith("segment-") and n.endswith(".jsonl")
        )
        return [os.path.join(self.directory, n) for n in names]

    def _rotate(self) -> None:
        if self._fh is not None:
            self._fh.close()
        self._segment_idx += 1
        self._records_in_segment = 0
        self._fh = open(self._segment_path(self._segment_idx), "w")
        if self.retain_segments is not None:
            keep = {
                self._segment_path(i)
                for i in range(
                    max(0, self._segment_idx - self.retain_segments + 1),
                    self._segment_idx + 1,
                )
            }
            for path in self.segments():
                if path not in keep:
                    os.remove(path)

    def _write(self, record: dict) -> None:
        if self._closed:
            raise RuntimeError("JsonlSpillSink is closed")
        if self._fh is None or self._records_in_segment >= self.segment_records:
            self._rotate()
        self._fh.write(_dumps(record))
        self._fh.write("\n")
        self._records_in_segment += 1
        self.total_records += 1

    # -- sink hooks ---------------------------------------------------------

    def on_finish(self, span) -> None:
        self._write(span_record(span))

    def on_instant(self, instant) -> None:
        self._write(instant_record(instant))

    def close(self) -> None:
        if self._closed:
            return
        if self.tracer is not None:
            for span in self.tracer.open_spans():
                self._write(span_record(span))
            for (comp, _name), metric in self.tracer.metrics.items():
                self._write(metric_record(comp, metric))
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self._closed = True

    def read_text(self) -> str:
        """Concatenated contents of the retained segments."""
        parts = []
        for path in self.segments():
            with open(path) as fh:
                parts.append(fh.read())
        return "".join(parts)

    def __repr__(self) -> str:
        return (
            f"<JsonlSpillSink {self.directory!r} "
            f"segment={self._segment_idx} records={self.total_records}>"
        )


def tracer_from_segments(directory) -> Tracer:
    """Reload a spill directory into an in-memory :class:`Tracer`."""
    from repro.obs.export import tracer_from_jsonl

    parts = []
    names = sorted(
        n
        for n in os.listdir(str(directory))
        if n.startswith("segment-") and n.endswith(".jsonl")
    )
    for name in names:
        with open(os.path.join(str(directory), name)) as fh:
            parts.append(fh.read())
    return tracer_from_jsonl("".join(parts))


class TeeSink(SpanSink):
    """Fan the span stream out to several sinks in order."""

    def __init__(self, *sinks: SpanSink):
        self.sinks = list(sinks)

    def attach(self, tracer) -> None:
        self.tracer = tracer
        for sink in self.sinks:
            sink.attach(tracer)

    def on_start(self, span) -> None:
        for sink in self.sinks:
            sink.on_start(span)

    def on_finish(self, span) -> None:
        for sink in self.sinks:
            sink.on_finish(span)

    def on_instant(self, instant) -> None:
        for sink in self.sinks:
            sink.on_instant(instant)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# -- online analytics ------------------------------------------------------------


class OnlineConcurrency:
    """Constant-memory open-span concurrency tracking.

    Feed ``step(t, +1)`` at span start and ``step(t, -1)`` at span end,
    in time order.  Same-time deltas merge before sampling (the batch
    :meth:`~repro.obs.query.TraceQuery.concurrency` collapse), so
    ``peak`` / ``first_peak`` / ``last_peak`` match the batch series'
    ``peak_times`` convention exactly; the running integral gives
    time-averaged concurrency without retaining change points.
    """

    def __init__(self):
        self._level = 0.0
        self._pending_t: Optional[float] = None
        self._committed_t: Optional[float] = None
        self._committed_level = 0.0
        self._integral = 0.0
        self.t0: Optional[float] = None
        self.peak = 0.0
        self.first_peak: Optional[float] = None
        self.last_peak: Optional[float] = None

    def step(self, t: float, delta: float) -> None:
        t = float(t)
        if self._pending_t is not None and t < self._pending_t:
            raise ValueError(
                f"non-monotonic step: t={t} < pending t={self._pending_t}"
            )
        if self._pending_t is None:
            self.t0 = t
        elif t > self._pending_t:
            self._commit()
        self._pending_t = t
        self._level += delta

    def _commit(self) -> None:
        t, level = self._pending_t, self._level
        if self._committed_t is not None:
            self._integral += self._committed_level * (t - self._committed_t)
        self._committed_t = t
        self._committed_level = level
        if level > self.peak:
            self.peak = level
            self.first_peak = t
            self.last_peak = t
        elif level == self.peak and self.peak > 0:
            self.last_peak = t

    def flush(self) -> None:
        """Commit the trailing same-time batch (call before reading)."""
        if self._pending_t is not None and (
            self._committed_t is None or self._pending_t > self._committed_t
        ):
            self._commit()

    @property
    def current(self) -> float:
        return self._level

    def time_average(self, t_end: Optional[float] = None) -> float:
        self.flush()
        if self._committed_t is None or self.t0 is None:
            return 0.0
        integral = self._integral
        t_end = self._committed_t if t_end is None else float(t_end)
        if t_end > self._committed_t:
            integral += self._committed_level * (t_end - self._committed_t)
        span = t_end - self.t0
        return integral / span if span > 0 else self._committed_level

    def __repr__(self) -> str:
        return f"<OnlineConcurrency level={self._level} peak={self.peak}>"


class OnlineDurationStats:
    """Per-category duration statistics in O(categories) memory."""

    def __init__(self, quantiles: Iterable[float] = (0.5, 0.9, 0.99)):
        self.quantiles = tuple(sorted(set(float(q) for q in quantiles)))
        self._cats: dict[str, tuple] = {}

    def add(self, category: str, duration: float) -> None:
        entry = self._cats.get(category)
        if entry is None:
            entry = self._cats[category] = (
                RunningStats(),
                {p: P2Quantile(p) for p in self.quantiles},
            )
        stats, ests = entry
        stats.add(duration)
        for est in ests.values():
            est.add(duration)

    def stats(self, category: str) -> Optional[RunningStats]:
        entry = self._cats.get(category)
        return entry[0] if entry is not None else None

    def quantile(self, category: str, p: float) -> Optional[float]:
        entry = self._cats.get(category)
        if entry is None:
            return None
        est = entry[1].get(float(p))
        return est.value if est is not None else None

    def to_dict(self) -> dict:
        out = {}
        for category in sorted(self._cats):
            stats, ests = self._cats[category]
            doc = stats.to_dict()
            for p, est in ests.items():
                doc[f"p{int(round(p * 100))}"] = est.value
            out[category] = doc
        return out

    def __repr__(self) -> str:
        return f"<OnlineDurationStats categories={len(self._cats)}>"


class _StragglerGroup:
    __slots__ = ("n", "median", "absdev")

    def __init__(self):
        self.n = 0
        self.median = P2Quantile(0.5)
        self.absdev = P2Quantile(0.5)  # running estimate of the MAD


class OnlineStragglers:
    """Running median+MAD straggler flagging as spans close.

    The streaming analogue of
    :func:`repro.obs.analyze.find_stragglers`: group by ``(category,
    component)``, estimate the group median and the median absolute
    deviation with P² quantile trackers, and flag a closing span whose
    modified z-score ``excess / (1.4826 · MAD)`` exceeds ``threshold``
    (relative test when the MAD estimate is ~0, exactly like batch).
    Flags are *online decisions* — made against the estimates at close
    time, the way a live pager would — so early spans judge against
    less history than the batch pass uses; the equivalence tests bound
    the disagreement on controlled outlier injections.
    """

    def __init__(
        self,
        threshold: float = 3.5,
        rel_threshold: float = 0.5,
        min_group: int = 4,
        min_excess_s: float = 0.0,
        max_flagged: int = 1000,
    ):
        self.threshold = float(threshold)
        self.rel_threshold = float(rel_threshold)
        self.min_group = int(min_group)
        self.min_excess_s = float(min_excess_s)
        self.max_flagged = int(max_flagged)
        self._groups: dict[tuple, _StragglerGroup] = {}
        self._flagged: list = []

    def add(self, span) -> Optional[object]:
        """Observe one finished span; returns a Straggler when flagged."""
        from repro.obs.analyze import Straggler

        duration = span.end - span.start
        key = (span.category, span.component)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _StragglerGroup()
        group.median.add(duration)
        group.n += 1
        med = group.median.value
        group.absdev.add(abs(duration - med))
        if group.n < self.min_group:
            return None
        excess = duration - med
        if excess <= max(self.min_excess_s, 0.0):
            return None
        mad = group.absdev.value
        scale = 1.4826 * mad
        if scale > 1e-12:
            score = excess / scale
            if score <= self.threshold:
                return None
        else:
            if med <= 0 or excess / med <= self.rel_threshold:
                return None
            score = float("inf")
        straggler = Straggler(
            span_id=span.span_id,
            name=span.name,
            category=span.category,
            component=span.component,
            duration=duration,
            median=med,
            mad=mad,
            score=score,
        )
        self._flagged.append(straggler)
        if len(self._flagged) > 4 * self.max_flagged:
            self._flagged.sort(key=lambda s: (-s.excess, s.span_id))
            del self._flagged[self.max_flagged :]
        return straggler

    def result(self) -> list:
        """Flagged stragglers, worst excess first (batch sort order)."""
        out = sorted(self._flagged, key=lambda s: (-s.excess, s.span_id))
        return out[: self.max_flagged]

    def __repr__(self) -> str:
        return (
            f"<OnlineStragglers groups={len(self._groups)} "
            f"flagged={len(self._flagged)}>"
        )


class StreamingAnalytics(SpanSink):
    """One-pass run analytics as a span sink.

    Attach (alone or in a :class:`TeeSink`) and every quantity below is
    maintained incrementally, in memory bounded by the number of
    distinct categories — never by the number of spans:

    - per-category duration statistics (count/mean/min/max + P²
      quantiles) via :class:`OnlineDurationStats`;
    - straggler flags via :class:`OnlineStragglers`;
    - open-span concurrency (optionally restricted to one
      category/component) via :class:`OnlineConcurrency`;
    - SLO rules via :class:`~repro.obs.alerts.OnlineRuleEvaluator`,
      with the ``on_alert`` live-paging hook;
    - the run window and span/failure totals.

    ``summary()`` returns the whole state as a JSON-ready dict — the
    payload the CI memory-smoke artifact uploads.
    """

    def __init__(
        self,
        rules: Iterable = (),
        context: Optional[dict] = None,
        on_alert=None,
        concurrency_category: Optional[str] = None,
        concurrency_component: Optional[str] = None,
        quantiles: Iterable[float] = (0.5, 0.9, 0.99),
        straggler_kwargs: Optional[dict] = None,
    ):
        from repro.obs.alerts import OnlineRuleEvaluator

        self.durations = OnlineDurationStats(quantiles=quantiles)
        self.stragglers = OnlineStragglers(**(straggler_kwargs or {}))
        self.concurrency = OnlineConcurrency()
        self.evaluator = OnlineRuleEvaluator(
            list(rules), context=context, on_alert=on_alert
        )
        self._conc_cat = concurrency_category
        self._conc_comp = concurrency_component
        self.n_started = 0
        self.n_finished = 0
        self.n_failed = 0
        self.t_first: Optional[float] = None
        self.t_last: Optional[float] = None

    def _tracks(self, span) -> bool:
        if self._conc_cat is not None and span.category != self._conc_cat:
            return False
        if self._conc_comp is not None and span.component != self._conc_comp:
            return False
        return True

    def on_start(self, span) -> None:
        self.n_started += 1
        if self.t_first is None or span.start < self.t_first:
            self.t_first = span.start
        if self._tracks(span):
            self.concurrency.step(span.start, +1.0)
        self.evaluator.observe_start(span)

    def on_finish(self, span) -> None:
        self.n_finished += 1
        if self.t_last is None or span.end > self.t_last:
            self.t_last = span.end
        if str(span.tags.get("state", "")).upper() == "FAILED":
            self.n_failed += 1
        self.durations.add(span.category, span.end - span.start)
        self.stragglers.add(span)
        if self._tracks(span):
            self.concurrency.step(span.end, -1.0)
        self.evaluator.observe_finish(span)

    def finalize_alerts(self, context: Optional[dict] = None):
        """End-of-run :class:`~repro.obs.alerts.AlertReport`."""
        registry = self.tracer.metrics if self.tracer is not None else None
        return self.evaluator.finalize(context=context, registry=registry)

    @property
    def makespan(self) -> float:
        if self.t_first is None or self.t_last is None:
            return 0.0
        return self.t_last - self.t_first

    def summary(self) -> dict:
        self.concurrency.flush()
        doc = {
            "spans_started": self.n_started,
            "spans_finished": self.n_finished,
            "failed": self.n_failed,
            "window": [self.t_first or 0.0, self.t_last or 0.0],
            "makespan": self.makespan,
            "concurrency": {
                "peak": self.concurrency.peak,
                "first_peak": self.concurrency.first_peak,
                "last_peak": self.concurrency.last_peak,
                "time_average": self.concurrency.time_average(self.t_last),
            },
            "categories": self.durations.to_dict(),
            "stragglers": [s.to_dict() for s in self.stragglers.result()[:10]],
        }
        if self.evaluator.rules:
            try:
                doc["alerts"] = self.finalize_alerts().to_dict()
            except Exception as exc:  # unresolvable rule: report, don't die
                doc["alerts"] = {"error": str(exc)}
        return doc

    def __repr__(self) -> str:
        return (
            f"<StreamingAnalytics started={self.n_started} "
            f"finished={self.n_finished}>"
        )


# -- trace replay ----------------------------------------------------------------


def replay_jsonl(lines: Iterable[str], *sinks: SpanSink) -> int:
    """Replay a JSONL trace through sinks as a live event stream.

    Span records (id order = start order in an exported trace) are
    re-interleaved into lifecycle order: each span's ``on_start`` fires
    in start order, and its ``on_finish`` fires when simulated time
    passes its end — exactly the callback sequence a live run would
    have produced.  A heap of open spans keyed by end time does the
    interleaving; memory is O(max concurrently open), not O(trace).

    Returns the number of spans replayed.  Instants and metric records
    are skipped (replay targets span analytics); ``close()`` is called
    on every sink at the end.
    """
    open_heap: list[tuple] = []  # (end, span_id, stub)
    n = 0

    def drain(up_to: float) -> None:
        while open_heap and open_heap[0][0] <= up_to:
            _, _, stub = heapq.heappop(open_heap)
            for sink in sinks:
                sink.on_finish(stub)

    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") != "span":
            continue
        stub = SpanStub.from_record(record)
        n += 1
        drain(stub.start)
        for sink in sinks:
            sink.on_start(stub)
        if stub.end is not None:
            heapq.heappush(open_heap, (stub.end, stub.span_id, stub))
    drain(float("inf"))
    for sink in sinks:
        sink.close()
    return n
