"""Metric primitives shared by every substrate layer.

This module is the *single* implementation of time-series accounting in
:mod:`repro`.  :mod:`repro.simkernel.monitor` re-exports these classes
under their historical names (``TimeSeriesMonitor`` is :class:`Gauge`),
so the kernel, the cluster, the EnTK agent and the benchmarks all
record into one family of metric objects that a
:class:`MetricsRegistry` can enumerate and export.

- :class:`Gauge` — a piecewise-constant signal over simulated time with
  integration, resampling and time averages (concurrency curves, queue
  lengths — the Fig 5 quantities).
- :class:`Counter` — a monotonically non-decreasing gauge (cumulative
  scheduled/launched/completed counts; throughputs are its slopes).
- :class:`UtilizationTracker` — busy-interval accounting against a
  fixed capacity (the Fig 4 "resource utilization").
- :class:`MetricsRegistry` — per-component, get-or-create store of the
  above, exportable as plain dicts.
"""

from __future__ import annotations

import bisect
from typing import Optional

import numpy as np


class Gauge:
    """Records a piecewise-constant signal over simulated time.

    The signal holds each recorded value until the next record.  All
    derived statistics (time average, integral, resampling) treat it as
    a right-open step function.
    """

    kind = "gauge"

    def __init__(self, name: str = "", initial: float = 0.0, t0: float = 0.0):
        self.name = name
        self.times: list[float] = [t0]
        self.values: list[float] = [float(initial)]

    def record(self, t: float, value: float) -> None:
        """Record that the signal equals ``value`` from time ``t`` on."""
        if t < self.times[-1]:
            raise ValueError(
                f"Non-monotonic record: t={t} < last t={self.times[-1]}"
            )
        if t == self.times[-1]:
            self.values[-1] = float(value)
        else:
            self.times.append(float(t))
            self.values.append(float(value))

    # ``set`` reads better at metric call sites; ``record`` is the
    # historical monitor name.
    set = record

    def increment(self, t: float, delta: float = 1.0) -> None:
        """Record ``current + delta`` at time ``t``."""
        self.record(t, self.values[-1] + delta)

    @property
    def current(self) -> float:
        return self.values[-1]

    @property
    def peak(self) -> float:
        return max(self.values)

    def value_at(self, t: float) -> float:
        """Signal value at time ``t`` (last record at or before ``t``)."""
        idx = bisect.bisect_right(self.times, t) - 1
        if idx < 0:
            raise ValueError(f"t={t} precedes first record {self.times[0]}")
        return self.values[idx]

    def integral(self, t_end: Optional[float] = None) -> float:
        """Integral of the step function from first record to ``t_end``.

        ``t_end`` may fall before the last record; segments past it
        contribute nothing.
        """
        t_end = self.times[-1] if t_end is None else t_end
        ts = np.asarray(self.times)
        vs = np.asarray(self.values)
        seg_ends = np.minimum(np.append(ts[1:], max(t_end, ts[-1])), t_end)
        widths = np.clip(seg_ends - ts, 0.0, None)
        return float(np.dot(widths, vs))

    def time_average(self, t_end: Optional[float] = None) -> float:
        """Time-weighted mean of the signal."""
        t_end = self.times[-1] if t_end is None else t_end
        span = t_end - self.times[0]
        if span <= 0:
            return self.values[0]
        return self.integral(t_end) / span

    def resample(self, n: int = 200, t_end: Optional[float] = None):
        """Return ``(times, values)`` arrays sampled on a uniform grid."""
        t_end = self.times[-1] if t_end is None else t_end
        grid = np.linspace(self.times[0], t_end, n)
        idx = np.searchsorted(self.times, grid, side="right") - 1
        idx = np.clip(idx, 0, len(self.values) - 1)
        return grid, np.asarray(self.values)[idx]

    def series(self) -> tuple:
        """The raw ``(times, values)`` change points as tuples."""
        return tuple(self.times), tuple(self.values)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "times": list(self.times),
            "values": list(self.values),
        }

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} points={len(self.times)} "
            f"current={self.current}>"
        )


class Counter(Gauge):
    """A gauge that can only go up — cumulative event counts.

    Throughputs (Fig 5's 269 tasks/s and 51 tasks/s) are slopes of
    counters: :meth:`rate` over a window.
    """

    kind = "counter"

    def record(self, t: float, value: float) -> None:
        if value < self.values[-1] - 1e-12:
            raise ValueError(
                f"Counter {self.name!r} cannot decrease: "
                f"{value} < {self.values[-1]}"
            )
        super().record(t, value)

    set = record

    def inc(self, t: float, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("Counter increments must be non-negative")
        self.increment(t, n)

    def rate(self, t_start: float, t_end: float) -> float:
        """Mean events/second over ``[t_start, t_end]``."""
        span = t_end - t_start
        if span <= 0:
            return 0.0
        return (self.value_at(t_end) - self.value_at(t_start)) / span


class UtilizationTracker:
    """Busy-capacity accounting against a fixed total capacity.

    Call :meth:`acquire`/:meth:`release` as capacity units come into and
    out of use.  :meth:`utilization` is the busy integral divided by
    ``capacity × span`` — the quantity Fig 4 of the paper reports as
    "resource utilization".
    """

    kind = "utilization"

    def __init__(self, capacity: float, name: str = "", t0: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self.name = name
        self.busy = Gauge(name=f"{name}.busy", initial=0.0, t0=t0)

    def acquire(self, t: float, amount: float = 1.0) -> None:
        """Mark ``amount`` capacity units busy from time ``t``."""
        new = self.busy.current + amount
        if new > self.capacity + 1e-9:
            raise ValueError(
                f"Oversubscription: busy {new} > capacity {self.capacity}"
            )
        self.busy.record(t, new)

    def release(self, t: float, amount: float = 1.0) -> None:
        """Mark ``amount`` capacity units free from time ``t``."""
        new = self.busy.current - amount
        if new < -1e-9:
            raise ValueError(f"Releasing more than acquired: {new}")
        self.busy.record(t, max(new, 0.0))

    def utilization(self, t_start: Optional[float] = None, t_end: Optional[float] = None) -> float:
        """Fraction of capacity-time in use over ``[t_start, t_end]``."""
        t_start = self.busy.times[0] if t_start is None else t_start
        t_end = self.busy.times[-1] if t_end is None else t_end
        span = t_end - t_start
        if span <= 0:
            return 0.0
        total = self.busy.integral(t_end) - self.busy.integral(t_start)
        return total / (self.capacity * span)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "capacity": self.capacity,
            "times": list(self.busy.times),
            "values": list(self.busy.values),
        }

    def __repr__(self) -> str:
        return (
            f"<UtilizationTracker {self.name!r} busy={self.busy.current}"
            f"/{self.capacity}>"
        )


class MetricsRegistry:
    """Per-component, named store of metric objects.

    Metrics are keyed ``(component, name)``.  The accessors get-or-
    create, so independent layers can share a series by agreeing on the
    key; :meth:`register` adopts a metric a component already created
    (the EnTK agent and the cluster register their own recorders here,
    making the registry the single source of truth the benchmarks
    query).
    """

    def __init__(self):
        self._metrics: dict[tuple[str, str], object] = {}

    # -- get-or-create accessors --------------------------------------------

    def counter(self, name: str, component: str = "", t0: float = 0.0) -> Counter:
        return self._get_or_create(name, component, Counter, t0=t0)

    def gauge(
        self, name: str, component: str = "", initial: float = 0.0, t0: float = 0.0
    ) -> Gauge:
        return self._get_or_create(name, component, Gauge, initial=initial, t0=t0)

    def utilization(
        self, name: str, capacity: float, component: str = "", t0: float = 0.0
    ) -> UtilizationTracker:
        key = (component, name)
        metric = self._metrics.get(key)
        if metric is None:
            metric = UtilizationTracker(capacity=capacity, name=name, t0=t0)
            self._metrics[key] = metric
        elif not isinstance(metric, UtilizationTracker):
            raise TypeError(
                f"Metric {key} already registered as {type(metric).__name__}"
            )
        return metric

    def _get_or_create(self, name, component, cls, **kwargs):
        key = (component, name)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, **kwargs)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"Metric {key} already registered as {type(metric).__name__}"
            )
        return metric

    # -- adoption & lookup ---------------------------------------------------

    def register(self, metric, component: str = "") -> None:
        """Adopt an externally created metric under ``(component, name)``."""
        key = (component, metric.name)
        existing = self._metrics.get(key)
        if existing is not None and existing is not metric:
            raise ValueError(f"Metric {key} already registered")
        self._metrics[key] = metric

    def get(self, name: str, component: str = ""):
        return self._metrics[(component, name)]

    def __contains__(self, key) -> bool:
        if isinstance(key, str):
            key = ("", key)
        return tuple(key) in self._metrics

    def items(self):
        """``((component, name), metric)`` pairs in deterministic order."""
        return sorted(self._metrics.items(), key=lambda kv: kv[0])

    def __len__(self) -> int:
        return len(self._metrics)

    def to_dict(self) -> dict:
        """``{"component/name": metric.to_dict()}`` for export."""
        return {
            f"{comp}/{name}": metric.to_dict()
            for (comp, name), metric in self.items()
        }

    def __repr__(self) -> str:
        return f"<MetricsRegistry metrics={len(self._metrics)}>"
