"""Metric primitives shared by every substrate layer.

This module is the *single* implementation of time-series accounting in
:mod:`repro`.  :mod:`repro.simkernel.monitor` re-exports these classes
under their historical names (``TimeSeriesMonitor`` is :class:`Gauge`),
so the kernel, the cluster, the EnTK agent and the benchmarks all
record into one family of metric objects that a
:class:`MetricsRegistry` can enumerate and export.

- :class:`Gauge` — a piecewise-constant signal over simulated time with
  integration, resampling and time averages (concurrency curves, queue
  lengths — the Fig 5 quantities).
- :class:`Counter` — a monotonically non-decreasing gauge (cumulative
  scheduled/launched/completed counts; throughputs are its slopes).
- :class:`UtilizationTracker` — busy-interval accounting against a
  fixed capacity (the Fig 4 "resource utilization").
- :class:`MetricsRegistry` — per-component, get-or-create store of the
  above, exportable as plain dicts.

Alongside the retained time-series above, this module provides the
**online** (constant-memory) statistics primitives that
:mod:`repro.obs.stream` builds on: :class:`RunningStats` (Welford
count/mean/variance/min/max), :class:`P2Quantile` (the Jain & Chlamtac
P² estimator — any quantile in O(1) memory), :class:`StreamingHistogram`
(fixed-bin counts), and :class:`WindowedCounter` /
:class:`WindowedGauge` (sliding-window rates and extrema over simulated
time).  None of them retain samples; all are deterministic functions of
the observation sequence.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from typing import Optional

import numpy as np

from repro.sanitizer import hooks


class Gauge:
    """Records a piecewise-constant signal over simulated time.

    The signal holds each recorded value until the next record.  All
    derived statistics (time average, integral, resampling) treat it as
    a right-open step function.
    """

    kind = "gauge"

    def __init__(self, name: str = "", initial: float = 0.0, t0: float = 0.0):
        self.name = name
        self.times: list[float] = [t0]
        self.values: list[float] = [float(initial)]

    def record(self, t: float, value: float) -> None:
        """Record that the signal equals ``value`` from time ``t`` on."""
        if hooks.ACTIVE is not None:
            # Commutative for simsan: a same-instant record reads the
            # *current* state, so the last writer lands the same final
            # value in any batch order (same-t records overwrite).
            hooks.ACTIVE.record(self, self.name or "gauge", "c")
        if t < self.times[-1]:
            raise ValueError(
                f"Non-monotonic record: t={t} < last t={self.times[-1]}"
            )
        if t == self.times[-1]:
            self.values[-1] = float(value)
        else:
            self.times.append(float(t))
            self.values.append(float(value))

    # ``set`` reads better at metric call sites; ``record`` is the
    # historical monitor name.
    set = record

    def increment(self, t: float, delta: float = 1.0) -> None:
        """Record ``current + delta`` at time ``t``."""
        self.record(t, self.values[-1] + delta)

    @property
    def current(self) -> float:
        return self.values[-1]

    @property
    def peak(self) -> float:
        return max(self.values)

    def value_at(self, t: float) -> float:
        """Signal value at time ``t`` (last record at or before ``t``)."""
        idx = bisect.bisect_right(self.times, t) - 1
        if idx < 0:
            raise ValueError(f"t={t} precedes first record {self.times[0]}")
        return self.values[idx]

    def integral(self, t_end: Optional[float] = None) -> float:
        """Integral of the step function from first record to ``t_end``.

        ``t_end`` may fall before the last record; segments past it
        contribute nothing.
        """
        t_end = self.times[-1] if t_end is None else t_end
        ts = np.asarray(self.times)
        vs = np.asarray(self.values)
        seg_ends = np.minimum(np.append(ts[1:], max(t_end, ts[-1])), t_end)
        widths = np.clip(seg_ends - ts, 0.0, None)
        return float(np.dot(widths, vs))

    def time_average(self, t_end: Optional[float] = None) -> float:
        """Time-weighted mean of the signal."""
        t_end = self.times[-1] if t_end is None else t_end
        span = t_end - self.times[0]
        if span <= 0:
            return self.values[0]
        return self.integral(t_end) / span

    def resample(self, n: int = 200, t_end: Optional[float] = None):
        """Return ``(times, values)`` arrays sampled on a uniform grid."""
        t_end = self.times[-1] if t_end is None else t_end
        grid = np.linspace(self.times[0], t_end, n)
        idx = np.searchsorted(self.times, grid, side="right") - 1
        idx = np.clip(idx, 0, len(self.values) - 1)
        return grid, np.asarray(self.values)[idx]

    def series(self) -> tuple:
        """The raw ``(times, values)`` change points as tuples."""
        return tuple(self.times), tuple(self.values)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "times": list(self.times),
            "values": list(self.values),
        }

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} points={len(self.times)} "
            f"current={self.current}>"
        )


class Counter(Gauge):
    """A gauge that can only go up — cumulative event counts.

    Throughputs (Fig 5's 269 tasks/s and 51 tasks/s) are slopes of
    counters: :meth:`rate` over a window.
    """

    kind = "counter"

    def record(self, t: float, value: float) -> None:
        if value < self.values[-1] - 1e-12:
            raise ValueError(
                f"Counter {self.name!r} cannot decrease: "
                f"{value} < {self.values[-1]}"
            )
        super().record(t, value)

    set = record

    def inc(self, t: float, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("Counter increments must be non-negative")
        self.increment(t, n)

    def rate(self, t_start: float, t_end: float) -> float:
        """Mean events/second over ``[t_start, t_end]``."""
        span = t_end - t_start
        if span <= 0:
            return 0.0
        return (self.value_at(t_end) - self.value_at(t_start)) / span


class UtilizationTracker:
    """Busy-capacity accounting against a fixed total capacity.

    Call :meth:`acquire`/:meth:`release` as capacity units come into and
    out of use.  :meth:`utilization` is the busy integral divided by
    ``capacity × span`` — the quantity Fig 4 of the paper reports as
    "resource utilization".
    """

    kind = "utilization"

    def __init__(self, capacity: float, name: str = "", t0: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = float(capacity)
        self.name = name
        self.busy = Gauge(name=f"{name}.busy", initial=0.0, t0=t0)

    def acquire(self, t: float, amount: float = 1.0) -> None:
        """Mark ``amount`` capacity units busy from time ``t``."""
        new = self.busy.current + amount
        if new > self.capacity + 1e-9:
            raise ValueError(
                f"Oversubscription: busy {new} > capacity {self.capacity}"
            )
        self.busy.record(t, new)

    def release(self, t: float, amount: float = 1.0) -> None:
        """Mark ``amount`` capacity units free from time ``t``."""
        new = self.busy.current - amount
        if new < -1e-9:
            raise ValueError(f"Releasing more than acquired: {new}")
        self.busy.record(t, max(new, 0.0))

    def utilization(self, t_start: Optional[float] = None, t_end: Optional[float] = None) -> float:
        """Fraction of capacity-time in use over ``[t_start, t_end]``."""
        t_start = self.busy.times[0] if t_start is None else t_start
        t_end = self.busy.times[-1] if t_end is None else t_end
        span = t_end - t_start
        if span <= 0:
            return 0.0
        total = self.busy.integral(t_end) - self.busy.integral(t_start)
        return total / (self.capacity * span)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "capacity": self.capacity,
            "times": list(self.busy.times),
            "values": list(self.busy.values),
        }

    def __repr__(self) -> str:
        return (
            f"<UtilizationTracker {self.name!r} busy={self.busy.current}"
            f"/{self.capacity}>"
        )


class MetricsRegistry:
    """Per-component, named store of metric objects.

    Metrics are keyed ``(component, name)``.  The accessors get-or-
    create, so independent layers can share a series by agreeing on the
    key; :meth:`register` adopts a metric a component already created
    (the EnTK agent and the cluster register their own recorders here,
    making the registry the single source of truth the benchmarks
    query).
    """

    def __init__(self):
        self._metrics: dict[tuple[str, str], object] = {}

    # -- get-or-create accessors --------------------------------------------

    def counter(self, name: str, component: str = "", t0: float = 0.0) -> Counter:
        return self._get_or_create(name, component, Counter, t0=t0)

    def gauge(
        self, name: str, component: str = "", initial: float = 0.0, t0: float = 0.0
    ) -> Gauge:
        return self._get_or_create(name, component, Gauge, initial=initial, t0=t0)

    def utilization(
        self, name: str, capacity: float, component: str = "", t0: float = 0.0
    ) -> UtilizationTracker:
        key = (component, name)
        metric = self._metrics.get(key)
        if metric is None:
            metric = UtilizationTracker(capacity=capacity, name=name, t0=t0)
            self._metrics[key] = metric
        elif not isinstance(metric, UtilizationTracker):
            raise TypeError(
                f"Metric {key} already registered as {type(metric).__name__}"
            )
        return metric

    def _get_or_create(self, name, component, cls, **kwargs):
        key = (component, name)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, **kwargs)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"Metric {key} already registered as {type(metric).__name__}"
            )
        return metric

    # -- adoption & lookup ---------------------------------------------------

    def register(self, metric, component: str = "") -> None:
        """Adopt an externally created metric under ``(component, name)``."""
        key = (component, metric.name)
        existing = self._metrics.get(key)
        if existing is not None and existing is not metric:
            raise ValueError(f"Metric {key} already registered")
        self._metrics[key] = metric

    def get(self, name: str, component: str = ""):
        return self._metrics[(component, name)]

    def __contains__(self, key) -> bool:
        if isinstance(key, str):
            key = ("", key)
        return tuple(key) in self._metrics

    def items(self):
        """``((component, name), metric)`` pairs in deterministic order."""
        return sorted(self._metrics.items(), key=lambda kv: kv[0])

    def __len__(self) -> int:
        return len(self._metrics)

    def to_dict(self) -> dict:
        """``{"component/name": metric.to_dict()}`` for export."""
        return {
            f"{comp}/{name}": metric.to_dict()
            for (comp, name), metric in self.items()
        }

    def __repr__(self) -> str:
        return f"<MetricsRegistry metrics={len(self._metrics)}>"


# -- online (constant-memory) primitives ------------------------------------------


class RunningStats:
    """Welford-style running count/mean/variance/min/max.

    O(1) memory, numerically stable, and deterministic for a given
    observation order.  ``variance`` is the population variance; use
    ``sample_variance`` for the n-1 denominator.
    """

    __slots__ = ("n", "mean", "_m2", "min", "max", "total")

    def __init__(self):
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        x = float(x)
        self.n += 1
        self.total += x
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def variance(self) -> float:
        return self._m2 / self.n if self.n else 0.0

    @property
    def sample_variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "mean": self.mean if self.n else 0.0,
            "std": self.std,
            "min": self.min if self.n else 0.0,
            "max": self.max if self.n else 0.0,
            "total": self.total,
        }

    def __repr__(self) -> str:
        return f"<RunningStats n={self.n} mean={self.mean:.4g}>"


class P2Quantile:
    """Online quantile estimation via the P² algorithm.

    Jain & Chlamtac (CACM 1985): five markers track the running
    quantile without storing observations.  Below five samples the
    estimate is exact (computed from the sorted retained handful);
    beyond that, markers move by piecewise-parabolic interpolation.
    Accuracy is excellent for smooth distributions and documented to a
    few percent of the span for adversarial ones — see
    ``tests/obs/test_online_stats.py`` for the tolerance contract.
    """

    __slots__ = ("p", "_q", "_n", "_np", "_dn", "_count")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = float(p)
        self._q: list[float] = []  # marker heights
        self._n = [0, 1, 2, 3, 4]  # marker positions (int)
        self._np = [0.0, 2 * p, 4 * p, 2 + 2 * p, 4.0]  # desired positions
        self._dn = [0.0, p / 2, p, (1 + p) / 2, 1.0]  # position increments
        self._count = 0

    def add(self, x: float) -> None:
        x = float(x)
        self._count += 1
        if len(self._q) < 5:
            bisect.insort(self._q, x)
            return
        q, n = self._q, self._n
        # Find the cell k with q[k] <= x < q[k+1], adjusting extremes.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1
        for i in range(5):
            self._np[i] += self._dn[i]
        # Adjust interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (
                d <= -1 and n[i - 1] - n[i] < -1
            ):
                d = 1 if d > 0 else -1
                candidate = self._parabolic(i, d)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:  # parabolic left the bracket: fall back to linear
                    q[i] = q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])
                n[i] += d

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    @property
    def n(self) -> int:
        return self._count

    @property
    def value(self) -> float:
        """The current quantile estimate (0.0 before any sample)."""
        if not self._q:
            return 0.0
        if len(self._q) < 5 or self._count <= 5:
            # Exact nearest-rank on the retained handful, matching the
            # batch percentile convention in repro.obs.alerts.
            idx = min(
                len(self._q) - 1,
                max(0, round(self.p * len(self._q)) - 1),
            )
            return self._q[idx]
        return self._q[2]

    def __repr__(self) -> str:
        return f"<P2Quantile p={self.p} n={self._count} value={self.value:.4g}>"


class StreamingHistogram:
    """Fixed-bin histogram over a known value range, O(bins) memory.

    Values outside ``[lo, hi]`` land in saturating edge bins, so the
    total count always equals the number of observations.
    """

    __slots__ = ("lo", "hi", "counts", "_width", "n")

    def __init__(self, lo: float, hi: float, bins: int = 64):
        if not hi > lo:
            raise ValueError(f"empty histogram range [{lo}, {hi}]")
        if bins < 1:
            raise ValueError("need at least one bin")
        self.lo = float(lo)
        self.hi = float(hi)
        self.counts = [0] * bins
        self._width = (self.hi - self.lo) / bins
        self.n = 0

    def add(self, x: float) -> None:
        idx = int((float(x) - self.lo) / self._width)
        if idx < 0:
            idx = 0
        elif idx >= len(self.counts):
            idx = len(self.counts) - 1
        self.counts[idx] += 1
        self.n += 1

    def quantile(self, p: float) -> float:
        """Linear-interpolated quantile from the bin counts."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {p}")
        if self.n == 0:
            return self.lo
        target = p * self.n
        seen = 0
        for idx, count in enumerate(self.counts):
            if seen + count >= target:
                frac = (target - seen) / count if count else 0.0
                return self.lo + (idx + frac) * self._width
            seen += count
        return self.hi

    def to_dict(self) -> dict:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "n": self.n,
            "counts": list(self.counts),
        }

    def __repr__(self) -> str:
        return (
            f"<StreamingHistogram [{self.lo}, {self.hi}] "
            f"bins={len(self.counts)} n={self.n}>"
        )


class WindowedCounter:
    """Event counts over a sliding window of simulated time.

    Records ``(t, n)`` increments and evicts entries older than
    ``window`` seconds behind the latest observation, so memory is
    bounded by the number of distinct event times inside one window.
    """

    __slots__ = ("window", "_events", "_sum", "total")

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._events: deque = deque()  # (t, n) pairs inside the window
        self._sum = 0.0
        self.total = 0.0

    def inc(self, t: float, n: float = 1.0) -> None:
        t = float(t)
        if self._events and t < self._events[-1][0]:
            raise ValueError(
                f"Non-monotonic record: t={t} < last t={self._events[-1][0]}"
            )
        self._events.append((t, float(n)))
        self._sum += n
        self.total += n
        self._evict(t)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        while self._events and self._events[0][0] <= cutoff:
            _, n = self._events.popleft()
            self._sum -= n

    def count(self, now: Optional[float] = None) -> float:
        """Events inside ``(now - window, now]``."""
        if now is not None and self._events:
            self._evict(float(now))
        return self._sum

    def rate(self, now: Optional[float] = None) -> float:
        """Mean events/second over the trailing window."""
        return self.count(now) / self.window

    def __repr__(self) -> str:
        return f"<WindowedCounter window={self.window}s count={self._sum}>"


class WindowedGauge:
    """Sliding-window min/max/mean of a sampled signal.

    Monotonic deques give O(1) amortized updates; memory is bounded by
    the samples inside one window.
    """

    __slots__ = ("window", "_samples", "_mins", "_maxs", "_sum")

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._samples: deque = deque()  # (t, v)
        self._mins: deque = deque()  # increasing values
        self._maxs: deque = deque()  # decreasing values
        self._sum = 0.0

    def record(self, t: float, value: float) -> None:
        t, value = float(t), float(value)
        if self._samples and t < self._samples[-1][0]:
            raise ValueError(
                f"Non-monotonic record: t={t} < last t={self._samples[-1][0]}"
            )
        self._samples.append((t, value))
        self._sum += value
        while self._mins and self._mins[-1][1] > value:
            self._mins.pop()
        self._mins.append((t, value))
        while self._maxs and self._maxs[-1][1] < value:
            self._maxs.pop()
        self._maxs.append((t, value))
        self._evict(t)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        while self._samples and self._samples[0][0] <= cutoff:
            _, v = self._samples.popleft()
            self._sum -= v
        while self._mins and self._mins[0][0] <= cutoff:
            self._mins.popleft()
        while self._maxs and self._maxs[0][0] <= cutoff:
            self._maxs.popleft()

    @property
    def min(self) -> float:
        return self._mins[0][1] if self._mins else 0.0

    @property
    def max(self) -> float:
        return self._maxs[0][1] if self._maxs else 0.0

    @property
    def mean(self) -> float:
        return self._sum / len(self._samples) if self._samples else 0.0

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:
        return (
            f"<WindowedGauge window={self.window}s samples={len(self._samples)}>"
        )
