"""Trace diagnosis: critical paths, stragglers, idle gaps, overheads.

:mod:`repro.obs` records *what happened*; this module answers *why the
run took as long as it did*.  Everything here is a pure function of a
recorded trace — run it live on a tracer or post-hoc on a JSONL file
reloaded with :func:`repro.obs.export.tracer_from_jsonl`.

- :func:`critical_path` — a backward "last finisher" walk over the
  span DAG (parent/child containment plus optional task-dependency
  edges).  It tiles the analysis window with contiguous segments, each
  blamed on one span (or classified gap), so **phase durations sum to
  the window length by construction** — the property the run reports
  assert against the job runtime.  This is the decomposition the
  ExaWorks-on-Frontier study uses to chase full-system utilization.
- :func:`find_stragglers` — robust outlier detection on sibling span
  durations (median + MAD modified z-score), the "which task is the
  long pole" question.
- :func:`find_idle_gaps` — maximal intervals where a busy/concurrency
  series sits at or below a floor: holes in the node/core timeline.
- :func:`decompose_overheads` — the Fig-4 OVH/TTX split refined into
  agent phases (bootstrap, ramp-up, steady state, drain, shutdown)
  plus per-task queue-wait statistics.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Union

from repro.obs.metrics import Gauge, UtilizationTracker
from repro.obs.query import TraceQuery
from repro.obs.tracer import Span, Tracer

#: Canonical phase vocabulary, in report order.  ``other`` catches
#: spans whose category no layer has mapped yet.
PHASES = (
    "bootstrap",
    "scheduling",
    "launch",
    "compute",
    "transfer",
    "drain",
    "idle",
    "other",
)

#: Default span-category → phase attribution.  Layers adding new span
#: categories should extend this map (or pass ``phase_of``).
PHASE_OF_CATEGORY = {
    "entk.bootstrap": "bootstrap",
    "entk.task": "scheduling",   # submit → scheduled wait dominates it
    "entk.pending": "launch",    # pending-launch queue = launcher-bound
    "entk.exec": "compute",
    "engine.task": "scheduling",  # submit → terminal; picked when no pod span ends
    "rm.pod": "compute",
    "rm.job": "compute",
    "atlas.file": "compute",
    "atlas.step": "compute",
    "jaws.call": "compute",
    "jaws.stage": "transfer",
    "data.transfer": "transfer",
    "kernel.process": "other",
}

#: ``(category, name)`` refinements consulted before the category map:
#: the Atlas download steps are transfers even though they are
#: pipeline steps.
PHASE_OF_NAME = {
    ("atlas.step", "prefetch"): "transfer",
    ("atlas.step", "upload"): "transfer",
}

#: Container spans never *explain* elapsed time on their own — they
#: wrap the finer spans that do — so the walk skips them by default.
DEFAULT_EXCLUDE = frozenset({"rm.job", "kernel.process", "obs.alert"})

#: When a gap must be classified by what was open across it, more
#: specific phases win.
_GAP_PRIORITY = ("bootstrap", "transfer", "launch", "scheduling", "compute")


def default_phase_of(span: Span) -> str:
    """Phase attribution for one span: name override, then category."""
    by_name = PHASE_OF_NAME.get((span.category, span.name))
    if by_name is not None:
        return by_name
    return PHASE_OF_CATEGORY.get(span.category, "other")


@dataclass(frozen=True)
class PathSegment:
    """One contiguous slice of the critical path."""

    t0: float
    t1: float
    phase: str
    span_id: Optional[int] = None  # None for classified gaps
    name: str = ""
    category: str = ""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        return {
            "t0": self.t0,
            "t1": self.t1,
            "duration": self.duration,
            "phase": self.phase,
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
        }


@dataclass
class CriticalPath:
    """A contiguous tiling of ``[t0, t1]`` by blamed segments.

    Invariant (asserted by the run reports): the segment durations sum
    to ``t1 - t0`` exactly, so per-phase blame is a true decomposition
    of the makespan, not a sample of it.
    """

    t0: float
    t1: float
    segments: list = field(default_factory=list)  # chronological

    @property
    def makespan(self) -> float:
        return self.t1 - self.t0

    def phase_totals(self) -> dict:
        """``phase -> total seconds`` in canonical order, only phases
        that actually appear."""
        totals: dict[str, float] = {}
        for seg in self.segments:
            totals[seg.phase] = totals.get(seg.phase, 0.0) + seg.duration
        ordered = {p: totals[p] for p in PHASES if p in totals}
        for p in sorted(totals):
            ordered.setdefault(p, totals[p])
        return ordered

    def blame(self) -> dict:
        """``phase -> fraction of the makespan`` (sums to 1.0)."""
        span = self.makespan
        if span <= 0:
            return {}
        return {p: d / span for p, d in self.phase_totals().items()}

    def longest_segments(self, n: int = 5) -> list:
        return sorted(self.segments, key=lambda s: (-s.duration, s.t0))[:n]

    def to_dict(self) -> dict:
        return {
            "t0": self.t0,
            "t1": self.t1,
            "makespan": self.makespan,
            "phase_totals": self.phase_totals(),
            "blame": self.blame(),
            "segments": [s.to_dict() for s in self.segments],
        }

    def __repr__(self) -> str:
        phases = ", ".join(
            f"{p}={d:.1f}s" for p, d in self.phase_totals().items()
        )
        return f"<CriticalPath {self.makespan:.1f}s: {phases}>"


def _as_query(trace: Union[Tracer, TraceQuery]) -> TraceQuery:
    return trace if isinstance(trace, TraceQuery) else TraceQuery(trace)


def critical_path(
    trace: Union[Tracer, TraceQuery],
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    phase_of: Optional[Callable[[Span], str]] = None,
    exclude_categories: Iterable[str] = DEFAULT_EXCLUDE,
    deps: Optional[dict] = None,
    task_tag: str = "task",
    eps: float = 1e-9,
) -> CriticalPath:
    """Extract the critical path of a run from its span trace.

    The walk starts at ``t1`` (default: latest span end) and repeatedly
    asks *"what was the last activity to finish before this moment?"*:

    1. Among finished spans ending at or before the cursor (and
       starting strictly before it), take the latest-ending one;
       ties prefer the latest-starting (deepest/most specific) span,
       so a leaf ``exec`` span beats the whole-lifecycle span that
       closes at the same instant.
    2. If the winner ends strictly before the cursor, the uncovered
       gap is classified by what was *open* across it (queue spans →
       their phase; nothing after the last activity → ``drain``;
       nothing at all → ``idle``).
    3. The winner's interval joins the path; the cursor jumps to its
       start; repeat until ``t0``.

    ``deps`` optionally supplies task-dependency edges as a mapping
    ``task name -> iterable of prerequisite task names`` (matched
    against the ``task_tag`` span tag, falling back to the span name).
    When the current critical span belongs to a task with known
    prerequisites, the walk follows the latest-finishing prerequisite
    instead of the globally latest finisher — the classic workflow
    critical path rather than the resource critical path.
    """
    q = _as_query(trace)
    phase_of = phase_of or default_phase_of
    excluded = frozenset(exclude_categories)
    spans = [
        s
        for s in q.tracer.spans
        if s.end is not None and s.category not in excluded
    ]
    if not spans:
        lo = 0.0 if t0 is None else t0
        hi = lo if t1 is None else t1
        return CriticalPath(t0=lo, t1=hi, segments=[])

    lo = min(s.start for s in spans) if t0 is None else float(t0)
    hi = max(s.end for s in spans) if t1 is None else float(t1)

    # end-sorted candidates; ties resolved toward later starts, then
    # later ids, so "last with end <= cursor" is also the tie winner.
    ordered = sorted(spans, key=lambda s: (s.end, s.start, s.span_id))
    ends = [s.end for s in ordered]

    by_task: dict[str, list[Span]] = {}
    if deps:
        for s in ordered:
            key = s.tags.get(task_tag, s.name)
            if isinstance(key, str):
                by_task.setdefault(key, []).append(s)

    def task_key(span: Span):
        key = span.tags.get(task_tag, span.name)
        return key if isinstance(key, str) else None

    def last_finisher(cursor: float) -> Optional[Span]:
        """Latest-ending span with ``end <= cursor`` and ``start < cursor``."""
        idx = bisect.bisect_right(ends, cursor + eps) - 1
        while idx >= 0:
            s = ordered[idx]
            if s.end <= lo + eps:
                return None
            if s.start < cursor - eps:
                return s
            idx -= 1
        return None

    def dep_finisher(span: Span) -> Optional[Span]:
        """Latest-finishing prerequisite of ``span`` (when deps given)."""
        key = task_key(span)
        if not deps or key is None or key not in deps:
            return None
        best = None
        for dep_name in deps[key]:
            for s in by_task.get(dep_name, ()):
                # Strict progress: the prerequisite must start before
                # the dependent does, or the walk could stall on
                # zero-duration spans (cache hits).
                if (
                    s.end <= span.start + eps
                    and s.start < span.start - eps
                    and (
                        best is None
                        or (s.end, s.start, s.span_id)
                        > (best.end, best.start, best.span_id)
                    )
                ):
                    best = s
        return best

    segments: list[PathSegment] = []

    # Per-phase "open span count" step functions, so gap classification
    # is a bisect per phase instead of a scan over every span.
    phase_steps: dict[str, tuple[list, list]] = {}
    deltas: dict[str, dict[float, int]] = {}
    for s in spans:
        d = deltas.setdefault(phase_of(s), {})
        d[s.start] = d.get(s.start, 0) + 1
        d[s.end] = d.get(s.end, 0) - 1
    for phase, d in deltas.items():
        ts: list[float] = []
        counts: list[int] = []
        level = 0
        for t in sorted(d):
            level += d[t]
            ts.append(t)
            counts.append(level)
        phase_steps[phase] = (ts, counts)

    def phase_open_at(phase: str, t: float) -> bool:
        step = phase_steps.get(phase)
        if step is None:
            return False
        ts, counts = step
        idx = bisect.bisect_right(ts, t) - 1
        return idx >= 0 and counts[idx] > 0

    def classify_gap(g0: float, g1: float, first: bool) -> str:
        mid = (g0 + g1) / 2.0
        for phase in _GAP_PRIORITY:
            if phase_open_at(phase, mid):
                return phase
        # Nothing open at all: trailing gap = drain, leading/interior
        # emptiness = idle.
        return "drain" if first else "idle"

    cursor = hi
    current: Optional[Span] = None  # span whose start the cursor sits at
    while cursor > lo + eps:
        nxt = dep_finisher(current) if current is not None else None
        if nxt is None:
            nxt = last_finisher(cursor)
        if nxt is None:
            segments.append(
                PathSegment(
                    t0=lo,
                    t1=cursor,
                    phase=classify_gap(lo, cursor, first=not segments),
                )
            )
            cursor = lo
            break
        if nxt.end < cursor - eps:
            segments.append(
                PathSegment(
                    t0=nxt.end,
                    t1=cursor,
                    phase=classify_gap(nxt.end, cursor, first=not segments),
                )
            )
            cursor = nxt.end
        seg_start = max(nxt.start, lo)
        segments.append(
            PathSegment(
                t0=seg_start,
                t1=cursor,
                phase=phase_of(nxt),
                span_id=nxt.span_id,
                name=nxt.name,
                category=nxt.category,
            )
        )
        cursor = seg_start
        current = nxt

    segments.reverse()
    return CriticalPath(t0=lo, t1=hi, segments=segments)


# -- straggler detection ---------------------------------------------------------


@dataclass(frozen=True)
class Straggler:
    """One span flagged as abnormally slow among its siblings."""

    span_id: int
    name: str
    category: str
    component: str
    duration: float
    median: float
    mad: float
    score: float  # modified z-score (inf when MAD == 0)

    @property
    def excess(self) -> float:
        return self.duration - self.median

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "category": self.category,
            "component": self.component,
            "duration": self.duration,
            "median": self.median,
            "score": self.score if self.score != float("inf") else None,
        }


def _median(values: list) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def find_stragglers(
    trace: Union[Tracer, TraceQuery],
    category: Optional[str] = None,
    component: Optional[str] = None,
    name: Optional[str] = None,
    tags: Optional[dict] = None,
    group_by: Optional[Callable[[Span], tuple]] = None,
    threshold: float = 3.5,
    rel_threshold: float = 0.5,
    min_group: int = 4,
    min_excess_s: float = 0.0,
) -> list:
    """Flag spans whose duration is an outlier among their siblings.

    Siblings default to spans sharing ``(category, component)``
    (override with ``group_by``).  A span is a straggler when its
    modified z-score ``0.6745 · (d − median) / MAD`` exceeds
    ``threshold`` — the robust test that tolerates the heavy natural
    spread of task runtimes.  When the MAD is zero (siblings all equal)
    the relative test ``(d − median) / median > rel_threshold`` applies
    instead, so exactly-uniform groups can never produce a false
    positive.  Only *slow* outliers are reported.
    """
    q = _as_query(trace)
    matched = [
        s
        for s in q.spans(
            category=category, component=component, name=name, tags=tags
        )
        if s.end is not None
    ]
    groups: dict[tuple, list[Span]] = {}
    keyed = group_by or (lambda s: (s.category, s.component))
    for s in matched:
        groups.setdefault(keyed(s), []).append(s)

    out: list[Straggler] = []
    for key in sorted(groups, key=repr):
        members = groups[key]
        if len(members) < min_group:
            continue
        durations = [s.duration for s in members]
        med = _median(durations)
        mad = _median([abs(d - med) for d in durations])
        scale = 1.4826 * mad
        for s in members:
            excess = s.duration - med
            if excess <= max(min_excess_s, 0.0):
                continue
            if scale > 0:
                score = excess / scale
                if score <= threshold:
                    continue
            else:
                if med <= 0 or excess / med <= rel_threshold:
                    continue
                score = float("inf")
            out.append(
                Straggler(
                    span_id=s.span_id,
                    name=s.name,
                    category=s.category,
                    component=s.component,
                    duration=s.duration,
                    median=med,
                    mad=mad,
                    score=score,
                )
            )
    out.sort(key=lambda s: (-s.excess, s.span_id))
    return out


# -- idle-gap detection ----------------------------------------------------------


@dataclass(frozen=True)
class IdleGap:
    """A maximal interval where a busy series sat at/below the floor."""

    t0: float
    t1: float
    level: float  # the series' maximum value inside the gap

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        return {
            "t0": self.t0,
            "t1": self.t1,
            "duration": self.duration,
            "level": self.level,
        }


class OnlineIdleGaps:
    """Single-pass idle-gap finder over a streamed step signal.

    Feed the ``(t, value)`` change points of a busy/concurrency series
    in time order; :meth:`result` returns exactly what
    :func:`find_idle_gaps` computes on the full series (the batch
    function *is* this class applied to a retained gauge — the
    equivalence is by construction, not approximation).  Each fed point
    is resolved once its right edge is known (the next point, or the
    window end at :meth:`result`), so memory is O(gaps found), never
    O(points).
    """

    def __init__(
        self,
        threshold: float = 0.0,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        min_duration: float = 0.0,
    ):
        self.threshold = float(threshold)
        self.min_duration = float(min_duration)
        self._lo = None if t0 is None else float(t0)
        self._hi = None if t1 is None else float(t1)
        self._pending: Optional[tuple[float, float]] = None
        self._last_t: Optional[float] = None
        self._open_at: Optional[float] = None
        self._worst = 0.0
        self._gaps: list[IdleGap] = []
        self._done = False  # a point at/past the window end was seen

    def feed(self, t: float, value: float) -> None:
        t, value = float(t), float(value)
        if self._lo is None:
            self._lo = t
        self._last_t = t
        prev, self._pending = self._pending, (t, value)
        if prev is not None and not self._done:
            self._step(prev[0], prev[1], seg_hi=t)

    def _step(self, t: float, v: float, seg_hi: float) -> None:
        seg_lo = max(t, self._lo)
        if self._hi is not None:
            seg_hi = min(seg_hi, self._hi)
        if seg_hi <= seg_lo:
            if self._hi is not None and t >= self._hi:
                self._done = True
            return
        if v <= self.threshold:
            if self._open_at is None:
                self._open_at = seg_lo
                self._worst = v
            else:
                self._worst = max(self._worst, v)
        elif self._open_at is not None:
            self._gaps.append(IdleGap(t0=self._open_at, t1=seg_lo, level=self._worst))
            self._open_at = None

    def result(self) -> list:
        """The gaps found so far, closed at the window end.

        Non-destructive: the finder can keep feeding afterwards (live
        dashboards poll this mid-run).
        """
        if self._lo is None:
            return []
        hi = self._hi if self._hi is not None else self._last_t
        if hi is None or hi <= self._lo:
            return []
        gaps = list(self._gaps)
        open_at, worst = self._open_at, self._worst
        if self._pending is not None and not self._done:
            t, v = self._pending
            seg_lo = max(t, self._lo)
            if hi > seg_lo:
                if v <= self.threshold:
                    if open_at is None:
                        open_at, worst = seg_lo, v
                    else:
                        worst = max(worst, v)
                elif open_at is not None:
                    gaps.append(IdleGap(t0=open_at, t1=seg_lo, level=worst))
                    open_at = None
        if open_at is not None:
            gaps.append(IdleGap(t0=open_at, t1=hi, level=worst))
        return [g for g in gaps if g.duration > self.min_duration]


def find_idle_gaps(
    series: Union[Gauge, UtilizationTracker],
    threshold: float = 0.0,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    min_duration: float = 0.0,
) -> list:
    """Maximal intervals of ``series <= threshold`` inside ``[t0, t1]``.

    ``series`` is a busy/concurrency step signal (a
    :class:`~repro.obs.metrics.Gauge`, or a
    :class:`~repro.obs.metrics.UtilizationTracker` whose ``.busy``
    gauge is used).  Holes in a node/core timeline show up here: a gap
    means the tracked capacity was doing nothing at all (or no more
    than ``threshold`` units) for the whole interval.

    This is the single-pass :class:`OnlineIdleGaps` fed from the
    retained series, so batch and streaming analyses agree exactly.
    """
    gauge = series.busy if isinstance(series, UtilizationTracker) else series
    finder = OnlineIdleGaps(
        threshold=threshold, t0=t0, t1=t1, min_duration=min_duration
    )
    for t, v in zip(gauge.times, gauge.values):
        finder.feed(t, v)
    return finder.result()


# -- EnTK overhead decomposition -------------------------------------------------


@dataclass
class OverheadDecomposition:
    """The Fig-4 OVH/TTX split, refined into agent phases.

    Timeline slices (contiguous, summing to ``job_runtime``):

    - ``ovh`` — agent bootstrap (Fig 4's 85 s OVH).
    - ``ramp_up`` — bootstrap end until the executing concurrency
      first reaches its peak (launcher-bound).
    - ``steady`` — first to last moment at peak concurrency.
    - ``drain`` — falling off the plateau until the last task ends.
    - ``shutdown`` — last task end until the job ends.

    Queue statistics (per-task means, overlap across tasks):

    - ``mean_schedule_wait`` — submit → scheduled (scheduler-bound).
    - ``mean_launch_wait`` — scheduled → launched (launcher-bound).
    - ``mean_exec`` — launched → terminal.
    """

    component: str
    job_start: float
    job_end: float
    ovh: float
    ttx: float
    ramp_up: float
    steady: float
    drain: float
    shutdown: float
    peak_concurrency: float
    mean_schedule_wait: float
    mean_launch_wait: float
    mean_exec: float
    tasks: int

    @property
    def job_runtime(self) -> float:
        return self.job_end - self.job_start

    def slices(self) -> list:
        """``(label, seconds)`` pairs for a stacked OVH/TTX bar."""
        return [
            ("OVH", self.ovh),
            ("ramp-up", self.ramp_up),
            ("steady", self.steady),
            ("drain", self.drain),
            ("shutdown", self.shutdown),
        ]

    def to_dict(self) -> dict:
        return {
            "component": self.component,
            "job_runtime": self.job_runtime,
            "ovh": self.ovh,
            "ttx": self.ttx,
            "ramp_up": self.ramp_up,
            "steady": self.steady,
            "drain": self.drain,
            "shutdown": self.shutdown,
            "peak_concurrency": self.peak_concurrency,
            "mean_schedule_wait": self.mean_schedule_wait,
            "mean_launch_wait": self.mean_launch_wait,
            "mean_exec": self.mean_exec,
            "tasks": self.tasks,
        }


def pilot_components(trace: Union[Tracer, TraceQuery]) -> list:
    """Components that bootstrapped an EnTK agent, in trace order."""
    q = _as_query(trace)
    seen: list[str] = []
    for s in q.spans(category="entk.bootstrap"):
        if s.component not in seen:
            seen.append(s.component)
    return seen


def decompose_overheads(
    trace: Union[Tracer, TraceQuery],
    component: Optional[str] = None,
) -> OverheadDecomposition:
    """Split one pilot's job runtime into agent phases (see
    :class:`OverheadDecomposition`)."""
    q = _as_query(trace)
    if component is None:
        pilots = pilot_components(q)
        if len(pilots) != 1:
            raise ValueError(
                f"need an explicit component, trace has pilots {pilots}"
            )
        component = pilots[0]

    jobs = q.spans(category="rm.job", name=component)
    boots = q.spans(category="entk.bootstrap", component=component)
    if not boots:
        raise ValueError(f"no bootstrap span for component {component!r}")
    boot = boots[0]
    if jobs and jobs[0].end is not None:
        job_start, job_end = jobs[0].start, jobs[0].end
    else:
        # Trace without an rm.job container (agent driven directly):
        # fall back to the agent's own extent.
        job_start = boot.start
        job_end = max(
            s.end
            for s in q.spans(component=component)
            if s.end is not None
        )
    ovh = boot.duration or 0.0

    execs = [
        s
        for s in q.spans(category="entk.exec", component=component)
        if s.end is not None
    ]
    conc = q.concurrency(
        category="entk.exec", component=component, t0=job_start
    )
    peak = conc.peak
    peak_times = [
        t for t, v in zip(conc.times, conc.values) if v >= peak and peak > 0
    ]
    boot_end = boot.end if boot.end is not None else job_start + ovh
    first_peak = peak_times[0] if peak_times else boot_end
    last_peak = peak_times[-1] if peak_times else boot_end
    last_exec_end = max((s.end for s in execs), default=boot_end)

    pendings = [
        s
        for s in q.spans(category="entk.pending", component=component)
        if s.end is not None
    ]
    span_by_id = {s.span_id: s for s in q.tracer.spans}
    schedule_waits = [
        p.start - span_by_id[p.parent_id].start
        for p in pendings
        if p.parent_id in span_by_id
    ]
    launch_waits = [p.duration for p in pendings]
    exec_durations = [s.duration for s in execs]

    def mean(xs):
        return sum(xs) / len(xs) if xs else 0.0

    return OverheadDecomposition(
        component=component,
        job_start=job_start,
        job_end=job_end,
        ovh=ovh,
        ttx=job_end - boot_end,
        ramp_up=max(0.0, first_peak - boot_end),
        steady=max(0.0, last_peak - first_peak),
        drain=max(0.0, last_exec_end - last_peak),
        shutdown=max(0.0, job_end - last_exec_end),
        peak_concurrency=peak,
        mean_schedule_wait=mean(schedule_waits),
        mean_launch_wait=mean(launch_waits),
        mean_exec=mean(exec_durations),
        tasks=len({s.parent_id for s in execs if s.parent_id is not None})
        or len(execs),
    )
