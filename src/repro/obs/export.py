"""Trace exporters: Chrome-trace/Perfetto JSON and flat JSONL.

Both exporters are deterministic functions of the trace contents — no
wall-clock timestamps, no hash ordering — so identical simulation seeds
produce byte-identical files (the property the determinism tests pin).

Chrome-trace output loads in ``chrome://tracing`` and
https://ui.perfetto.dev: components become processes, concurrent spans
are fanned out over per-component lanes (threads) such that every
lane's ``B``/``E`` events form a balanced, properly nested bracket
sequence, and gauges/counters become ``C`` counter tracks.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.tracer import Span, Tracer

#: Simulated seconds → chrome-trace microseconds.
_US = 1_000_000.0


def _json_safe(value):
    """Coerce a tag/attr value to something JSON-serializable."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return _json_safe(item())
        except (TypeError, ValueError):
            pass
    return repr(value)


def _safe_tags(tags: dict) -> dict:
    return {str(k): _json_safe(v) for k, v in tags.items()}


def _assign_lanes(spans: list[Span]) -> dict[int, list[Span]]:
    """Partition finished spans into lanes of properly nested intervals.

    Spans are considered in ``(start, -end, id)`` order; each goes to
    its parent's lane when it still fits there (so span trees render as
    one nested flame), otherwise to the first lane whose currently open
    interval contains it (or which has no open interval left).  The
    result: within a lane, intervals form a laminar family, so a
    ``B``-at-start / ``E``-at-end walk is a balanced bracket sequence.
    """
    lanes: list[list[Span]] = []
    stacks: list[list[float]] = []  # per-lane open interval end times
    lane_of: dict[int, int] = {}  # span_id -> lane index

    def fits(lane_idx: int, span: Span) -> bool:
        stack = stacks[lane_idx]
        while stack and (
            stack[-1] < span.start
            or (stack[-1] == span.start and span.end > stack[-1])
        ):
            stack.pop()
        return not stack or span.end <= stack[-1]

    for span in sorted(spans, key=lambda s: (s.start, -s.end, s.span_id)):
        parent_lane = (
            lane_of.get(span.parent_id) if span.parent_id is not None else None
        )
        candidates = [] if parent_lane is None else [parent_lane]
        candidates += [i for i in range(len(lanes)) if i != parent_lane]
        placed = next((i for i in candidates if fits(i, span)), None)
        if placed is None:
            lanes.append([])
            stacks.append([])
            placed = len(lanes) - 1
        lanes[placed].append(span)
        stacks[placed].append(span.end)
        lane_of[span.span_id] = placed
    return {idx: lane for idx, lane in enumerate(lanes)}


def _lane_events(lane: list[Span], pid: int, tid: int) -> list[dict]:
    """Balanced B/E walk over one lane's laminar span family."""
    events: list[dict] = []
    stack: list[Span] = []

    def emit_end(span: Span) -> None:
        events.append(
            {
                "ph": "E",
                "ts": span.end * _US,
                "pid": pid,
                "tid": tid,
                "name": span.name,
                "cat": span.category or "span",
                "args": {"span_id": span.span_id},
            }
        )

    for span in lane:  # already in (start, -end, id) order
        while stack and (
            stack[-1].end < span.start
            or (stack[-1].end == span.start and span.end > stack[-1].end)
        ):
            emit_end(stack.pop())
        args = _safe_tags(span.tags)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "ph": "B",
                "ts": span.start * _US,
                "pid": pid,
                "tid": tid,
                "name": span.name,
                "cat": span.category or "span",
                "args": args,
            }
        )
        stack.append(span)
    while stack:
        emit_end(stack.pop())
    return events


def to_chrome_trace(tracer: Tracer, include_metrics: bool = True) -> dict:
    """Render the trace as a Chrome-trace ("Trace Event Format") dict.

    Only finished spans are exported (open spans cannot be balanced);
    their count is reported under ``otherData``.
    """
    finished = [s for s in tracer.spans if s.end is not None]
    components = sorted(
        {s.component for s in finished}
        | {i.component for i in tracer.instants}
    )
    pid_of = {c: idx + 1 for idx, c in enumerate(components)}

    metadata = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": comp or "(root)"},
        }
        for comp, pid in sorted(pid_of.items(), key=lambda kv: kv[1])
    ]

    events: list[dict] = []
    for comp in components:
        comp_spans = [s for s in finished if s.component == comp]
        # tid 0 is the component's instant lane; span lanes start at 1.
        for lane_idx, lane in _assign_lanes(comp_spans).items():
            events.extend(_lane_events(lane, pid_of[comp], lane_idx + 1))

    # Point events inside spans and standalone instants.
    for span in finished:
        for t, name, attrs in span.events:
            events.append(
                {
                    "ph": "i",
                    "ts": t * _US,
                    "pid": pid_of[span.component],
                    "tid": 0,
                    "name": name,
                    "cat": span.category or "span",
                    "s": "t",
                    "args": dict(_safe_tags(attrs), span_id=span.span_id),
                }
            )
    for inst in tracer.instants:
        events.append(
            {
                "ph": "i",
                "ts": inst.t * _US,
                "pid": pid_of[inst.component],
                "tid": 0,
                "name": inst.name,
                "cat": inst.category or "instant",
                "s": "t",
                "args": _safe_tags(inst.tags),
            }
        )

    if include_metrics:
        for (comp, name), metric in tracer.metrics.items():
            data = metric.to_dict()
            pid = pid_of.get(comp, 0)
            for t, v in zip(data["times"], data["values"]):
                events.append(
                    {
                        "ph": "C",
                        "ts": t * _US,
                        "pid": pid,
                        "tid": 0,
                        "name": f"{comp}/{name}" if comp else name,
                        "args": {"value": v},
                    }
                )

    # Stable sort preserves each lane's bracket order at equal times.
    events.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated-seconds",
            "spans": len(finished),
            "open_spans": len(tracer.spans) - len(finished),
            "instants": len(tracer.instants),
        },
    }


def write_chrome_trace(
    tracer: Tracer, path, include_metrics: bool = True
) -> None:
    """Write :func:`to_chrome_trace` output to ``path`` (JSON)."""
    with open(path, "w") as fh:
        json.dump(
            to_chrome_trace(tracer, include_metrics=include_metrics),
            fh,
            sort_keys=True,
            separators=(",", ":"),
        )


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def span_record(span) -> dict:
    """The JSONL record dict for one span (shared with the spill sink)."""
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "cat": span.category,
        "comp": span.component,
        "t0": span.start,
        "t1": span.end,
        "tags": _safe_tags(span.tags),
        "events": [
            [t, name, _safe_tags(attrs)] for t, name, attrs in span.events
        ],
    }


def instant_record(inst) -> dict:
    return {
        "type": "instant",
        "name": inst.name,
        "cat": inst.category,
        "comp": inst.component,
        "t": inst.t,
        "tags": _safe_tags(inst.tags),
    }


def metric_record(comp: str, metric) -> dict:
    record = {"type": "metric", "comp": comp}
    record.update(metric.to_dict())
    return record


def to_jsonl(tracer: Tracer, include_metrics: bool = True) -> str:
    """Flat, line-delimited event log of the whole trace.

    One JSON object per line: spans in creation order (ids are
    sequential, so this is also deterministic), then instants in record
    order, then registry metrics in sorted key order.  Identical seeds
    yield byte-identical output.
    """
    lines: list[str] = []
    for span in tracer.spans:
        lines.append(_dumps(span_record(span)))
    for inst in tracer.instants:
        lines.append(_dumps(instant_record(inst)))
    if include_metrics:
        for (comp, name), metric in tracer.metrics.items():
            lines.append(_dumps(metric_record(comp, metric)))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(tracer: Tracer, path, include_metrics: bool = True) -> None:
    with open(path, "w") as fh:
        fh.write(to_jsonl(tracer, include_metrics=include_metrics))


# -- loading ---------------------------------------------------------------------


def tracer_from_jsonl(text: str) -> Tracer:
    """Reconstruct a :class:`Tracer` from :func:`to_jsonl` output.

    The round trip is loss-free for analysis purposes:
    ``to_jsonl(tracer_from_jsonl(to_jsonl(t))) == to_jsonl(t)``.  The
    returned tracer's clock reads the latest recorded timestamp, so
    post-hoc recording (e.g. alert spans) stays inside simulated time.
    """
    latest = [0.0]
    tracer = Tracer(clock=lambda: latest[0])
    span_records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno} is not valid JSON: {exc}") from exc
        kind = record.get("type")
        if kind == "span":
            span_records.append(record)
        elif kind == "instant":
            tracer.instant(
                record["name"],
                category=record.get("cat", ""),
                component=record.get("comp", ""),
                tags=record.get("tags"),
                t=record["t"],
            )
            latest[0] = max(latest[0], record["t"])
        elif kind == "metric":
            tracer.metrics.register(
                metric_from_record(record), component=record.get("comp", "")
            )
        else:
            raise ValueError(f"line {lineno}: unknown record type {kind!r}")

    # Spans are exported in id order; rebuild them directly so ids,
    # parents and open/closed state survive the round trip.
    for record in sorted(span_records, key=lambda r: r["id"]):
        span = Span(
            tracer,
            span_id=record["id"],
            name=record["name"],
            category=record.get("cat", ""),
            component=record.get("comp", ""),
            tags=record.get("tags"),
            start=record["t0"],
            parent_id=record.get("parent"),
        )
        if record.get("t1") is not None:
            span.end = float(record["t1"])
            latest[0] = max(latest[0], span.end)
        latest[0] = max(latest[0], span.start)
        for t, name, attrs in record.get("events", ()):
            span.events.append((float(t), name, dict(attrs)))
            latest[0] = max(latest[0], float(t))
        tracer._adopt(span)
    return tracer


def metric_from_record(record: dict):
    """Rebuild a metric object from a :func:`metric_record` dict."""
    from repro.obs.metrics import Counter, Gauge, UtilizationTracker

    kind = record.get("kind")
    times = [float(t) for t in record.get("times", [0.0])]
    values = [float(v) for v in record.get("values", [0.0])]
    if kind == "utilization":
        metric = UtilizationTracker(
            capacity=record["capacity"], name=record["name"], t0=times[0]
        )
        metric.busy.times = times
        metric.busy.values = values
    elif kind in ("gauge", "counter"):
        cls = Counter if kind == "counter" else Gauge
        metric = cls(name=record["name"], t0=times[0], initial=values[0])
        metric.times = times
        metric.values = values
    else:
        raise ValueError(f"unknown metric kind {kind!r}")
    return metric


def read_jsonl(path) -> Tracer:
    """Load a JSONL trace file written by :func:`write_jsonl`."""
    with open(path) as fh:
        return tracer_from_jsonl(fh.read())
