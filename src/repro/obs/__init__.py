"""Unified observability layer: span tracing, metrics and trace queries.

Typical use::

    from repro.obs import enable_tracing
    from repro.obs.export import write_chrome_trace

    env = Environment()
    tracer = enable_tracing(env)
    ...  # build components, run the simulation
    conc = tracer.query().concurrency(category="entk.exec")
    write_chrome_trace(tracer, "run.trace.json")

Tracing is opt-in; without :func:`enable_tracing` every instrumentation
point hits the shared :data:`NULL_TRACER` and records nothing.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    P2Quantile,
    RunningStats,
    StreamingHistogram,
    UtilizationTracker,
    WindowedCounter,
    WindowedGauge,
)
from repro.obs.tracer import (
    NULL_METRIC,
    NULL_SPAN,
    NULL_TRACER,
    InMemorySink,
    Instant,
    NullTracer,
    Span,
    SpanSink,
    Tracer,
    enable_tracing,
    tracing_hook,
)
from repro.obs.query import TraceQuery
from repro.obs.export import (
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    tracer_from_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.analyze import (
    PHASES,
    CriticalPath,
    IdleGap,
    OnlineIdleGaps,
    OverheadDecomposition,
    PathSegment,
    Straggler,
    critical_path,
    decompose_overheads,
    find_idle_gaps,
    find_stragglers,
    pilot_components,
)
from repro.obs.alerts import (
    Alert,
    AlertReport,
    OnlineRuleEvaluator,
    OnlineViolations,
    Rule,
    RuleError,
    evaluate_rules,
)
from repro.obs.stream import (
    JsonlSpillSink,
    OnlineConcurrency,
    OnlineDurationStats,
    OnlineStragglers,
    SpanStub,
    StreamingAnalytics,
    StubSink,
    StubTrace,
    TeeSink,
    replay_jsonl,
    tracer_from_segments,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "P2Quantile",
    "RunningStats",
    "StreamingHistogram",
    "UtilizationTracker",
    "WindowedCounter",
    "WindowedGauge",
    "Instant",
    "Span",
    "SpanSink",
    "InMemorySink",
    "Tracer",
    "NullTracer",
    "NULL_METRIC",
    "NULL_SPAN",
    "NULL_TRACER",
    "enable_tracing",
    "tracing_hook",
    "TraceQuery",
    "to_chrome_trace",
    "to_jsonl",
    "tracer_from_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "PHASES",
    "CriticalPath",
    "PathSegment",
    "IdleGap",
    "OverheadDecomposition",
    "Straggler",
    "critical_path",
    "decompose_overheads",
    "find_idle_gaps",
    "find_stragglers",
    "pilot_components",
    "OnlineIdleGaps",
    "Alert",
    "AlertReport",
    "OnlineRuleEvaluator",
    "OnlineViolations",
    "Rule",
    "RuleError",
    "evaluate_rules",
    "SpanStub",
    "StubTrace",
    "StubSink",
    "JsonlSpillSink",
    "TeeSink",
    "OnlineConcurrency",
    "OnlineDurationStats",
    "OnlineStragglers",
    "StreamingAnalytics",
    "replay_jsonl",
    "tracer_from_segments",
]
