"""Unified observability layer: span tracing, metrics and trace queries.

Typical use::

    from repro.obs import enable_tracing
    from repro.obs.export import write_chrome_trace

    env = Environment()
    tracer = enable_tracing(env)
    ...  # build components, run the simulation
    conc = tracer.query().concurrency(category="entk.exec")
    write_chrome_trace(tracer, "run.trace.json")

Tracing is opt-in; without :func:`enable_tracing` every instrumentation
point hits the shared :data:`NULL_TRACER` and records nothing.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    UtilizationTracker,
)
from repro.obs.tracer import (
    NULL_METRIC,
    NULL_SPAN,
    NULL_TRACER,
    Instant,
    NullTracer,
    Span,
    Tracer,
    enable_tracing,
)
from repro.obs.query import TraceQuery
from repro.obs.export import (
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    tracer_from_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.analyze import (
    PHASES,
    CriticalPath,
    IdleGap,
    OverheadDecomposition,
    PathSegment,
    Straggler,
    critical_path,
    decompose_overheads,
    find_idle_gaps,
    find_stragglers,
    pilot_components,
)
from repro.obs.alerts import (
    Alert,
    AlertReport,
    Rule,
    RuleError,
    evaluate_rules,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "UtilizationTracker",
    "Instant",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_METRIC",
    "NULL_SPAN",
    "NULL_TRACER",
    "enable_tracing",
    "TraceQuery",
    "to_chrome_trace",
    "to_jsonl",
    "tracer_from_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "PHASES",
    "CriticalPath",
    "PathSegment",
    "IdleGap",
    "OverheadDecomposition",
    "Straggler",
    "critical_path",
    "decompose_overheads",
    "find_idle_gaps",
    "find_stragglers",
    "pilot_components",
    "Alert",
    "AlertReport",
    "Rule",
    "RuleError",
    "evaluate_rules",
]
