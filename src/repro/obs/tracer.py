"""Span-based tracing over simulated time.

A :class:`Tracer` collects :class:`Span` records — named intervals with
a category, an owning component, free-form tags and point-in-time
events — plus standalone :class:`Instant` markers and a
:class:`~repro.obs.metrics.MetricsRegistry`.  One tracer is threaded
through the whole stack via ``Environment.tracer``; every substrate
layer (kernel, resource managers, engines, EnTK, CWS, Atlas, JAWS)
writes into it, so a single trace can regenerate any of the paper's
figures after the run.

Tracing is **off by default and zero-cost when off**: environments
start with the stateless :data:`NULL_TRACER`, whose methods are no-ops
returning a shared null span.  Call :func:`enable_tracing` to install a
real tracer.

Determinism: span ids are sequential per tracer, timestamps come from
the simulated clock, and no wall-clock or hash-ordered state is ever
recorded — identical seeds produce identical traces byte for byte.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry


class Span:
    """One traced interval.

    Spans are context managers for synchronous sections::

        with tracer.span("bind", category="rm.pod", component="kube") as s:
            s.tag(node=node.id)

    For intervals that cross process switches (almost everything in a
    DES), call :meth:`Tracer.start` and :meth:`finish` explicitly.
    Children must be contained in their parent's interval; the
    instrumentation in :mod:`repro` guarantees this and the exporters
    rely on it.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "component",
        "tags",
        "start",
        "end",
        "events",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        category: str,
        component: str,
        tags: Optional[dict],
        start: float,
        parent_id: Optional[int] = None,
    ):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.component = component
        self.tags = dict(tags) if tags else {}
        self.start = float(start)
        self.end: Optional[float] = None
        #: Point events inside the span: ``(t, name, attrs)`` tuples.
        self.events: list[tuple] = []

    # -- recording -----------------------------------------------------------

    def tag(self, **tags) -> "Span":
        """Attach key/value tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    def event(self, name: str, t: Optional[float] = None, **attrs) -> "Span":
        """Record a point event inside the span."""
        self.events.append(
            (self._tracer.now() if t is None else float(t), name, attrs)
        )
        return self

    def finish(self, t: Optional[float] = None) -> "Span":
        """Close the span (idempotent; the first close wins)."""
        if self.end is None:
            end = self._tracer.now() if t is None else float(t)
            if end < self.start:
                raise ValueError(
                    f"Span {self.name!r} ends at {end} before its "
                    f"start {self.start}"
                )
            self.end = end
        return self

    # -- inspection -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def overlaps(self, t0: float, t1: float) -> bool:
        """Whether the span's interval intersects ``[t0, t1]``."""
        end = self.end if self.end is not None else float("inf")
        return self.start <= t1 and end >= t0

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.tag(error=repr(exc))
        self.finish()
        return False

    def __repr__(self) -> str:
        dur = f"{self.duration:.3f}s" if self.end is not None else "open"
        return (
            f"<Span #{self.span_id} {self.category}:{self.name!r} "
            f"@{self.component} {dur}>"
        )


class Instant:
    """A standalone point event (e.g. one scheduling decision)."""

    __slots__ = ("t", "name", "category", "component", "tags")

    def __init__(self, t, name, category, component, tags):
        self.t = float(t)
        self.name = name
        self.category = category
        self.component = component
        self.tags = dict(tags) if tags else {}

    def __repr__(self) -> str:
        return f"<Instant {self.category}:{self.name!r} t={self.t}>"


class Tracer:
    """Collects spans, instants and metrics for one run.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current (simulated) time.
        :func:`enable_tracing` wires this to ``env.now``.
    trace_kernel:
        Also record a span per simulation process (category
        ``kernel.process``).  Off by default — kernel spans are high
        volume and only useful when debugging the substrate itself.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        trace_kernel: bool = False,
    ):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.trace_kernel = trace_kernel
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.metrics = MetricsRegistry()
        self._next_id = 0

    def now(self) -> float:
        return self._clock()

    # -- recording -----------------------------------------------------------

    def start(
        self,
        name: str,
        category: str = "",
        component: str = "",
        tags: Optional[dict] = None,
        parent: Optional[Span] = None,
        t: Optional[float] = None,
    ) -> Span:
        """Open a new span starting now (or at explicit ``t``)."""
        span = Span(
            self,
            span_id=self._next_id,
            name=name,
            category=category,
            component=component,
            tags=tags,
            start=self.now() if t is None else float(t),
            parent_id=parent.span_id if parent is not None else None,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    #: Alias reading naturally in ``with tracer.span(...)`` blocks.
    span = start

    def instant(
        self,
        name: str,
        category: str = "",
        component: str = "",
        tags: Optional[dict] = None,
        t: Optional[float] = None,
    ) -> Instant:
        """Record a standalone point event."""
        inst = Instant(
            self.now() if t is None else t, name, category, component, tags
        )
        self.instants.append(inst)
        return inst

    # -- post-run access -------------------------------------------------------

    def query(self) -> "TraceQuery":
        """A :class:`~repro.obs.query.TraceQuery` over this trace."""
        from repro.obs.query import TraceQuery

        return TraceQuery(self)

    def open_spans(self) -> list:
        return [s for s in self.spans if s.end is None]

    def __repr__(self) -> str:
        return (
            f"<Tracer spans={len(self.spans)} instants={len(self.instants)} "
            f"metrics={len(self.metrics)}>"
        )


class _NullSpan:
    """Shared, stateless no-op span."""

    __slots__ = ()

    def tag(self, **tags):
        return self

    def event(self, name, t=None, **attrs):
        return self

    def finish(self, t=None):
        return self

    finished = True
    duration = 0.0
    span_id = -1
    parent_id = None
    events = ()
    tags: dict = {}

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:
        return "<NullSpan>"


class _NullMetric:
    """Accepts every metric call, records nothing."""

    __slots__ = ()
    name = ""
    kind = "null"

    def record(self, t, value):
        pass

    set = record

    def increment(self, t, delta=1.0):
        pass

    def inc(self, t, n=1.0):
        pass

    def acquire(self, t, amount=1.0):
        pass

    def release(self, t, amount=1.0):
        pass

    def __repr__(self) -> str:
        return "<NullMetric>"


class _NullRegistry:
    """Hands out null metrics; registration is a no-op."""

    __slots__ = ()

    def counter(self, name, component="", t0=0.0):
        return NULL_METRIC

    def gauge(self, name, component="", initial=0.0, t0=0.0):
        return NULL_METRIC

    def utilization(self, name, capacity, component="", t0=0.0):
        return NULL_METRIC

    def register(self, metric, component=""):
        pass

    def items(self):
        return []

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "<NullRegistry>"


class NullTracer:
    """The default tracer: every operation is a no-op.

    Stateless and shared (:data:`NULL_TRACER`), so an un-traced run
    pays one attribute read plus one no-op call per instrumentation
    point — within measurement noise even at Frontier scale.
    """

    __slots__ = ()
    enabled = False
    trace_kernel = False
    spans: tuple = ()
    instants: tuple = ()
    metrics = _NullRegistry()

    def now(self) -> float:
        return 0.0

    def start(self, name, category="", component="", tags=None, parent=None, t=None):
        return NULL_SPAN

    span = start

    def instant(self, name, category="", component="", tags=None, t=None):
        return None

    def query(self):
        raise RuntimeError(
            "Tracing is disabled; call repro.obs.enable_tracing(env) "
            "before the run to record a trace"
        )

    def open_spans(self) -> list:
        return []

    def __repr__(self) -> str:
        return "<NullTracer>"


NULL_SPAN = _NullSpan()
NULL_METRIC = _NullMetric()
NULL_TRACER = NullTracer()


def enable_tracing(env, trace_kernel: bool = False) -> Tracer:
    """Install a real tracer on ``env`` (any object with ``.now``).

    Returns the tracer; it is also reachable as ``env.tracer`` from
    every component holding the environment.
    """
    tracer = Tracer(clock=lambda: env.now, trace_kernel=trace_kernel)
    env.tracer = tracer
    return tracer
