"""Span-based tracing over simulated time.

A :class:`Tracer` collects :class:`Span` records — named intervals with
a category, an owning component, free-form tags and point-in-time
events — plus standalone :class:`Instant` markers and a
:class:`~repro.obs.metrics.MetricsRegistry`.  One tracer is threaded
through the whole stack via ``Environment.tracer``; every substrate
layer (kernel, resource managers, engines, EnTK, CWS, Atlas, JAWS)
writes into it, so a single trace can regenerate any of the paper's
figures after the run.

Tracing is **off by default and zero-cost when off**: environments
start with the stateless :data:`NULL_TRACER`, whose methods are no-ops
returning a shared null span.  Call :func:`enable_tracing` to install a
real tracer.

Determinism: span ids are sequential per tracer, timestamps come from
the simulated clock, and no wall-clock or hash-ordered state is ever
recorded — identical seeds produce identical traces byte for byte.

Storage is pluggable via the :class:`SpanSink` protocol: the default
:class:`InMemorySink` keeps the historical ``tracer.spans`` list (and
the byte-identical golden digests that rest on it), while
:class:`repro.obs.stream.JsonlSpillSink` spills finished spans to
segmented JSONL files so million-span runs stay constant-memory.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry


class SpanSink:
    """Receiver of span/instant lifecycle callbacks from a tracer.

    Subclass and override what you need; every hook is a no-op by
    default.  A sink is attached to exactly one tracer (``attach`` is
    called from ``Tracer.__init__``), and the tracer guarantees:

    - ``on_start(span)`` exactly once per span, at creation;
    - ``on_finish(span)`` exactly once per span, at its *first*
      ``finish()`` (never for spans still open at end of run);
    - ``on_instant(instant)`` per standalone point event;
    - ``close()`` once, from ``Tracer.close()`` — flush buffers and
      drain still-open spans here.
    """

    tracer: Optional["Tracer"] = None

    def attach(self, tracer: "Tracer") -> None:
        self.tracer = tracer

    def on_start(self, span: "Span") -> None:
        pass

    def on_finish(self, span: "Span") -> None:
        pass

    def on_instant(self, instant: "Instant") -> None:
        pass

    def close(self) -> None:
        pass


class InMemorySink(SpanSink):
    """The default sink: retain every span and instant in lists.

    This is the historical ``Tracer`` behaviour factored behind the
    sink protocol — ``tracer.spans`` / ``tracer.instants`` delegate to
    these lists, creation order is preserved, and the JSONL/Chrome
    exporters read them unchanged, so golden digests are byte-identical
    to the pre-sink layout.
    """

    def __init__(self):
        self.spans: list[Span] = []
        self.instants: list[Instant] = []

    def on_start(self, span: "Span") -> None:
        self.spans.append(span)

    def on_instant(self, instant: "Instant") -> None:
        self.instants.append(instant)


class Span:
    """One traced interval.

    Spans are context managers for synchronous sections::

        with tracer.span("bind", category="rm.pod", component="kube") as s:
            s.tag(node=node.id)

    For intervals that cross process switches (almost everything in a
    DES), call :meth:`Tracer.start` and :meth:`finish` explicitly.
    Children must be contained in their parent's interval; the
    instrumentation in :mod:`repro` guarantees this and the exporters
    rely on it.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "component",
        "tags",
        "start",
        "end",
        "events",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        name: str,
        category: str,
        component: str,
        tags: Optional[dict],
        start: float,
        parent_id: Optional[int] = None,
    ):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.component = component
        self.tags = dict(tags) if tags else {}
        self.start = float(start)
        self.end: Optional[float] = None
        #: Point events inside the span: ``(t, name, attrs)`` tuples.
        self.events: list[tuple] = []

    # -- recording -----------------------------------------------------------

    def tag(self, **tags) -> "Span":
        """Attach key/value tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    def event(self, name: str, t: Optional[float] = None, **attrs) -> "Span":
        """Record a point event inside the span."""
        self.events.append(
            (self._tracer.now() if t is None else float(t), name, attrs)
        )
        return self

    def finish(self, t: Optional[float] = None) -> "Span":
        """Close the span (idempotent; the first close wins)."""
        if self.end is None:
            end = self._tracer.now() if t is None else float(t)
            if end < self.start:
                raise ValueError(
                    f"Span {self.name!r} ends at {end} before its "
                    f"start {self.start}"
                )
            self.end = end
            self._tracer._span_finished(self)
        return self

    # -- inspection -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def overlaps(self, t0: float, t1: float) -> bool:
        """Whether the span's interval intersects ``[t0, t1]``."""
        end = self.end if self.end is not None else float("inf")
        return self.start <= t1 and end >= t0

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.tag(error=repr(exc))
        self.finish()
        return False

    def __repr__(self) -> str:
        dur = f"{self.duration:.3f}s" if self.end is not None else "open"
        return (
            f"<Span #{self.span_id} {self.category}:{self.name!r} "
            f"@{self.component} {dur}>"
        )


class Instant:
    """A standalone point event (e.g. one scheduling decision)."""

    __slots__ = ("t", "name", "category", "component", "tags")

    def __init__(self, t, name, category, component, tags):
        self.t = float(t)
        self.name = name
        self.category = category
        self.component = component
        self.tags = dict(tags) if tags else {}

    def __repr__(self) -> str:
        return f"<Instant {self.category}:{self.name!r} t={self.t}>"


class Tracer:
    """Collects spans, instants and metrics for one run.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current (simulated) time.
        :func:`enable_tracing` wires this to ``env.now``.
    trace_kernel:
        Also record a span per simulation process (category
        ``kernel.process``).  Off by default — kernel spans are high
        volume and only useful when debugging the substrate itself.
    sink:
        Span storage (:class:`SpanSink`).  Defaults to a fresh
        :class:`InMemorySink`; pass a
        :class:`repro.obs.stream.JsonlSpillSink` (or a ``TeeSink``
        combining several) for constant-memory runs.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        trace_kernel: bool = False,
        sink: Optional[SpanSink] = None,
    ):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.trace_kernel = trace_kernel
        self.sink = sink if sink is not None else InMemorySink()
        self.metrics = MetricsRegistry()
        self._next_id = 0
        self._n_instants = 0
        #: Live open-span index: span_id -> span, insertion (= id)
        #: ordered, updated on start/finish so ``open_spans`` is O(open)
        #: instead of a scan over the whole trace.
        self._open: dict[int, Span] = {}
        self._closed = False
        attach = getattr(self.sink, "attach", None)
        if callable(attach):
            attach(self)

    def now(self) -> float:
        return self._clock()

    @property
    def spans(self) -> list:
        """The retained span list (in-memory sinks only).

        Sinks that do not retain spans (e.g. the spill sink) have no
        list to expose; analyze such runs through the sink's own API or
        by reloading its segments with
        :func:`repro.obs.export.tracer_from_jsonl`.
        """
        spans = getattr(self.sink, "spans", None)
        if spans is None:
            raise RuntimeError(
                f"{type(self.sink).__name__} does not retain spans in "
                "memory; use the sink/stream APIs (repro.obs.stream) or "
                "reload its JSONL segments"
            )
        return spans

    @property
    def instants(self) -> list:
        instants = getattr(self.sink, "instants", None)
        if instants is None:
            raise RuntimeError(
                f"{type(self.sink).__name__} does not retain instants "
                "in memory; use the sink/stream APIs (repro.obs.stream)"
            )
        return instants

    # -- recording -----------------------------------------------------------

    def start(
        self,
        name: str,
        category: str = "",
        component: str = "",
        tags: Optional[dict] = None,
        parent: Optional[Span] = None,
        t: Optional[float] = None,
    ) -> Span:
        """Open a new span starting now (or at explicit ``t``)."""
        span = Span(
            self,
            span_id=self._next_id,
            name=name,
            category=category,
            component=component,
            tags=tags,
            start=self.now() if t is None else float(t),
            parent_id=parent.span_id if parent is not None else None,
        )
        self._next_id += 1
        self._open[span.span_id] = span
        self.sink.on_start(span)
        return span

    #: Alias reading naturally in ``with tracer.span(...)`` blocks.
    span = start

    def instant(
        self,
        name: str,
        category: str = "",
        component: str = "",
        tags: Optional[dict] = None,
        t: Optional[float] = None,
    ) -> Instant:
        """Record a standalone point event."""
        inst = Instant(
            self.now() if t is None else t, name, category, component, tags
        )
        self._n_instants += 1
        self.sink.on_instant(inst)
        return inst

    # -- sink plumbing ---------------------------------------------------------

    def _span_finished(self, span: Span) -> None:
        """Called by :meth:`Span.finish` exactly once per span."""
        self._open.pop(span.span_id, None)
        self.sink.on_finish(span)

    def _adopt(self, span: Span) -> None:
        """Register an externally constructed span (trace loaders).

        Routes the span through the sink protocol as if it had been
        started (and, when already closed, finished) by this tracer, and
        keeps the open-span index and id counter consistent.
        """
        self._next_id = max(self._next_id, span.span_id + 1)
        self.sink.on_start(span)
        if span.end is None:
            self._open[span.span_id] = span
        else:
            self.sink.on_finish(span)

    def restore_counters(self, next_id: int, n_instants: int = 0) -> None:
        """Reset the id/instant counters to a checkpointed position.

        Used by :mod:`repro.ckpt` native resume: a restored run must
        hand out the *same* span ids the uninterrupted run would have,
        or the resumed trace diverges byte-wise from the golden digest.
        """
        self._next_id = int(next_id)
        self._n_instants = int(n_instants)

    def close(self) -> None:
        """Flush and close the sink (idempotent).

        In-memory runs never need this; spill sinks require it so
        still-open spans and buffered segments reach disk.
        """
        if self._closed:
            return
        self._closed = True
        self.sink.close()

    # -- post-run access -------------------------------------------------------

    def query(self) -> "TraceQuery":
        """A :class:`~repro.obs.query.TraceQuery` over this trace."""
        from repro.obs.query import TraceQuery

        return TraceQuery(self)

    def open_spans(self) -> list:
        return list(self._open.values())

    def __repr__(self) -> str:
        return (
            f"<Tracer spans={self._next_id} instants={self._n_instants} "
            f"metrics={len(self.metrics)}>"
        )


class _NullSpan:
    """Shared, stateless no-op span."""

    __slots__ = ()

    def tag(self, **tags):
        return self

    def event(self, name, t=None, **attrs):
        return self

    def finish(self, t=None):
        return self

    finished = True
    duration = 0.0
    span_id = -1
    parent_id = None
    events = ()
    tags: dict = {}

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:
        return "<NullSpan>"


class _NullMetric:
    """Accepts every metric call, records nothing."""

    __slots__ = ()
    name = ""
    kind = "null"

    def record(self, t, value):
        pass

    set = record

    def increment(self, t, delta=1.0):
        pass

    def inc(self, t, n=1.0):
        pass

    def acquire(self, t, amount=1.0):
        pass

    def release(self, t, amount=1.0):
        pass

    def __repr__(self) -> str:
        return "<NullMetric>"


class _NullRegistry:
    """Hands out null metrics; registration is a no-op."""

    __slots__ = ()

    def counter(self, name, component="", t0=0.0):
        return NULL_METRIC

    def gauge(self, name, component="", initial=0.0, t0=0.0):
        return NULL_METRIC

    def utilization(self, name, capacity, component="", t0=0.0):
        return NULL_METRIC

    def register(self, metric, component=""):
        pass

    def items(self):
        return []

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "<NullRegistry>"


class NullTracer:
    """The default tracer: every operation is a no-op.

    Stateless and shared (:data:`NULL_TRACER`), so an un-traced run
    pays one attribute read plus one no-op call per instrumentation
    point — within measurement noise even at Frontier scale.
    """

    __slots__ = ()
    enabled = False
    trace_kernel = False
    spans: tuple = ()
    instants: tuple = ()
    sink = None
    metrics = _NullRegistry()

    def now(self) -> float:
        return 0.0

    def start(self, name, category="", component="", tags=None, parent=None, t=None):
        return NULL_SPAN

    span = start

    def instant(self, name, category="", component="", tags=None, t=None):
        return None

    def query(self):
        raise RuntimeError(
            "Tracing is disabled; call repro.obs.enable_tracing(env) "
            "before the run to record a trace"
        )

    def open_spans(self) -> list:
        return []

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullTracer>"


NULL_SPAN = _NullSpan()
NULL_METRIC = _NullMetric()
NULL_TRACER = NullTracer()


#: Active :func:`tracing_hook` callbacks, fired by :func:`enable_tracing`.
_TRACING_HOOKS: list = []


@contextmanager
def tracing_hook(hook):
    """Intercept :func:`enable_tracing` calls made inside the block.

    ``hook(env, sink)`` runs before the tracer is constructed and may
    return a replacement :class:`SpanSink` (or ``None`` to keep the one
    already chosen).  This is how the checkpoint runner wraps a
    scenario's tracer in a spill + snapshot-trigger tee without the
    scenario knowing — scenario builders keep their single plain
    ``enable_tracing(env)`` call.  Hooks compose: each sees the sink the
    previous one produced.
    """
    _TRACING_HOOKS.append(hook)
    try:
        yield hook
    finally:
        _TRACING_HOOKS.remove(hook)


def enable_tracing(
    env, trace_kernel: bool = False, sink: Optional[SpanSink] = None
) -> Tracer:
    """Install a real tracer on ``env`` (any object with ``.now``).

    Returns the tracer; it is also reachable as ``env.tracer`` from
    every component holding the environment.  ``sink`` overrides the
    default in-memory span storage (see :class:`SpanSink`), and any
    active :func:`tracing_hook` may override it again.
    """
    for hook in list(_TRACING_HOOKS):
        replacement = hook(env, sink)
        if replacement is not None:
            sink = replacement
    tracer = Tracer(clock=lambda: env.now, trace_kernel=trace_kernel, sink=sink)
    env.tracer = tracer
    return tracer
