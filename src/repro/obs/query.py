"""Post-run queries over a recorded trace.

The query API turns raw spans back into the derived series the paper's
figures plot, replacing bespoke recorders:

- :meth:`TraceQuery.concurrency` — number of spans open at each moment
  (Fig 5's scheduled/executing curves),
- :meth:`TraceQuery.busy` / :meth:`TraceQuery.utilization` — capacity
  occupancy weighted by a tag (Fig 4's core utilization),
- :meth:`TraceQuery.spans` / :meth:`TraceQuery.instants` — filtered
  access by category, component, name, time window and tags.

Derived series are :class:`~repro.obs.metrics.Gauge` objects, so they
carry the same integration/resampling toolkit the live monitors have —
and, by construction, a concurrency gauge derived from spans equals the
series a live ``TimeSeriesMonitor`` incremented at the same times would
have recorded.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Optional, Sequence, Union

from repro.obs.metrics import Gauge
from repro.obs.tracer import Instant, Span, Tracer


class TraceQuery:
    """Filterable view over one tracer's spans and instants."""

    def __init__(self, tracer: Tracer):
        self.tracer = tracer

    # -- filtered access -------------------------------------------------------

    def spans(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        name: Optional[str] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        tags: Optional[dict] = None,
    ) -> list[Span]:
        """Spans matching every given filter, in start order.

        ``t0``/``t1`` select spans whose interval *overlaps* the
        window; open spans extend to +inf.
        """
        lo = float("-inf") if t0 is None else t0
        hi = float("inf") if t1 is None else t1
        out = []
        for s in self.tracer.spans:
            if category is not None and s.category != category:
                continue
            if component is not None and s.component != component:
                continue
            if name is not None and s.name != name:
                continue
            if not s.overlaps(lo, hi):
                continue
            if tags is not None and any(
                s.tags.get(k) != v for k, v in tags.items()
            ):
                continue
            out.append(s)
        return sorted(out, key=lambda s: (s.start, s.span_id))

    def instants(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        name: Optional[str] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        tags: Optional[dict] = None,
    ) -> list[Instant]:
        lo = float("-inf") if t0 is None else t0
        hi = float("inf") if t1 is None else t1
        out = []
        for i in self.tracer.instants:
            if category is not None and i.category != category:
                continue
            if component is not None and i.component != component:
                continue
            if name is not None and i.name != name:
                continue
            if not (lo <= i.t <= hi):
                continue
            if tags is not None and any(
                i.tags.get(k) != v for k, v in tags.items()
            ):
                continue
            out.append(i)
        return out

    def categories(self) -> list[str]:
        return sorted(
            {s.category for s in self.tracer.spans}
            | {i.category for i in self.tracer.instants}
        )

    def category_counts(
        self, finished_only: bool = True, exclude: Sequence[str] = ()
    ) -> dict[str, int]:
        """``category -> span count`` in sorted category order.

        ``finished_only`` skips still-open spans; ``exclude`` drops
        container categories (the report uses this to pick the busiest
        *leaf* category for straggler hunting).
        """
        excluded = frozenset(exclude)
        counts: dict[str, int] = {}
        for s in self.tracer.spans:
            if finished_only and s.end is None:
                continue
            if s.category in excluded:
                continue
            counts[s.category] = counts.get(s.category, 0) + 1
        return {c: counts[c] for c in sorted(counts)}

    def components(self) -> list[str]:
        return sorted(
            {s.component for s in self.tracer.spans}
            | {i.component for i in self.tracer.instants}
        )

    def children_of(self, span: Span) -> list[Span]:
        return sorted(
            (s for s in self.tracer.spans if s.parent_id == span.span_id),
            key=lambda s: (s.start, s.span_id),
        )

    # -- derived series --------------------------------------------------------

    def concurrency(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        name: Optional[str] = None,
        tags: Optional[dict] = None,
        t0: Optional[float] = None,
        weight: Union[None, str, Callable[[Span], float]] = None,
        series_name: str = "concurrency",
    ) -> Gauge:
        """Step series of how many matching spans are open over time.

        ``weight`` turns the count into a weighted sum: a tag name
        (numeric tag value per span) or a callable ``span -> float``
        (e.g. cores held).  ``t0`` anchors the series start (defaults
        to the earliest matching span start).  Open spans are treated
        as never closing.

        The result is exactly the series a live
        :class:`~repro.simkernel.monitor.TimeSeriesMonitor` would hold
        after ``increment(+w)`` at every span start and ``-w`` at every
        span end, including the collapse of same-time changes.
        """
        matched = self.spans(
            category=category, component=component, name=name, tags=tags
        )
        if weight is None:
            weigh = lambda s: 1.0  # noqa: E731
        elif callable(weight):
            weigh = weight
        else:
            weigh = lambda s, _k=weight: float(s.tags.get(_k, 0.0))  # noqa: E731

        deltas: dict[float, float] = defaultdict(float)
        for s in matched:
            w = weigh(s)
            deltas[s.start] += w
            if s.end is not None:
                deltas[s.end] -= w
        if t0 is None:
            t0 = min(deltas) if deltas else 0.0
        gauge = Gauge(name=series_name, initial=0.0, t0=t0)
        level = 0.0
        for t in sorted(deltas):
            if t < t0:
                raise ValueError(
                    f"span change at t={t} precedes series origin t0={t0}"
                )
            level += deltas[t]
            gauge.record(t, level)
        return gauge

    def busy(
        self,
        weight: Union[str, Callable[[Span], float]],
        category: Optional[str] = None,
        component: Optional[str] = None,
        tags: Optional[dict] = None,
        t0: Optional[float] = None,
    ) -> Gauge:
        """Capacity-units-in-use series (concurrency weighted by tag)."""
        return self.concurrency(
            category=category,
            component=component,
            tags=tags,
            t0=t0,
            weight=weight,
            series_name="busy",
        )

    def utilization(
        self,
        capacity: float,
        weight: Union[str, Callable[[Span], float]],
        category: Optional[str] = None,
        component: Optional[str] = None,
        tags: Optional[dict] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> float:
        """Busy integral / (capacity × window) — the Fig 4 number.

        ``weight`` gives each span's held capacity (tag name or
        callable); the window defaults to the busy series' extent.
        """
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        series = self.busy(
            weight, category=category, component=component, tags=tags, t0=t0
        )
        start = series.times[0] if t0 is None else t0
        end = series.times[-1] if t1 is None else t1
        span = end - start
        if span <= 0:
            return 0.0
        return series.integral(end) / (capacity * span)

    # -- aggregate statistics ----------------------------------------------------

    def durations(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        name: Optional[str] = None,
        tags: Optional[dict] = None,
    ) -> list[float]:
        """Durations of finished matching spans, in start order."""
        return [
            s.duration
            for s in self.spans(
                category=category, component=component, name=name, tags=tags
            )
            if s.end is not None
        ]

    def count(self, **filters) -> int:
        return len(self.spans(**filters))

    def __repr__(self) -> str:
        return f"<TraceQuery over {self.tracer!r}>"
