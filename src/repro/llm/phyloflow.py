"""Phyloflow's four data-processing steps, implemented for real.

The paper treats these as opaque Parsl apps; we implement working
small-scale versions so the NL-driven workflow produces verifiable
scientific output:

1. :func:`vcf_transform` — parse a (minimal) VCF and emit the
   pyclone-vi input table of mutation read counts.
2. :func:`pyclone_vi` — cluster mutations by cancer-cell fraction with
   a seeded 1-D k-means (the mutation-clustering role of pyclone-vi).
3. :func:`spruce_format` — reshape cluster statistics into the SPRUCE
   input table.
4. :func:`spruce_phylogeny` — build a tumor phylogeny under the
   infinite-sites containment rule (a parent clone's cell fraction
   must contain its children's) and emit the JSON the paper's final
   task produces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def make_synthetic_vcf(
    n_mutations: int = 60,
    n_clones: int = 3,
    depth: int = 200,
    seed: int = 0,
) -> str:
    """Generate VCF text for a synthetic tumor with ``n_clones`` clones.

    Clones have distinct cancer-cell fractions; each mutation's variant
    allele frequency is CCF/2 (diploid heterozygous) plus binomial
    sampling noise at the given read depth.
    """
    if n_mutations < n_clones:
        raise ValueError("need at least one mutation per clone")
    rng = np.random.default_rng(seed)
    ccfs = np.sort(rng.uniform(0.15, 0.95, size=n_clones))[::-1]
    lines = [
        "##fileformat=VCFv4.2",
        "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO",
    ]
    for i in range(n_mutations):
        clone = i % n_clones
        vaf = ccfs[clone] / 2.0
        alt_reads = rng.binomial(depth, vaf)
        chrom = f"chr{1 + i % 22}"
        pos = 10_000 + i * 137
        lines.append(
            f"{chrom}\t{pos}\tmut{i:04d}\tA\tT\t99\tPASS\t"
            f"DP={depth};AD={alt_reads};CLONE={clone}"
        )
    return "\n".join(lines) + "\n"


def vcf_transform(vcf_text: str) -> list:
    """Parse VCF text into pyclone-vi input rows.

    Returns a list of dicts: ``mutation_id``, ``ref_counts``,
    ``alt_counts``, ``vaf``.  Raises on malformed records.
    """
    rows = []
    for lineno, line in enumerate(vcf_text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) < 8:
            raise ValueError(f"VCF line {lineno}: expected 8 columns, got {len(fields)}")
        info = dict(
            kv.split("=", 1) for kv in fields[7].split(";") if "=" in kv
        )
        try:
            depth = int(info["DP"])
            alt = int(info["AD"])
        except (KeyError, ValueError) as exc:
            raise ValueError(f"VCF line {lineno}: missing DP/AD counts") from exc
        if alt > depth:
            raise ValueError(f"VCF line {lineno}: AD={alt} exceeds DP={depth}")
        rows.append(
            {
                "mutation_id": fields[2],
                "ref_counts": depth - alt,
                "alt_counts": alt,
                "vaf": alt / depth if depth else 0.0,
            }
        )
    if not rows:
        raise ValueError("VCF contained no variant records")
    return rows


def pyclone_vi(
    mutations: list,
    n_clusters: int = 3,
    max_iter: int = 100,
    seed: int = 0,
) -> list:
    """Cluster mutations by cancer-cell fraction (CCF = 2 × VAF).

    Seeded 1-D k-means with quantile initialization (deterministic).
    Returns cluster dicts: ``cluster_id``, ``ccf`` (mean), ``n_mutations``,
    ``mutation_ids``.
    """
    if not mutations:
        raise ValueError("no mutations to cluster")
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    n_clusters = min(n_clusters, len(mutations))
    ccf = np.clip(2.0 * np.array([m["vaf"] for m in mutations]), 0.0, 1.0)
    centers = np.quantile(ccf, np.linspace(0.1, 0.9, n_clusters))
    assign = np.zeros(len(ccf), dtype=int)
    for _ in range(max_iter):
        new_assign = np.argmin(np.abs(ccf[:, None] - centers[None, :]), axis=1)
        if (new_assign == assign).all():
            break
        assign = new_assign
        for k in range(n_clusters):
            members = ccf[assign == k]
            if members.size:
                centers[k] = members.mean()
    # Order clusters by descending CCF (clonal first).
    order = np.argsort(-centers)
    clusters = []
    for new_id, k in enumerate(order):
        members = [m for m, a in zip(mutations, assign) if a == k]
        if not members:
            continue
        clusters.append(
            {
                "cluster_id": new_id,
                "ccf": float(np.mean([2 * m["vaf"] for m in members]).clip(0, 1)),
                "n_mutations": len(members),
                "mutation_ids": [m["mutation_id"] for m in members],
            }
        )
    return clusters


def spruce_format(clusters: list) -> list:
    """Reshape cluster output into SPRUCE input rows."""
    if not clusters:
        raise ValueError("no clusters to format")
    rows = []
    for c in clusters:
        rows.append(
            {
                "character_index": c["cluster_id"],
                "character_label": f"cluster{c['cluster_id']}",
                "cell_fraction": c["ccf"],
                "mutation_count": c["n_mutations"],
            }
        )
    return rows


def spruce_phylogeny(spruce_rows: list, noise_scale: float = 0.02) -> dict:
    """Build a phylogeny under the infinite-sites containment rule.

    Clones sorted by descending cell fraction; each clone attaches to
    the placed clone with the *tightest remaining capacity* that can
    still contain it (the sum of a parent's children's fractions may
    not exceed the parent's).  With single-sample fractions a valid
    nesting always exists; the informative output is which parent each
    clone picks (chain vs branching) plus a **confidence** score from
    how well separated the cluster fractions are — nearly-equal
    fractions could be ordered either way by noise, so confidence is
    ``min_gap / (min_gap + noise_scale)``.
    """
    if not spruce_rows:
        raise ValueError("no SPRUCE rows")
    if noise_scale <= 0:
        raise ValueError("noise_scale must be positive")
    rows = sorted(spruce_rows, key=lambda r: -r["cell_fraction"])
    nodes = [
        {
            "id": int(r["character_index"]),
            "label": r["character_label"],
            "cell_fraction": float(r["cell_fraction"]),
            "mutations": int(r["mutation_count"]),
        }
        for r in rows
    ]
    edges = []
    # Remaining capacity of each placed clone.
    capacity = {nodes[0]["id"]: nodes[0]["cell_fraction"]}
    for node in nodes[1:]:
        # Candidate parents that can contain this clone, tightest first.
        # A fitting parent always exists: the previously placed clone's
        # capacity equals its own fraction >= this clone's fraction.
        cap, parent = min(
            (cap, pid)
            for pid, cap in capacity.items()
            if cap >= node["cell_fraction"] - 1e-9
        )
        capacity[parent] -= node["cell_fraction"]
        capacity[node["id"]] = node["cell_fraction"]
        edges.append({"parent": parent, "child": node["id"]})
    fractions = [n["cell_fraction"] for n in nodes]
    if len(fractions) > 1:
        min_gap = min(a - b for a, b in zip(fractions, fractions[1:]))
        confidence = min_gap / (min_gap + noise_scale)
    else:
        confidence = 1.0
    return {
        "nodes": nodes,
        "edges": edges,
        "root": nodes[0]["id"],
        "n_clones": len(nodes),
        "confidence": max(0.0, confidence),
    }
