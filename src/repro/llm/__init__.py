"""LLM-driven workflow composition (§2).

Reproduces the lightning talk's two artifacts:

- **§2.1 prototype** — Phyloflow driven end-to-end through an OpenAI-
  style function-calling API: Parsl apps wrapped in
  ``function_call_from_file`` / ``function_call_from_futures``
  adapters, JSON function schemas, a chat loop that feeds function
  results (AppFuture IDs) back as user messages, and a stop flag.
- **Fig 1 architecture** — planner / executor / debugger agents
  collaborating to execute a natural-language description, with a
  human gate when the debugger gives up.

The LLM itself is substituted with a deterministic rule-based
function-calling model (:class:`MockFunctionCallingLLM`): it receives
exactly the same inputs a hosted model would (schemas + messages) and
emits the same outputs (function-call choices / stop), so every
adapter and driver code path is exercised reproducibly offline.
Phyloflow's four steps are implemented for real at toy scale
(:mod:`repro.llm.phyloflow`), so the workflow produces a checkable
phylogeny JSON.
"""

from repro.llm.protocol import (
    ChatResponse,
    FunctionCall,
    FunctionSchema,
    Message,
)
from repro.llm.mockllm import (
    ContextLimitExceeded,
    MockFunctionCallingLLM,
    estimate_tokens,
)
from repro.llm.adapters import PhyloflowAdapters
from repro.llm.hierarchy import (
    FunctionGroup,
    HierarchicalChatDriver,
    HierarchicalResult,
    PHYLOFLOW_GROUPS,
)
from repro.llm.driver import ChatWorkflowDriver, DriverResult
from repro.llm.agents import (
    AgentWorkflowEngine,
    Debugger,
    Executor,
    Plan,
    Planner,
    PlanStep,
)
from repro.llm.phyloflow import (
    make_synthetic_vcf,
    pyclone_vi,
    spruce_format,
    spruce_phylogeny,
    vcf_transform,
)

__all__ = [
    "AgentWorkflowEngine",
    "ChatResponse",
    "ChatWorkflowDriver",
    "ContextLimitExceeded",
    "Debugger",
    "DriverResult",
    "Executor",
    "FunctionCall",
    "FunctionGroup",
    "FunctionSchema",
    "HierarchicalChatDriver",
    "HierarchicalResult",
    "Message",
    "MockFunctionCallingLLM",
    "PHYLOFLOW_GROUPS",
    "estimate_tokens",
    "PhyloflowAdapters",
    "Plan",
    "PlanStep",
    "Planner",
    "make_synthetic_vcf",
    "pyclone_vi",
    "spruce_format",
    "spruce_phylogeny",
    "vcf_transform",
]
