"""The iterated chat loop of §2.1.

"A predefined context is added [...] With this context and the user's
message, the request to the API is made.  The API responds with its
choice of function to call.  The function is executed, immediately
returning the ID linked to the AppFuture.  For the next API request,
two new messages are added [the function-call choice and a user
message with the new ID].  This process is repeated until the stop
flag is found in the API response."

Errors are forwarded back to the model as user messages — the
improvement §2.1 names as its first limitation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.llm.adapters import AdapterError, PhyloflowAdapters
from repro.llm.mockllm import MockFunctionCallingLLM
from repro.llm.protocol import Message

_DEFAULT_CONTEXT = (
    "You are a workflow execution assistant.  You have access to Parsl "
    "app adapter functions.  Execute the user's requested pipeline by "
    "calling them in dependency order; each call returns an AppFuture "
    "ID you can pass to subsequent calls.  Reply with a final message "
    "when the workflow is complete."
)


@dataclass
class DriverResult:
    """Outcome of one NL-driven workflow execution."""

    transcript: list = field(default_factory=list)
    future_ids: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    api_calls: int = 0
    stopped: bool = False
    final_message: str = ""

    @property
    def final_future_id(self) -> Optional[str]:
        return self.future_ids[-1] if self.future_ids else None

    def calls_made(self) -> list:
        """Function names in execution order."""
        return [
            m.function_call.name
            for m in self.transcript
            if m.role == "assistant" and m.function_call is not None
        ]


class ChatWorkflowDriver:
    """Runs the request → function-call → feedback loop to completion."""

    def __init__(
        self,
        llm: MockFunctionCallingLLM,
        adapters: PhyloflowAdapters,
        max_rounds: int = 25,
        context: str = _DEFAULT_CONTEXT,
    ):
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.llm = llm
        self.adapters = adapters
        self.max_rounds = max_rounds
        self.context = context

    def run(self, instruction: str) -> DriverResult:
        """Execute a natural-language instruction end to end."""
        if not instruction.strip():
            raise ValueError("instruction must be non-empty")
        result = DriverResult()
        messages = [
            Message(role="system", content=self.context),
            Message(role="user", content=instruction),
        ]
        schemas = self.adapters.schemas()
        for _ in range(self.max_rounds):
            response = self.llm.chat(schemas, messages)
            result.api_calls += 1
            messages.append(response.message)
            if not response.wants_function:
                result.stopped = True
                result.final_message = response.message.content
                break
            call = response.message.function_call
            try:
                fid = self.adapters.dispatch(call)
                result.future_ids.append(fid)
                feedback = Message(
                    role="user",
                    content=f"Function {call.name} returned AppFuture ID {fid}.",
                )
            except AdapterError as exc:
                result.errors.append((call.name, str(exc)))
                feedback = Message(
                    role="user",
                    content=f"ERROR while executing {call.name}: {exc}",
                )
            messages.append(feedback)
        result.transcript = messages
        return result

    def final_value(self, result: DriverResult):
        """Resolve the last produced future (the workflow's output)."""
        if result.final_future_id is None:
            raise ValueError("The run produced no futures")
        return self.adapters.resolve(result.final_future_id)
