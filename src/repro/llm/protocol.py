"""OpenAI-style function-calling protocol types.

The wire format of §2.1: the client sends a list of function
descriptions (JSON schema) together with the conversation messages;
the model answers either with a ``function_call`` choice (name +
arguments) or with a plain message carrying the stop flag.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class FunctionSchema:
    """One callable function advertised to the model."""

    name: str
    description: str
    #: Parameter name -> {"type": ..., "description": ...}.
    parameters: tuple = ()
    required: tuple = ()

    def __post_init__(self):
        if not self.name:
            raise ValueError("Function name must be non-empty")
        param_names = {name for name, _ in self.parameters}
        missing = set(self.required) - param_names
        if missing:
            raise ValueError(f"required params not in parameters: {missing}")

    def to_json(self) -> str:
        """The JSON description sent over the (simulated) wire."""
        return json.dumps(
            {
                "name": self.name,
                "description": self.description,
                "parameters": {
                    "type": "object",
                    "properties": {n: dict(spec) for n, spec in self.parameters},
                    "required": list(self.required),
                },
            },
            sort_keys=True,
        )


@dataclass(frozen=True)
class FunctionCall:
    """The model's choice of function + arguments."""

    name: str
    arguments: tuple = ()  # sorted (key, value) pairs for hashability

    @property
    def kwargs(self) -> dict:
        return dict(self.arguments)

    @staticmethod
    def make(name: str, **kwargs) -> "FunctionCall":
        return FunctionCall(name=name, arguments=tuple(sorted(kwargs.items())))


@dataclass(frozen=True)
class Message:
    """One conversation message."""

    role: str  # "system" | "user" | "assistant" | "function"
    content: str = ""
    function_call: Optional[FunctionCall] = None
    name: Optional[str] = None  # function name for role="function"

    def __post_init__(self):
        if self.role not in ("system", "user", "assistant", "function"):
            raise ValueError(f"Invalid role {self.role!r}")


@dataclass(frozen=True)
class ChatResponse:
    """The model's reply: either a function call or a final answer."""

    message: Message
    finish_reason: str  # "function_call" | "stop"

    @property
    def wants_function(self) -> bool:
        return self.finish_reason == "function_call"
