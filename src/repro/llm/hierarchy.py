"""Hierarchical task decomposition (§2.1's proposed token-limit fix).

"Composing more complex workflows will eventually hit the token limit
[...] we would need to invent a hierarchical schema for task
decomposition."

The schema implemented here: the workflow's functions are partitioned
into :class:`FunctionGroup` sub-workflows.  The **top-level session**
advertises one *composite* function per group (its external inputs
only) and never sees the member schemas or the members' chatter.  When
the top-level model selects a composite, a **fresh sub-session** runs
with only that group's schemas and a short scoped instruction; its
final AppFuture ID is reported back up as the composite's return
value.  Every session's prompt is therefore bounded by its own group
size instead of the whole workflow — the flat transcript's token
growth never happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.llm.adapters import PhyloflowAdapters
from repro.llm.driver import ChatWorkflowDriver
from repro.llm.mockllm import MockFunctionCallingLLM
from repro.llm.protocol import FunctionSchema


@dataclass(frozen=True)
class FunctionGroup:
    """A named sub-workflow over a subset of the adapter functions."""

    name: str
    description: str
    function_names: tuple

    def __post_init__(self):
        if not self.function_names:
            raise ValueError(f"group {self.name!r} has no functions")


#: The natural decomposition of Phyloflow into three sub-workflows.
PHYLOFLOW_GROUPS = (
    FunctionGroup(
        "transform",
        "Parse and transform the input VCF file into the mutation table.",
        ("vcf_transform_from_file",),
    ),
    FunctionGroup(
        "clustering",
        "Cluster the transformed mutations by cancer-cell fraction.",
        ("pyclone_vi_from_futures",),
    ),
    FunctionGroup(
        "phylogeny",
        "Format the clusters for SPRUCE and compute the phylogeny tree.",
        ("spruce_format_from_futures", "spruce_phylogeny_from_futures"),
    ),
)


@dataclass
class HierarchicalResult:
    """Outcome of one hierarchical execution."""

    top_calls: list = field(default_factory=list)
    sub_results: dict = field(default_factory=dict)  # group -> DriverResult
    future_ids: list = field(default_factory=list)
    #: Largest prompt any session (top or sub) sent.
    peak_prompt_tokens: int = 0
    stopped: bool = False

    @property
    def final_future_id(self) -> Optional[str]:
        return self.future_ids[-1] if self.future_ids else None


class HierarchicalChatDriver:
    """Two-level chat execution: composites on top, groups below."""

    def __init__(
        self,
        adapters: PhyloflowAdapters,
        groups=PHYLOFLOW_GROUPS,
        llm_factory: Optional[Callable[[], MockFunctionCallingLLM]] = None,
        max_rounds: int = 25,
    ):
        self.adapters = adapters
        self.groups = tuple(groups)
        self.llm_factory = llm_factory or MockFunctionCallingLLM
        self.max_rounds = max_rounds
        all_functions = {s.name for s in adapters.schemas()}
        grouped = [n for g in self.groups for n in g.function_names]
        if len(grouped) != len(set(grouped)):
            raise ValueError("groups overlap")
        unknown = set(grouped) - all_functions
        if unknown:
            raise ValueError(f"groups reference unknown functions: {unknown}")

    # -- composite schema construction --------------------------------------

    def _member_schemas(self, group: FunctionGroup) -> list:
        by_name = {s.name: s for s in self.adapters.schemas()}
        return [by_name[n] for n in group.function_names]

    def composite_schema(self, group: FunctionGroup) -> FunctionSchema:
        """One function standing for the whole group.

        Its parameters are the group's *external* required inputs: a
        future-ID parameter collapses to a single ``input_future_id``
        (the previous composite's output); file and scalar parameters
        pass through.
        """
        members = self._member_schemas(group)
        params = []
        required = []
        needs_future = False
        internal = set(group.function_names)
        for idx, schema in enumerate(members):
            for pname in schema.required:
                if pname.endswith("_id"):
                    # Internal if an earlier member feeds it.
                    if idx == 0:
                        needs_future = True
                    continue
                params.append(
                    (pname, (("type", "string"), ("description", f"for {schema.name}")))
                )
                required.append(pname)
        if needs_future:
            params.insert(0, ("input_future_id", (("type", "string"),)))
            required.insert(0, "input_future_id")
        return FunctionSchema(
            name=f"{group.name}_subworkflow",
            description=group.description,
            parameters=tuple(params),
            required=tuple(required),
        )

    # -- execution ---------------------------------------------------------------

    def run(self, instruction: str) -> HierarchicalResult:
        result = HierarchicalResult()
        top_llm = self.llm_factory()
        composites = [self.composite_schema(g) for g in self.groups]
        from repro.llm.protocol import Message

        messages = [
            Message(
                role="system",
                content=(
                    "You orchestrate sub-workflows.  Each function runs a "
                    "whole group of steps and returns an AppFuture ID."
                ),
            ),
            Message(role="user", content=instruction),
        ]
        for _ in range(self.max_rounds):
            response = top_llm.chat(composites, messages)
            result.peak_prompt_tokens = max(
                result.peak_prompt_tokens, top_llm.max_prompt_tokens
            )
            messages.append(response.message)
            if not response.wants_function:
                result.stopped = True
                break
            call = response.message.function_call
            group = next(
                g for g in self.groups
                if f"{g.name}_subworkflow" == call.name
            )
            result.top_calls.append(call.name)
            fid = self._run_group(group, call.kwargs, instruction, result)
            result.future_ids.append(fid)
            messages.append(
                Message(
                    role="user",
                    content=f"Function {call.name} returned AppFuture ID {fid}.",
                )
            )
        return result

    def _run_group(self, group, kwargs: dict, instruction: str, result) -> str:
        """Fresh sub-session over just this group's functions."""
        sub_llm = self.llm_factory()
        sub_driver = ChatWorkflowDriver(
            sub_llm,
            _ScopedAdapters(self.adapters, group.function_names),
            max_rounds=self.max_rounds,
        )
        # Scoped instruction embeds the bound inputs as plain text the
        # sub-model's fact extraction picks up (paths, future IDs, Ns).
        bound_bits = " ".join(f"{k}={v}" for k, v in sorted(kwargs.items()))
        cluster_hint = ""
        import re

        m = re.search(r"\b(\d+)\s+clusters?\b", instruction)
        if m:
            cluster_hint = f" using {m.group(1)} clusters"
        sub_instruction = (
            f"Run the full {group.description.lower()} sub-workflow"
            f"{cluster_hint}.  Inputs: {bound_bits}."
        )
        sub_result = sub_driver.run(sub_instruction)
        result.sub_results[group.name] = sub_result
        result.peak_prompt_tokens = max(
            result.peak_prompt_tokens, sub_llm.max_prompt_tokens
        )
        if not sub_result.future_ids:
            raise RuntimeError(
                f"sub-workflow {group.name!r} produced no futures: "
                f"{sub_result.final_message!r}"
            )
        return sub_result.future_ids[-1]

    def final_value(self, result: HierarchicalResult):
        if result.final_future_id is None:
            raise ValueError("The run produced no futures")
        return self.adapters.resolve(result.final_future_id)


class _ScopedAdapters:
    """Adapter view restricted to one group's functions."""

    def __init__(self, adapters: PhyloflowAdapters, names: tuple):
        self._adapters = adapters
        self._names = set(names)

    def schemas(self) -> list:
        return [s for s in self._adapters.schemas() if s.name in self._names]

    def dispatch(self, call):
        if call.name not in self._names:
            from repro.llm.adapters import AdapterError

            raise AdapterError(
                f"{call.name} is outside this sub-workflow's scope"
            )
        return self._adapters.dispatch(call)

    def resolve(self, future_id: str):
        return self._adapters.resolve(future_id)
