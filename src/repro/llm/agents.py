"""The Fig 1 multi-agent engine: planner → executor → debugger → human.

"The planner, executor, and debugger are all AI agents that use LLM to
process textual input [...] A human operator may also be involved if
the debugger cannot resolve the issue."

Each agent is a deterministic rule-based policy operating on the same
artifacts a hosted LLM would (schemas, plans, exception text), so the
engine's control flow — plan, execute step, validate, debug, retry or
escalate — is exercised for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.llm.adapters import AdapterError, PhyloflowAdapters
from repro.llm.protocol import FunctionCall
from repro.resilience import RetryPolicy, TRANSIENT_ONLY


@dataclass(frozen=True)
class PlanStep:
    """One step of a plan: a function plus where its inputs come from."""

    index: int
    function: str
    #: Static arguments (e.g. file paths, n_clusters).
    params: tuple = ()
    #: Parameter name -> index of the plan step whose future feeds it.
    inputs_from: tuple = ()


@dataclass(frozen=True)
class Plan:
    """An ordered plan derived from a natural-language description."""

    description: str
    steps: tuple = ()

    def __len__(self) -> int:
        return len(self.steps)


@dataclass
class StepOutcome:
    step: PlanStep
    status: str = "pending"  # ok | failed | skipped
    future_id: Optional[str] = None
    attempts: int = 0
    errors: list = field(default_factory=list)


@dataclass
class ExecutionReport:
    plan: Plan
    outcomes: list = field(default_factory=list)
    succeeded: bool = False
    escalated_to_human: bool = False
    final_value: object = None


class Planner:
    """Turns an NL description into a plan over the advertised functions.

    Policy: take the adapter functions in pipeline order; bind the first
    step's file parameter to the mentioned input file; wire each later
    step's ``*_id`` parameter to the previous step's future.
    """

    def plan(self, description: str, adapters: PhyloflowAdapters) -> Plan:
        import re

        files = re.findall(r"[\w./-]+\.(?:vcf|tsv|txt|json)\b", description)
        m = re.search(r"\b(\d+)\s+clusters?\b", description)
        n_clusters = int(m.group(1)) if m else 3
        steps = []
        for idx, schema in enumerate(adapters.schemas()):
            params = {}
            inputs_from = {}
            for pname in schema.required:
                if pname.endswith(("_file", "_path")):
                    if not files:
                        raise ValueError(
                            f"Plan needs an input file for {schema.name} but the "
                            "description mentions none"
                        )
                    params[pname] = files[0]
                elif pname.endswith("_id"):
                    if idx == 0:
                        raise ValueError(
                            f"First step {schema.name} cannot take a future input"
                        )
                    inputs_from[pname] = idx - 1
                elif pname in ("n_clusters", "clusters"):
                    params[pname] = n_clusters
            steps.append(
                PlanStep(
                    index=idx,
                    function=schema.name,
                    params=tuple(sorted(params.items())),
                    inputs_from=tuple(sorted(inputs_from.items())),
                )
            )
        return Plan(description=description, steps=tuple(steps))


class Debugger:
    """Diagnoses a failed step and proposes an action.

    Rules (ordered):

    - failures the retry policy classifies as transient → ``retry``
      (up to the policy's attempt budget),
    - a missing-file error with an alternative file available → ``patch``
      with the corrected path,
    - anything else → ``escalate`` to the human operator.
    """

    def __init__(
        self, max_retries: int = 2, retry_policy: Optional[RetryPolicy] = None
    ):
        # RetryPolicy owns max_retries validation (shared across engines).
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_retries=max_retries, retry_on=TRANSIENT_ONLY)
        )
        self.max_retries = self.retry_policy.max_retries

    def diagnose(
        self, outcome: StepOutcome, adapters: PhyloflowAdapters
    ) -> tuple:
        """Returns ``(action, payload)``: ("retry", None), ("patch",
        new_params) or ("escalate", reason)."""
        error = outcome.errors[-1] if outcome.errors else ""
        if error and self.retry_policy.should_retry(outcome.attempts, error):
            return "retry", None
        if "no such file" in error:
            params = dict(outcome.step.params)
            file_params = [
                k for k in params if k.endswith(("_file", "_path"))
            ]
            for k in file_params:
                alternatives = [f for f in adapters.files if f != params[k]]
                if alternatives:
                    params[k] = sorted(alternatives)[0]
                    return "patch", tuple(sorted(params.items()))
            return "escalate", f"input file {params} not found anywhere"
        return "escalate", error or "unknown failure"


class Executor:
    """Executes plan steps through the adapters, validating each one."""

    def execute_step(
        self, step: PlanStep, adapters: PhyloflowAdapters, outcomes: list
    ) -> StepOutcome:
        outcome = next(o for o in outcomes if o.step.index == step.index)
        outcome.attempts += 1
        kwargs = dict(step.params)
        for pname, src_idx in step.inputs_from:
            src = outcomes[src_idx]
            if src.status != "ok":
                outcome.status = "skipped"
                outcome.errors.append(f"dependency step {src_idx} not ok")
                return outcome
            kwargs[pname] = src.future_id
        try:
            fid = adapters.dispatch(FunctionCall.make(step.function, **kwargs))
            outcome.future_id = fid
            outcome.status = "ok"
        except AdapterError as exc:
            outcome.status = "failed"
            outcome.errors.append(str(exc))
        return outcome


class AgentWorkflowEngine:
    """Wires planner, executor, debugger and the human gate together."""

    def __init__(
        self,
        adapters: PhyloflowAdapters,
        planner: Optional[Planner] = None,
        executor: Optional[Executor] = None,
        debugger: Optional[Debugger] = None,
        human: Optional[Callable[[StepOutcome, str], str]] = None,
    ):
        self.adapters = adapters
        self.planner = planner or Planner()
        self.executor = executor or Executor()
        self.debugger = debugger or Debugger()
        #: Called with (outcome, reason) on escalation; returns "abort"
        #: or "retry".  Default operator aborts.
        self.human = human or (lambda outcome, reason: "abort")

    def run(self, description: str) -> ExecutionReport:
        """Plan and execute an NL description, recovering where possible."""
        plan = self.planner.plan(description, self.adapters)
        report = ExecutionReport(plan=plan)
        report.outcomes = [StepOutcome(step=s) for s in plan.steps]
        for step in plan.steps:
            while True:
                outcome = self.executor.execute_step(
                    step, self.adapters, report.outcomes
                )
                if outcome.status in ("ok", "skipped"):
                    break
                action, payload = self.debugger.diagnose(outcome, self.adapters)
                if action == "retry":
                    continue
                if action == "patch":
                    step = PlanStep(
                        index=step.index,
                        function=step.function,
                        params=payload,
                        inputs_from=step.inputs_from,
                    )
                    continue
                report.escalated_to_human = True
                decision = self.human(outcome, payload)
                if decision == "retry":
                    continue
                break
            if outcome.status != "ok":
                report.succeeded = False
                return report
        report.succeeded = all(o.status == "ok" for o in report.outcomes)
        if report.succeeded:
            report.final_value = self.adapters.resolve(
                report.outcomes[-1].future_id
            )
        return report
