"""A deterministic rule-based function-calling "LLM".

Substitutes OpenAI's hosted model (no network) while honouring the
same contract: given function schemas and the running conversation, it
returns either a function-call choice with bound arguments or a stop
message.  Its policy mirrors what §2.1 observed the real model doing:

- read file paths and AppFuture IDs out of the conversation,
- pick the next *callable* function — one whose required parameters
  can all be bound from known facts (paths bind ``*_file``/``*_path``
  params, the most recent unconsumed future ID binds ``*_id`` params),
- when the user names a specific step, restrict the choice to the
  best-matching function,
- after a reported error, retry the failed function once (the error-
  forwarding behaviour §2.1 lists as future work, needed by Fig 1's
  debugger), then give up with a stop message,
- emit the stop flag once every advertised function has been used.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.llm.protocol import ChatResponse, FunctionCall, FunctionSchema, Message

_PATH_RE = re.compile(r"[\w./-]+\.(?:vcf|tsv|txt|json|fastq|sra)\b")
_FUTURE_RE = re.compile(r"future-\d+")
_INT_RE = re.compile(r"\b(\d+)\s+clusters?\b")


class ContextLimitExceeded(RuntimeError):
    """The prompt (schemas + transcript) exceeded the model's context.

    This is the §2.1 limitation: "composing more complex workflows will
    eventually hit the token limit, for which there is no
    straightforward solution in the proposed scheme; we would need to
    invent a hierarchical schema for task decomposition."  See
    :mod:`repro.llm.hierarchy` for that schema.
    """

    def __init__(self, tokens: int, limit: int):
        super().__init__(f"prompt of {tokens} tokens exceeds context of {limit}")
        self.tokens = tokens
        self.limit = limit


def estimate_tokens(text: str) -> int:
    """Crude 4-chars-per-token estimate (enough for budget accounting)."""
    return max(1, len(text) // 4)


class MockFunctionCallingLLM:
    """Deterministic stand-in for a function-calling chat model."""

    def __init__(
        self,
        max_error_retries: int = 1,
        context_limit_tokens: Optional[int] = None,
    ):
        if max_error_retries < 0:
            raise ValueError("max_error_retries must be >= 0")
        if context_limit_tokens is not None and context_limit_tokens < 1:
            raise ValueError("context_limit_tokens must be positive")
        self.max_error_retries = max_error_retries
        self.context_limit_tokens = context_limit_tokens
        #: Count of API round-trips served (token-budget bookkeeping).
        self.calls = 0
        #: Largest prompt observed (for the hierarchy experiments).
        self.max_prompt_tokens = 0

    # -- the "API" ------------------------------------------------------------

    def prompt_tokens(self, functions: list, messages: list) -> int:
        """Token size of one request: all schemas + the transcript."""
        total = sum(estimate_tokens(f.to_json()) for f in functions)
        for m in messages:
            total += estimate_tokens(m.content)
            if m.function_call is not None:
                total += estimate_tokens(repr(m.function_call.arguments)) + 4
        return total

    def chat(self, functions: list, messages: list) -> ChatResponse:
        """One chat-completion round trip."""
        self.calls += 1
        if not messages:
            raise ValueError("messages must be non-empty")
        tokens = self.prompt_tokens(functions, messages)
        self.max_prompt_tokens = max(self.max_prompt_tokens, tokens)
        if self.context_limit_tokens is not None and tokens > self.context_limit_tokens:
            raise ContextLimitExceeded(tokens, self.context_limit_tokens)
        facts = self._extract_facts(messages)

        # Error recovery: retry the function that just failed.
        if facts["last_error"] is not None:
            failed_fn = facts["last_error"]
            retries = facts["error_counts"].get(failed_fn, 0)
            schema = next((f for f in functions if f.name == failed_fn), None)
            if schema is not None and retries <= self.max_error_retries:
                binding = self._bind(schema, facts)
                if binding is not None:
                    return self._call(schema.name, binding)
            return self._stop(
                f"Unable to recover from the error in {failed_fn}; "
                "a human operator should take over."
            )

        instruction = facts["instruction"].lower()
        # Goal resolution: functions are advertised in pipeline order,
        # so a request naming a late step implies its whole dependency
        # chain; explicit pipeline words imply everything.  A request
        # naming only an early step stops there.
        pipeline_words = ("pipeline", "workflow", "full", "entire", "all steps")
        if any(w in instruction for w in pipeline_words):
            goal_idx = len(functions) - 1
        else:
            matched = [
                i for i, f in enumerate(functions)
                if self._mentioned(f, instruction)
            ]
            goal_idx = max(matched) if matched else len(functions) - 1
        goal = functions[: goal_idx + 1]
        uncalled = [f for f in goal if f.name not in facts["called"]]
        if not uncalled:
            return self._stop("All requested workflow steps have executed. DONE.")

        for schema in uncalled:
            binding = self._bind(schema, facts)
            if binding is not None:
                return self._call(schema.name, binding)
        return self._stop(
            "No remaining function's inputs are available. DONE."
        )

    # -- fact extraction ----------------------------------------------------------

    def _extract_facts(self, messages: list) -> dict:
        """Pair each function-call message with the user feedback that
        follows it: a "returned ... ID" message marks the call (and the
        futures it consumed) as successful; an ERROR message leaves the
        inputs reusable so the call can be retried."""
        instruction = ""
        files: list[str] = []
        futures: list[str] = []
        consumed: set[str] = set()
        called: set[str] = set()
        error_counts: dict[str, int] = {}
        last_error: Optional[str] = None
        pending_call = None  # (name, consumed future ids)

        for msg in messages:
            if msg.role == "user":
                if not instruction:
                    instruction = msg.content
                files += [p for p in _PATH_RE.findall(msg.content) if p not in files]
                for fid in _FUTURE_RE.findall(msg.content):
                    if fid not in futures:
                        futures.append(fid)
                if pending_call is not None:
                    name, call_inputs = pending_call
                    if "ERROR" in msg.content:
                        last_error = name
                        error_counts[name] = error_counts.get(name, 0) + 1
                    else:
                        called.add(name)
                        consumed.update(call_inputs)
                        last_error = None
                    pending_call = None
            elif msg.role == "assistant" and msg.function_call is not None:
                pending_call = (
                    msg.function_call.name,
                    {
                        v
                        for _, v in msg.function_call.arguments
                        if isinstance(v, str) and _FUTURE_RE.fullmatch(v)
                    },
                )
        return {
            "instruction": instruction,
            "files": files,
            "futures": futures,
            "consumed": consumed,
            "called": called,
            "error_counts": error_counts,
            "last_error": last_error,
        }

    # -- argument binding -----------------------------------------------------------

    def _bind(self, schema: FunctionSchema, facts: dict) -> Optional[dict]:
        """Bind every required parameter from conversation facts, or None."""
        binding: dict = {}
        unconsumed = [f for f in facts["futures"] if f not in facts["consumed"]]
        for pname in schema.required:
            if pname.endswith(("_file", "_path")) or pname in ("file", "path"):
                if not facts["files"]:
                    return None
                binding[pname] = facts["files"][-1]
            elif pname.endswith("_id") or pname == "id":
                if not unconsumed:
                    return None
                binding[pname] = unconsumed[-1]
            elif pname in ("n_clusters", "clusters"):
                m = _INT_RE.search(facts["instruction"])
                binding[pname] = int(m.group(1)) if m else 3
            else:
                return None  # cannot bind an unknown required parameter
        return binding

    @staticmethod
    def _mentioned(schema: FunctionSchema, instruction: str) -> bool:
        tokens = [t for t in re.split(r"[_\W]+", schema.name) if len(t) > 3]
        return any(t in instruction for t in tokens)

    # -- responses ---------------------------------------------------------------------

    @staticmethod
    def _call(name: str, kwargs: dict) -> ChatResponse:
        return ChatResponse(
            message=Message(
                role="assistant",
                content="",
                function_call=FunctionCall.make(name, **kwargs),
            ),
            finish_reason="function_call",
        )

    @staticmethod
    def _stop(text: str) -> ChatResponse:
        return ChatResponse(
            message=Message(role="assistant", content=text),
            finish_reason="stop",
        )
