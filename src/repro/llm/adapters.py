"""Parsl-app adapters for the function-calling API (§2.1).

For each Phyloflow Parsl app we expose the two adapter flavours the
paper describes:

- ``*_from_file`` — receives physical file paths,
- ``*_from_futures`` — receives AppFuture IDs, resolves them from the
  global access dictionary, and uses their outputs as inputs.

Each dispatch "generates a new ID, runs the ParslApp, indexes the
AppFuture reference along with its ID in a global access dictionary
and returns the ID".
"""

from __future__ import annotations

from typing import Optional

from repro.core.futures import AppFuture, FutureError, LocalExecutor, python_app
from repro.llm.protocol import FunctionCall, FunctionSchema
from repro.llm.phyloflow import (
    pyclone_vi,
    spruce_format,
    spruce_phylogeny,
    vcf_transform,
)


class AdapterError(RuntimeError):
    """A dispatched function failed (bad args, app exception...)."""


# Parsl apps for the four pipeline steps.
_vcf_transform_app = python_app(vcf_transform)
_pyclone_app = python_app(pyclone_vi)
_spruce_format_app = python_app(spruce_format)
_spruce_phylogeny_app = python_app(spruce_phylogeny)


class PhyloflowAdapters:
    """Function-call surface over the Phyloflow Parsl apps.

    Parameters
    ----------
    files:
        Simulated filesystem: path → file content.  ``*_from_file``
        adapters read from here.
    eager:
        Resolve each future at dispatch time so failures surface as
        :class:`AdapterError` immediately (what the error-forwarding
        loop needs).  With ``eager=False`` futures stay lazy, matching
        the paper's original fire-and-forget behaviour.
    """

    def __init__(self, files: Optional[dict] = None, eager: bool = True):
        self.files = dict(files or {})
        self.eager = eager
        self.executor = LocalExecutor()
        #: Failure injection: function name -> remaining failures.
        self._injected: dict[str, int] = {}

    # -- schema advertisement ------------------------------------------------

    def schemas(self) -> list:
        """Function descriptions, in pipeline order."""
        return [
            FunctionSchema(
                name="vcf_transform_from_file",
                description=(
                    "Read a VCF file from a path and transform it into the "
                    "pyclone-vi mutation table."
                ),
                parameters=(
                    ("vcf_file", (("type", "string"), ("description", "path to .vcf"))),
                ),
                required=("vcf_file",),
            ),
            FunctionSchema(
                name="pyclone_vi_from_futures",
                description=(
                    "Run mutation clustering on the output of a previous "
                    "vcf_transform AppFuture."
                ),
                parameters=(
                    ("mutations_future_id", (("type", "string"),)),
                    ("n_clusters", (("type", "integer"),)),
                ),
                required=("mutations_future_id", "n_clusters"),
            ),
            FunctionSchema(
                name="spruce_format_from_futures",
                description=(
                    "Reformat pyclone-vi clusters (by AppFuture ID) into the "
                    "SPRUCE input table."
                ),
                parameters=(("clusters_future_id", (("type", "string"),)),),
                required=("clusters_future_id",),
            ),
            FunctionSchema(
                name="spruce_phylogeny_from_futures",
                description=(
                    "Compute the tumor phylogeny JSON from a SPRUCE-format "
                    "AppFuture."
                ),
                parameters=(("spruce_future_id", (("type", "string"),)),),
                required=("spruce_future_id",),
            ),
        ]

    # -- failure injection (for Fig 1 debugger experiments) ----------------------

    def inject_failure(self, function_name: str, times: int = 1) -> None:
        """Make the next ``times`` dispatches of a function fail."""
        self._injected[function_name] = self._injected.get(function_name, 0) + times

    # -- dispatch ------------------------------------------------------------------

    def dispatch(self, call: FunctionCall) -> str:
        """Execute a function call; returns the new AppFuture's ID."""
        kwargs = call.kwargs
        if self._injected.get(call.name, 0) > 0:
            self._injected[call.name] -= 1
            raise AdapterError(f"{call.name}: transient executor failure (injected)")
        handler = getattr(self, f"_do_{call.name}", None)
        if handler is None:
            raise AdapterError(f"Unknown function {call.name!r}")
        try:
            future = handler(**kwargs)
        except AdapterError:
            raise
        except TypeError as exc:
            raise AdapterError(f"{call.name}: bad arguments: {exc}") from exc
        fid = self.executor.register(future)
        if self.eager:
            try:
                future.result()
            except FutureError as exc:
                raise AdapterError(
                    f"{call.name}: {exc.__cause__ or exc}"
                ) from exc
        return fid

    def resolve(self, future_id: str):
        """Resolve a registered future ID to its value."""
        return self.executor.get(future_id).result()

    # -- per-function handlers ---------------------------------------------------------

    def _do_vcf_transform_from_file(self, vcf_file: str) -> AppFuture:
        if vcf_file not in self.files:
            raise AdapterError(f"vcf_transform_from_file: no such file {vcf_file!r}")
        return _vcf_transform_app(self.files[vcf_file])

    def _do_pyclone_vi_from_futures(
        self, mutations_future_id: str, n_clusters: int = 3
    ) -> AppFuture:
        parent = self._get_future(mutations_future_id)
        return _pyclone_app(parent, n_clusters=int(n_clusters))

    def _do_spruce_format_from_futures(self, clusters_future_id: str) -> AppFuture:
        return _spruce_format_app(self._get_future(clusters_future_id))

    def _do_spruce_phylogeny_from_futures(self, spruce_future_id: str) -> AppFuture:
        return _spruce_phylogeny_app(self._get_future(spruce_future_id))

    def _get_future(self, future_id: str) -> AppFuture:
        if future_id not in self.executor:
            raise AdapterError(f"Unknown AppFuture ID {future_id!r}")
        return self.executor.get(future_id)
