"""Workflow DAGs over :class:`~repro.core.task.TaskSpec`."""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx

from repro.core.task import TaskSpec


class WorkflowValidationError(ValueError):
    """The workflow graph violates an invariant (cycle, missing input...)."""


class Workflow:
    """A named DAG of tasks with file- and explicitly-declared edges.

    Dependencies come from two sources, merged:

    1. **File inference** — task B depending on a file task A produces
       gets an edge A → B (how Nextflow/Parsl/WDL wiring works).
    2. **Explicit edges** — ``add_task(spec, after=[...])`` for
       control-flow dependencies with no data exchange.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("Workflow name must be non-empty")
        self.name = name
        self._graph = nx.DiGraph()
        self._tasks: dict[str, TaskSpec] = {}
        self._producer: dict[str, str] = {}  # file name -> task name

    # -- construction -------------------------------------------------------

    def add_task(self, spec: TaskSpec, after: Iterable[str] = ()) -> TaskSpec:
        """Add a task, inferring dependencies from its input files."""
        if spec.name in self._tasks:
            raise WorkflowValidationError(
                f"Duplicate task name {spec.name!r} in workflow {self.name!r}"
            )
        for out in spec.outputs:
            owner = self._producer.get(out.name)
            if owner is not None:
                raise WorkflowValidationError(
                    f"File {out.name!r} produced by both {owner!r} and {spec.name!r}"
                )
        self._tasks[spec.name] = spec
        self._graph.add_node(spec.name)
        for out in spec.outputs:
            self._producer[out.name] = spec.name
        for inp in spec.inputs:
            producer = self._producer.get(inp)
            if producer is not None:
                self._graph.add_edge(producer, spec.name)
        for dep in after:
            if dep not in self._tasks:
                raise WorkflowValidationError(
                    f"after={dep!r}: no such task in workflow {self.name!r}"
                )
            self._graph.add_edge(dep, spec.name)
        if not nx.is_directed_acyclic_graph(self._graph):
            # Roll back so the workflow stays consistent.
            self._graph.remove_node(spec.name)
            del self._tasks[spec.name]
            for out in spec.outputs:
                del self._producer[out.name]
            raise WorkflowValidationError(
                f"Adding {spec.name!r} would create a cycle"
            )
        return spec

    # -- queries --------------------------------------------------------------

    @property
    def tasks(self) -> dict[str, TaskSpec]:
        return dict(self._tasks)

    @property
    def graph(self) -> nx.DiGraph:
        """Read-only view of the dependency graph (task-name nodes)."""
        return self._graph.copy(as_view=True)

    def task(self, name: str) -> TaskSpec:
        return self._tasks[name]

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def parents(self, name: str) -> list[str]:
        return sorted(self._graph.predecessors(name))

    def children(self, name: str) -> list[str]:
        return sorted(self._graph.successors(name))

    def roots(self) -> list[str]:
        return sorted(n for n in self._graph if self._graph.in_degree(n) == 0)

    def sinks(self) -> list[str]:
        return sorted(n for n in self._graph if self._graph.out_degree(n) == 0)

    def topological_order(self) -> list[str]:
        """Deterministic topological order (lexicographic tie-break)."""
        return list(nx.lexicographical_topological_sort(self._graph))

    def ready_tasks(self, completed: set) -> list[str]:
        """Tasks whose parents are all in ``completed`` and not completed
        themselves — what a WMS submits next."""
        return sorted(
            n
            for n in self._graph
            if n not in completed
            and all(p in completed for p in self._graph.predecessors(n))
        )

    def external_inputs(self) -> set:
        """Input files no task produces (must pre-exist in the catalog)."""
        produced = set(self._producer)
        needed = {inp for spec in self._tasks.values() for inp in spec.inputs}
        return needed - produced

    def producer_of(self, file_name: str) -> Optional[str]:
        return self._producer.get(file_name)

    # -- aggregate properties -----------------------------------------------------

    def total_work(self) -> float:
        """Sum of nominal core-seconds across all tasks."""
        return sum(t.runtime_s * t.cores for t in self._tasks.values())

    def validate(self) -> None:
        """Raise :class:`WorkflowValidationError` on structural problems."""
        if not self._tasks:
            raise WorkflowValidationError(f"Workflow {self.name!r} is empty")
        if not nx.is_directed_acyclic_graph(self._graph):
            raise WorkflowValidationError(f"Workflow {self.name!r} has a cycle")

    def to_dot(self) -> str:
        """GraphViz DOT export (for docs, debugging, papers).

        Nodes are labelled ``name (runtime, cores)``; edges carry the
        file(s) flowing along them when the dependency is data-driven.
        """
        lines = [f'digraph "{self.name}" {{', "  rankdir=TB;"]
        for name, spec in sorted(self._tasks.items()):
            label = f"{name}\\n{spec.runtime_s:g}s x {spec.cores}c"
            lines.append(f'  "{name}" [label="{label}"];')
        for src, dst in sorted(self._graph.edges):
            files = [
                out.name
                for out in self._tasks[src].outputs
                if out.name in self._tasks[dst].inputs
            ]
            attr = f' [label="{", ".join(files)}"]' if files else ""
            lines.append(f'  "{src}" -> "{dst}"{attr};')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Workflow {self.name!r}: {len(self._tasks)} tasks, "
            f"{self._graph.number_of_edges()} edges>"
        )
