"""Graph analytics for scheduling strategies.

These are the quantities workflow-aware schedulers rank tasks by:

- **Upward rank** (HEFT, [Topcuoglu 2002] — the paper's ref. 45): the
  length of the longest path from a task to any sink, counting task
  runtimes.  Scheduling high-rank tasks first keeps the critical path
  moving — the CWS "rank" strategy of §3.5.
- **Bottom level / critical path** — classic list-scheduling inputs.
- **Merge points** — tasks with in-degree > 1, where "the entire
  execution is waiting for one particular task" (§3.2, the Airflow
  resource-wastage argument).
"""

from __future__ import annotations

from typing import Callable, Optional

import networkx as nx

from repro.core.workflow import Workflow


def upward_ranks(
    workflow: Workflow,
    runtime_of: Optional[Callable[[str], float]] = None,
) -> dict[str, float]:
    """HEFT upward rank for every task.

    ``rank(t) = w(t) + max over children c of rank(c)`` (0 for sinks'
    max term).  ``runtime_of`` supplies the runtime estimate; defaults
    to the spec's nominal runtime.  Pass a predictor's estimate to study
    scheduling under imperfect information (bench E1 ablation).
    """
    runtime_of = runtime_of or (lambda name: workflow.task(name).runtime_s)
    graph = workflow.graph
    ranks: dict[str, float] = {}
    for node in reversed(list(nx.lexicographical_topological_sort(graph))):
        child_max = max(
            (ranks[c] for c in graph.successors(node)),
            default=0.0,
        )
        ranks[node] = runtime_of(node) + child_max
    return ranks


def bottom_levels(workflow: Workflow) -> dict[str, int]:
    """Edge-count distance from each task to its farthest sink."""
    graph = workflow.graph
    levels: dict[str, int] = {}
    for node in reversed(list(nx.lexicographical_topological_sort(graph))):
        levels[node] = 1 + max(
            (levels[c] for c in graph.successors(node)), default=-1
        )
    return levels


def critical_path_length(
    workflow: Workflow,
    runtime_of: Optional[Callable[[str], float]] = None,
) -> float:
    """Length of the longest runtime-weighted path — the makespan lower
    bound on infinite resources."""
    ranks = upward_ranks(workflow, runtime_of)
    return max(ranks.values()) if ranks else 0.0


def merge_points(workflow: Workflow) -> list[str]:
    """Tasks with more than one parent, sorted by in-degree descending.

    These are the synchronization barriers that make workflow-blind
    scheduling expensive: every parent chain must finish before the
    merge task can start.
    """
    graph = workflow.graph
    merges = [n for n in graph if graph.in_degree(n) > 1]
    return sorted(merges, key=lambda n: (-graph.in_degree(n), n))


def workflow_width(workflow: Workflow) -> int:
    """Maximum antichain size approximation: the largest number of tasks
    sharing the same depth — an upper bound on useful parallelism."""
    graph = workflow.graph
    depth: dict[str, int] = {}
    for node in nx.lexicographical_topological_sort(graph):
        depth[node] = 1 + max((depth[p] for p in graph.predecessors(node)), default=-1)
    counts: dict[int, int] = {}
    for d in depth.values():
        counts[d] = counts.get(d, 0) + 1
    return max(counts.values()) if counts else 0
