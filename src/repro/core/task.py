"""Task specifications: the unit a WMS submits to a resource manager."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.data.files import File


@dataclass(frozen=True)
class TaskSpec:
    """A resource-annotated workflow task.

    Exactly the information the CWSI carries across the WMS/RM boundary
    (§3.1): resource requests (CPU, memory), input files, and
    task-specific parameters.

    Parameters
    ----------
    name:
        Unique within its workflow.
    runtime_s:
        Nominal runtime on a speed-1.0 node.  Schedulers must treat this
        as *unknown* unless a predictor supplies an estimate — the
        experiment harness uses it as ground truth.
    inputs:
        Logical names of files consumed.  Dependencies are inferred by
        matching against other tasks' outputs.
    outputs:
        Files produced (name + size — sizes feed the CWS ``filesize``
        strategy).
    params:
        Task-specific tool parameters passed through the CWSI.
    """

    name: str
    runtime_s: float
    cores: int = 1
    gpus: int = 0
    memory_gb: float = 1.0
    inputs: tuple = ()
    outputs: tuple = ()
    params: tuple = ()
    labels: tuple = ()
    #: The task's *actual* peak memory (what monitoring would observe).
    #: ``memory_gb`` above is the user's request; scientists habitually
    #: over-request, which is what predictor-driven right-sizing (§3.4)
    #: corrects.  ``None`` means the request is honest.
    peak_memory_gb: Optional[float] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("Task name must be non-empty")
        if self.runtime_s < 0:
            raise ValueError(f"runtime_s must be >= 0, got {self.runtime_s}")
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if self.gpus < 0 or self.memory_gb < 0:
            raise ValueError("gpus/memory must be non-negative")
        if self.peak_memory_gb is not None and self.peak_memory_gb <= 0:
            raise ValueError("peak_memory_gb must be positive when set")
        for out in self.outputs:
            if not isinstance(out, File):
                raise TypeError(f"outputs must be File instances, got {out!r}")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))

    @property
    def input_names(self) -> tuple:
        return self.inputs

    @property
    def output_names(self) -> tuple:
        return tuple(f.name for f in self.outputs)

    @property
    def output_bytes(self) -> int:
        return sum(f.size_bytes for f in self.outputs)

    @property
    def true_peak_memory_gb(self) -> float:
        """What monitoring observes: the declared peak, else the request."""
        return self.peak_memory_gb if self.peak_memory_gb is not None else self.memory_gb

    def replace(self, **changes) -> "TaskSpec":
        """Functional update (frozen dataclass helper)."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)

    def __repr__(self) -> str:
        return (
            f"TaskSpec({self.name!r}, {self.runtime_s}s, {self.cores}c"
            + (f", {self.gpus}g" if self.gpus else "")
            + f", {self.memory_gb:g}GiB)"
        )
