"""Parsl-like apps and futures with real Python execution.

§2 of the paper builds on Parsl: each data-processing step is a *Parsl
app*; calling an app returns an :class:`AppFuture` immediately, and
apps are chained by passing futures (or their :class:`DataFuture`
outputs) as arguments.  This module implements that model with lazy,
memoized local execution — enough to run the Phyloflow pipeline for
real, and exactly the surface the LLM function-calling adapters (§2.1)
need: futures with stable identifiers that can be registered in a
global dictionary and referenced by ID across API calls.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional


class FutureError(RuntimeError):
    """The app backing a future raised during execution."""


_future_counter = itertools.count()


class AppFuture:
    """A promise for the return value of an app invocation.

    Resolution is lazy: the underlying function runs on the first
    :meth:`result` call, after recursively resolving any futures among
    its arguments.  Results (and failures) are memoized.
    """

    def __init__(
        self,
        fn: Callable,
        args: tuple,
        kwargs: dict,
        app_name: str,
        outputs: tuple = (),
    ):
        self.future_id = f"future-{next(_future_counter):05d}"
        self.app_name = app_name
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        #: DataFutures for declared output files.
        self.outputs: tuple = tuple(
            DataFuture(self, name) for name in outputs
        )

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        """Resolve (running dependencies first) and return the value."""
        if not self._done:
            try:
                args = tuple(_resolve(a) for a in self._args)
                kwargs = {k: _resolve(v) for k, v in self._kwargs.items()}
                self._result = self._fn(*args, **kwargs)
            except BaseException as exc:
                self._exception = exc
            self._done = True
        if self._exception is not None:
            raise FutureError(
                f"App {self.app_name!r} ({self.future_id}) failed"
            ) from self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        """The stored failure, resolving first (never raises)."""
        if not self._done:
            try:
                self.result()
            except FutureError:
                pass
        return self._exception

    def __repr__(self) -> str:
        state = "done" if self._done else "pending"
        return f"<AppFuture {self.future_id} {self.app_name} {state}>"


class DataFuture:
    """A promise for one named output file of an app invocation.

    Resolving a DataFuture resolves its parent app and returns the
    entry for ``name`` from the app's returned mapping (apps producing
    declared outputs must return a dict-like with those keys).
    """

    def __init__(self, parent: AppFuture, name: str):
        self.parent = parent
        self.name = name

    @property
    def done(self) -> bool:
        return self.parent.done

    def result(self) -> Any:
        value = self.parent.result()
        try:
            return value[self.name]
        except (KeyError, TypeError) as exc:
            raise FutureError(
                f"App {self.parent.app_name!r} did not produce output "
                f"{self.name!r}"
            ) from exc

    def __repr__(self) -> str:
        return f"<DataFuture {self.name} of {self.parent.future_id}>"


def _resolve(value: Any) -> Any:
    if isinstance(value, (AppFuture, DataFuture)):
        return value.result()
    if isinstance(value, (list, tuple)):
        return type(value)(_resolve(v) for v in value)
    return value


def python_app(fn: Optional[Callable] = None, *, outputs: tuple = ()):
    """Decorator turning a function into a future-returning Parsl-like app.

    >>> @python_app
    ... def double(x):
    ...     return 2 * x
    >>> fut = double(double(3))
    >>> fut.result()
    12

    With declared outputs the wrapped function must return a mapping
    containing those keys; each key is exposed as a DataFuture::

        @python_app(outputs=("clusters.tsv",))
        def cluster(data): ...
    """

    def decorate(func: Callable):
        def wrapper(*args, **kwargs) -> AppFuture:
            return AppFuture(func, args, kwargs, func.__name__, outputs=outputs)

        wrapper.__name__ = func.__name__
        wrapper.__doc__ = func.__doc__
        wrapper.is_parsl_app = True  # type: ignore[attr-defined]
        wrapper.raw = func  # type: ignore[attr-defined]
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate


class LocalExecutor:
    """Tracks futures and drives batches to completion.

    A thin registry used by the LLM adapters (§2.1): every future is
    indexed by ``future_id`` in a dictionary so subsequent API calls can
    reference running apps by ID ("the ID binding scheme").
    """

    def __init__(self):
        self.futures: dict[str, AppFuture] = {}

    def register(self, future: AppFuture) -> str:
        self.futures[future.future_id] = future
        return future.future_id

    def get(self, future_id: str) -> AppFuture:
        return self.futures[future_id]

    def __contains__(self, future_id: str) -> bool:
        return future_id in self.futures

    def wait_all(self) -> dict[str, Any]:
        """Resolve every registered future; returns id -> result."""
        return {fid: fut.result() for fid, fut in self.futures.items()}

    def __len__(self) -> int:
        return len(self.futures)
