"""Core workflow model: tasks, DAGs, futures.

Two complementary views of a workflow live here:

- The **declarative** view (:class:`TaskSpec` + :class:`Workflow`): a
  DAG of resource-annotated tasks with file-based dependencies.  This
  is what WMS engines (:mod:`repro.engines`) execute on the simulator
  and what the Common Workflow Scheduler (:mod:`repro.cws`) reasons
  about.
- The **programmatic** view (:mod:`repro.core.futures`): a Parsl-like
  ``@python_app`` API with :class:`AppFuture`/:class:`DataFuture`
  promises, executing real Python functions.  This is the layer §2's
  LLM function-calling adapters wrap.

Graph analytics used by scheduling strategies (upward rank, bottom
level, critical path) are in :mod:`repro.core.metrics`.
"""

from repro.core.task import TaskSpec
from repro.core.workflow import Workflow, WorkflowValidationError
from repro.core.futures import AppFuture, DataFuture, LocalExecutor, python_app
from repro.core.metrics import (
    bottom_levels,
    critical_path_length,
    merge_points,
    upward_ranks,
    workflow_width,
)

__all__ = [
    "AppFuture",
    "DataFuture",
    "LocalExecutor",
    "TaskSpec",
    "Workflow",
    "WorkflowValidationError",
    "bottom_levels",
    "critical_path_length",
    "merge_points",
    "python_app",
    "upward_ranks",
    "workflow_width",
]
