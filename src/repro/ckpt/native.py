"""Native checkpoint mode: true state restore, no replay.

The legacy runner (:mod:`repro.ckpt.runner`) re-executes from t=0 and
verifies; this mode restores.  It only works for workloads that follow
the disciplines in :mod:`repro.ckpt.workload` (explicit state dicts,
registered factories, absolute-time waits, off-grid event times,
op_seq ordering) — in exchange, resume cost is constant instead of
proportional to simulated progress: a run killed six simulated days in
re-enters at the last snapshot instant, not at t=0.

A native snapshot's payload is the complete resumable state:

- every live process's state dict (factory name + position),
- the Store's item queue,
- the tracer's id counters,
- the spill cursor (records durable before the snapshot).

``resume_native`` truncates the spill back to the cursor (records the
crashed run emitted after its last snapshot will be re-simulated),
builds a fresh ``Environment(initial_time=t)``, restores items and
processes, and continues — the final trace digest is byte-identical to
an uninterrupted run's.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs import enable_tracing
from repro.obs.stream import JsonlSpillSink, TeeSink, truncate_spill
from repro.simkernel import Environment

from repro.ckpt.coordinator import CheckpointCoordinator
from repro.ckpt.format import (
    SnapshotError,
    latest_snapshot,
    read_manifest,
    write_manifest,
    write_snapshot,
)
from repro.ckpt.runner import SPILL_DIR, CkptResult, trace_digest_from_spill
from repro.ckpt.workload import (
    WorkloadConfig,
    WorkloadContext,
    build_workload,
    restore_workload,
)

WORKLOAD_NAME = "producer-consumer"


def _tracing_sink(spill: JsonlSpillSink, extra_sinks: tuple):
    return TeeSink(spill, *extra_sinks) if extra_sinks else spill


def run_native(
    directory,
    config: Optional[WorkloadConfig] = None,
    cadence: float = 50.0,
    segment_records: int = 500,
    extra_sinks: tuple = (),
) -> CkptResult:
    """Run the reference workload with native snapshots into ``directory``."""
    directory = str(directory)
    os.makedirs(directory, exist_ok=True)
    if read_manifest(directory) is not None:
        raise SnapshotError(
            f"{directory!r} already holds a checkpointed run; use "
            "resume_native() to continue it"
        )
    config = config if config is not None else WorkloadConfig()
    manifest = {
        "kind": "native",
        "workload": WORKLOAD_NAME,
        "config": config.to_dict(),
        "cadence": float(cadence),
        "segment_records": int(segment_records),
        "completed": False,
    }
    write_manifest(directory, manifest)
    spill = JsonlSpillSink(
        os.path.join(directory, SPILL_DIR), segment_records=segment_records
    )
    env = Environment()
    enable_tracing(env, sink=_tracing_sink(spill, extra_sinks))
    ctx = WorkloadContext(env, config)
    build_workload(env, ctx)
    return _drive(directory, manifest, env, ctx, spill, start_index=0)


def resume_native(directory, extra_sinks: tuple = ()) -> CkptResult:
    """Continue an interrupted native run from its newest valid snapshot."""
    directory = str(directory)
    manifest = read_manifest(directory)
    if manifest is None:
        raise SnapshotError(f"{directory!r} has no checkpoint manifest")
    if manifest.get("kind") != "native":
        raise SnapshotError(
            f"{directory!r} holds a {manifest.get('kind')!r} run; use "
            "repro.ckpt.resume() for scenario checkpoints"
        )
    spill_dir = os.path.join(directory, SPILL_DIR)
    if manifest.get("completed"):
        return CkptResult(
            bench_id=WORKLOAD_NAME,
            directory=directory,
            digest=trace_digest_from_spill(spill_dir),
            already_complete=True,
        )
    config = WorkloadConfig.from_dict(manifest["config"])
    segment_records = int(manifest["segment_records"])
    found = latest_snapshot(directory)

    if found is None:
        # Crashed before the first snapshot: nothing to restore, so
        # wipe the partial spill and re-run from scratch.
        if os.path.isdir(spill_dir):
            for name in os.listdir(spill_dir):
                os.remove(os.path.join(spill_dir, name))
        spill = JsonlSpillSink(spill_dir, segment_records=segment_records)
        env = Environment()
        enable_tracing(env, sink=_tracing_sink(spill, extra_sinks))
        ctx = WorkloadContext(env, config)
        build_workload(env, ctx)
        return _drive(directory, manifest, env, ctx, spill, start_index=0)

    _path, body = found
    payload = body["payload"]
    truncate_spill(spill_dir, int(body["spill"]["records"]))
    spill = JsonlSpillSink.reopen(
        spill_dir, segment_records=segment_records, verify_prefix=False
    )
    env = Environment(initial_time=float(body["sim_time"]))
    tracer = enable_tracing(env, sink=_tracing_sink(spill, extra_sinks))
    tracer.restore_counters(
        payload["tracer"]["next_id"], payload["tracer"]["n_instants"]
    )
    ctx = WorkloadContext(env, config)
    ctx.store.ckpt_restore_items(payload["store"])
    restore_workload(env, ctx, payload["states"])
    return _drive(
        directory,
        manifest,
        env,
        ctx,
        spill,
        start_index=int(body["index"]),
        resumed_from=int(body["index"]),
    )


def _drive(
    directory: str,
    manifest: dict,
    env: Environment,
    ctx: WorkloadContext,
    spill: JsonlSpillSink,
    start_index: int,
    resumed_from: Optional[int] = None,
) -> CkptResult:
    cadence = float(manifest["cadence"])
    written: list = []

    def on_snapshot(index: int) -> None:
        spill.sync()
        write_snapshot(
            directory,
            {
                "kind": "native",
                "workload": WORKLOAD_NAME,
                "index": index,
                "sim_time": env.now,
                "cadence": cadence,
                "spill": spill.cursor(),
                "payload": {
                    "states": ctx.snapshot_states(),
                    "store": ctx.store.ckpt_items(),
                    "tracer": {
                        "next_id": env.tracer._next_id,
                        "n_instants": env.tracer._n_instants,
                    },
                },
            },
        )
        written.append(index)

    coordinator = CheckpointCoordinator(
        env,
        cadence,
        on_snapshot,
        horizon=ctx.config.horizon,
        start_index=start_index,
    )
    env.run()
    env.tracer.close()
    spill_dir = os.path.join(directory, SPILL_DIR)
    digest = trace_digest_from_spill(spill_dir)
    final = dict(manifest)
    final.update(
        completed=True,
        traced=True,
        digest=digest,
        records=spill.total_records,
        snapshots=written,
    )
    write_manifest(directory, final)
    return CkptResult(
        bench_id=WORKLOAD_NAME,
        directory=directory,
        digest=digest,
        snapshots=written,
        resumed_from=resumed_from,
        verified=resumed_from is not None,
        repaired_tail_bytes=spill.repaired_tail_bytes,
    )


__all__ = ["WORKLOAD_NAME", "resume_native", "run_native"]
