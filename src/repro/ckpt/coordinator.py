"""Checkpoint triggers: when to snapshot, and what state to fingerprint.

Two trigger styles serve the two checkpoint modes:

- :class:`SnapshotTrigger` — a :class:`~repro.obs.tracer.SpanSink`
  placed *after* the spill sink in a ``TeeSink``.  It watches the
  simulated time carried by emitted records and fires its callback the
  first time the stream crosses each cadence boundary.  Because it is
  driven by the record stream itself, the trigger instant is a pure
  function of the trace — a resumed re-execution crosses the same
  boundaries at the same records, which is what lets the verifier
  compare state fingerprints at the recorded index.  Used by the legacy
  (replay-token) mode where injecting a kernel process into an existing
  scenario would perturb the golden trace.
- :class:`CheckpointCoordinator` — a real kernel process that wakes on
  the cadence grid (exact absolute instants via ``env.timeout_at``, so
  float drift cannot split the grid) and snapshots live state.  Used by
  the native mode, whose workloads are built checkpoint-aware.

Fingerprints come from the append-only ``env.ckpt_probes`` registry
(see :func:`repro.simkernel.register_ckpt_probe`): each probe returns a
JSON-safe dict of *decisions, not caches*, and we store only its sha256
so snapshots stay small and comparisons stay byte-exact.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.tracer import SpanSink

from repro.ckpt.format import FingerprintMismatch, fingerprint_digest


def collect_fingerprints(env) -> dict:
    """Digest the kernel and every registered probe on ``env``.

    Keys are probe names (duplicates get ``#k`` suffixes in
    registration order, which is deterministic), values are sha256 hex
    digests of each probe's canonical-JSON state.
    """
    out: dict[str, str] = {}
    fp = getattr(env, "ckpt_fingerprint", None)
    if callable(fp):
        out["kernel"] = fingerprint_digest(fp())
    seen: dict[str, int] = {}
    for name, probe in getattr(env, "ckpt_probes", ()):
        k = seen.get(name, 0)
        seen[name] = k + 1
        key = name if k == 0 else f"{name}#{k}"
        out[key] = fingerprint_digest(probe())
    tracer = getattr(env, "tracer", None)
    next_id = getattr(tracer, "_next_id", None)
    if next_id is not None:
        out["tracer"] = fingerprint_digest(
            {"next_id": next_id, "n_instants": tracer._n_instants}
        )
    return out


def verify_fingerprints(recorded: dict, live: dict, *, where: str) -> None:
    """Raise :class:`FingerprintMismatch` naming every divergent probe.

    Probes present on one side only also fail — a resumed run that
    *lost* a component is as wrong as one whose component diverged.
    """
    bad = []
    for key in sorted(set(recorded) | set(live)):
        if recorded.get(key) != live.get(key):
            bad.append(
                f"{key}: recorded={recorded.get(key, '<absent>')[:12]} "
                f"live={live.get(key, '<absent>')[:12]}"
            )
    if bad:
        raise FingerprintMismatch(
            f"resumed state diverged at {where}: " + "; ".join(bad)
        )


class SnapshotTrigger(SpanSink):
    """Fires ``callback(index)`` when record time crosses the cadence grid.

    ``index`` is ``floor(t / cadence)`` at the crossing record — if one
    record jumps several grid steps only the landing index fires, and
    both the recorded and the resumed run see the identical record
    stream, so they fire the identical index sequence.

    The trigger reacts to span *finish* and instant events (their
    timestamps are final); span starts are ignored because an open span
    carries no end time yet and the finish will cover the interval.
    """

    def __init__(self, cadence: float, callback: Callable[[int], None]):
        if cadence <= 0:
            raise ValueError("cadence must be positive")
        self.cadence = float(cadence)
        self.callback = callback
        self._next_index = 1
        #: Indices fired so far, in order (diagnostics + tests).
        self.fired: list[int] = []

    def _maybe(self, t) -> None:
        if t is None or t < self._next_index * self.cadence:
            return
        index = int(t // self.cadence)
        self._next_index = index + 1
        self.fired.append(index)
        self.callback(index)

    def on_finish(self, span) -> None:
        self._maybe(span.end)

    def on_instant(self, instant) -> None:
        self._maybe(instant.t)


class CheckpointCoordinator:
    """Kernel process snapshotting on a simulated-time cadence.

    Wakes at exact absolute instants ``cadence, 2·cadence, …`` (grid by
    multiplication, never accumulation — float sums drift) and calls
    ``callback(index)`` with the kernel quiescent at that instant.  The
    process retires itself once ``horizon`` is reached so scenarios
    that run the event queue to exhaustion still terminate.
    """

    def __init__(
        self,
        env,
        cadence: float,
        callback: Callable[[int], None],
        horizon: float,
        start_index: int = 0,
    ):
        if cadence <= 0:
            raise ValueError("cadence must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.env = env
        self.cadence = float(cadence)
        self.callback = callback
        self.horizon = float(horizon)
        self.fired: list[int] = []
        self._proc = env.process(
            self._run(start_index), name="ckpt-coordinator"
        )

    def _run(self, start_index: int):
        index = start_index + 1
        while True:
            t = index * self.cadence
            if t > self.horizon:
                return
            yield self.env.timeout_at(t)
            self.fired.append(index)
            self.callback(index)
            index += 1


__all__ = [
    "CheckpointCoordinator",
    "SnapshotTrigger",
    "collect_fingerprints",
    "verify_fingerprints",
]
