"""``python -m repro.ckpt`` — checkpointed runs, resume, digests.

Subcommands::

    python -m repro.ckpt run --bench E2 --dir /tmp/ckpt        # record
    python -m repro.ckpt resume --dir /tmp/ckpt                # continue
    python -m repro.ckpt digest --dir /tmp/ckpt                # recompute
    python -m repro.ckpt run --native --dir /tmp/ckpt          # native mode

``run``/``resume`` print the final trace digest on stdout (the value
kill/resume round trips are gated on) and exit non-zero when the
scenario's SLO verdict fails.  ``--throttle-ms`` slows record emission
in wall-clock terms so the crash-injection harness can land SIGKILLs
mid-run; it does not affect simulated time or the trace bytes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.obs.tracer import SpanSink

from repro.ckpt.format import read_manifest
from repro.ckpt.native import resume_native, run_native
from repro.ckpt.runner import (
    DEFAULT_CADENCE,
    resume,
    run_checkpointed,
    trace_digest_from_spill,
)
from repro.ckpt.workload import WorkloadConfig


class ThrottleSink(SpanSink):
    """Wall-clock brake for crash-injection runs: sleep per record so a
    SIGKILL from the harness lands at an unpredictable point of the
    record stream.  Simulated time and trace bytes are untouched."""

    def __init__(self, seconds_per_record: float):
        self.delay = seconds_per_record

    def _brake(self) -> None:
        time.sleep(self.delay)  # simlint: disable=KER002 -- wall-clock pacing for the SIGKILL harness; deliberately outside simulated time

    def on_finish(self, span) -> None:
        self._brake()

    def on_instant(self, instant) -> None:
        self._brake()


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.ckpt",
        description="Deterministic checkpoint/resume for benchmark runs.",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    run = sub.add_parser("run", help="start a checkpointed run")
    run.add_argument("--dir", required=True, help="checkpoint directory")
    run.add_argument("--bench", default="E2", help="scenario id (default E2)")
    run.add_argument("--native", action="store_true",
                     help="run the checkpoint-native reference workload")
    run.add_argument("--cadence", type=float, default=None,
                     help="snapshot cadence in simulated seconds")
    run.add_argument("--full", action="store_true",
                     help="paper-scale scenario parameters")
    run.add_argument("--segment-records", type=int, default=2000)
    run.add_argument("--items", type=int, default=120,
                     help="native workload size")
    run.add_argument("--consumers", type=int, default=4)
    run.add_argument("--throttle-ms", type=float, default=0.0,
                     help="wall-clock sleep per record (crash harness)")

    res = sub.add_parser("resume", help="continue an interrupted run")
    res.add_argument("--dir", required=True)
    res.add_argument("--throttle-ms", type=float, default=0.0)

    dig = sub.add_parser("digest", help="recompute a run's trace digest")
    dig.add_argument("--dir", required=True)

    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    throttle = getattr(args, "throttle_ms", 0.0)
    extra = (ThrottleSink(throttle / 1000.0),) if throttle > 0 else ()

    if args.cmd == "run":
        if args.native:
            config = WorkloadConfig(
                n_items=args.items, n_consumers=args.consumers
            )
            result = run_native(
                args.dir,
                config,
                cadence=args.cadence if args.cadence is not None else 50.0,
                segment_records=args.segment_records,
                extra_sinks=extra,
            )
        else:
            result = run_checkpointed(
                args.bench,
                args.dir,
                cadence=(
                    args.cadence if args.cadence is not None else DEFAULT_CADENCE
                ),
                full=args.full,
                segment_records=args.segment_records,
                extra_sinks=extra,
            )
    elif args.cmd == "resume":
        manifest = read_manifest(args.dir)
        if manifest is not None and manifest.get("kind") == "native":
            result = resume_native(args.dir, extra_sinks=extra)
        else:
            result = resume(args.dir, extra_sinks=extra)
    else:  # digest
        manifest = read_manifest(args.dir)
        if manifest is None:
            print("error: no checkpoint manifest", file=sys.stderr)
            return 2
        if manifest.get("completed") and not manifest.get("traced", True):
            print(manifest["digest"])
            return 0
        import os

        print(trace_digest_from_spill(os.path.join(args.dir, "spill")))
        return 0

    print(result.digest)
    if result.resumed_from is not None:
        print(
            f"[resumed from snapshot {result.resumed_from}; "
            f"fingerprints {'verified' if result.verified else 'n/a'}; "
            f"repaired {result.repaired_tail_bytes} torn bytes]",
            file=sys.stderr,
        )
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
