"""Snapshot format: versioned, checksummed, atomically written.

A checkpoint directory holds:

- ``manifest.json`` — run configuration (scenario key, cadence, spill
  layout) plus the completion marker and final digest.  Written
  atomically at run start and rewritten at completion.
- ``ckpt-<index>.json`` — one snapshot per cadence index.  Each file
  is a single JSON document ``{"sha256": <hex>, "snapshot": <body>}``
  where the checksum covers the canonical encoding of the body; the
  body carries a schema version, the simulated trigger instant, the
  spill cursor, and the kind-specific payload.
- ``spill/`` — the :class:`~repro.obs.stream.JsonlSpillSink` segments
  (owned by the obs layer, not this module).

Durability contract: a snapshot file either parses *and* checksums
clean, or it is **torn** — the write-rename never completed — and
:func:`latest_snapshot` silently falls back to the previous one.  A
snapshot that checksums clean but carries a different schema version is
**stale** and is rejected loudly (:class:`SnapshotVersionError`): the
resuming code cannot know how to interpret it, and silently skipping it
would resume from an older instant than the user expects.

Everything is written tmp-file → flush → fsync → ``os.replace`` →
directory fsync, so a SIGKILL at any instant leaves at most one torn
``*.tmp`` leftover and never a half-written ``.json``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Optional

#: Bump on any incompatible change to the snapshot body layout.
SCHEMA_VERSION = 1
SCHEMA = f"repro.ckpt/{SCHEMA_VERSION}"

MANIFEST_NAME = "manifest.json"

_SNAPSHOT_RE = re.compile(r"^ckpt-(\d{6})\.json$")


class SnapshotError(RuntimeError):
    """Base class for snapshot load/validation failures."""


class TornSnapshotError(SnapshotError):
    """The file is unreadable, unparseable, or fails its checksum —
    the atomic rename never completed (or the file was mangled)."""


class SnapshotVersionError(SnapshotError):
    """The snapshot parses clean but uses a different schema version."""


class FingerprintMismatch(SnapshotError):
    """A resumed run reached the snapshot's trigger point in a
    different state than the recorded run — determinism is broken and
    the resume must not be trusted."""


def canonical_json(obj) -> str:
    """Deterministic, strict JSON: sorted keys, compact, no NaN/inf."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def fingerprint_digest(obj) -> str:
    """sha256 over the canonical JSON encoding of a probe's state."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def _atomic_write(path: str, text: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# -- snapshots ---------------------------------------------------------------


def snapshot_path(directory, index: int) -> str:
    return os.path.join(str(directory), f"ckpt-{index:06d}.json")


def write_snapshot(directory, body: dict) -> str:
    """Atomically persist one snapshot; returns its path.

    ``body`` must carry ``index`` (the cadence index, used for the
    filename) and is stamped with the schema identifiers here.
    """
    body = dict(body)
    body["schema"] = SCHEMA
    body["version"] = SCHEMA_VERSION
    encoded = canonical_json(body)
    doc = {
        "sha256": hashlib.sha256(encoded.encode()).hexdigest(),
        "snapshot": body,
    }
    path = snapshot_path(directory, int(body["index"]))
    _atomic_write(path, canonical_json(doc))
    return path


def read_snapshot(path) -> dict:
    """Load and validate one snapshot body.

    Raises :class:`TornSnapshotError` on unreadable/corrupt files and
    :class:`SnapshotVersionError` on schema mismatch.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise TornSnapshotError(f"unreadable snapshot {path!r}: {exc}") from exc
    if not isinstance(doc, dict) or "snapshot" not in doc or "sha256" not in doc:
        raise TornSnapshotError(f"snapshot {path!r} missing envelope fields")
    body = doc["snapshot"]
    encoded = canonical_json(body)
    digest = hashlib.sha256(encoded.encode()).hexdigest()
    if digest != doc["sha256"]:
        raise TornSnapshotError(
            f"checksum mismatch in {path!r}: {digest} != {doc['sha256']}"
        )
    if body.get("version") != SCHEMA_VERSION:
        raise SnapshotVersionError(
            f"snapshot {path!r} has schema {body.get('schema')!r}; this "
            f"build reads {SCHEMA!r} — refusing to guess at its layout"
        )
    return body


def list_snapshots(directory) -> list[tuple[int, str]]:
    """``(index, path)`` of every snapshot file, oldest first."""
    directory = str(directory)
    out = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        m = _SNAPSHOT_RE.match(name)
        if m:
            out.append((int(m.group(1)), os.path.join(directory, name)))
    out.sort()
    return out


def latest_snapshot(directory) -> Optional[tuple[str, dict]]:
    """Newest *valid* snapshot ``(path, body)``, or ``None``.

    Torn snapshots (the one kind of damage a crash can produce) are
    skipped, newest-first, falling back to the previous one — the
    recovery path the crash-injection harness exercises.  A stale
    schema version still raises: that is a build mismatch, not crash
    damage, and resuming past it silently would be lying about the
    resume point.
    """
    skipped: list[str] = []
    for index, path in reversed(list_snapshots(directory)):
        try:
            body = read_snapshot(path)
        except TornSnapshotError:
            skipped.append(path)
            continue
        if skipped:
            body = dict(body)
            body["_skipped_torn"] = skipped
        return path, body
    return None


def prune_snapshots(directory, keep: int = 2) -> int:
    """Delete all but the newest ``keep`` snapshots; returns #removed.

    Two generations are the safe floor: the newest may be mid-rename
    when the next crash strikes.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    snaps = list_snapshots(directory)
    doomed = snaps[:-keep] if len(snaps) > keep else []
    for _index, path in doomed:
        os.remove(path)
    return len(doomed)


# -- manifest ----------------------------------------------------------------


def write_manifest(directory, doc: dict) -> str:
    doc = dict(doc)
    doc["schema"] = SCHEMA
    doc["version"] = SCHEMA_VERSION
    path = os.path.join(str(directory), MANIFEST_NAME)
    _atomic_write(path, canonical_json(doc))
    return path


def read_manifest(directory) -> Optional[dict]:
    path = os.path.join(str(directory), MANIFEST_NAME)
    try:
        doc = json.loads(open(path).read())
    except FileNotFoundError:
        return None
    except (OSError, json.JSONDecodeError) as exc:
        raise TornSnapshotError(f"unreadable manifest {path!r}: {exc}") from exc
    if doc.get("version") != SCHEMA_VERSION:
        raise SnapshotVersionError(
            f"manifest {path!r} has schema {doc.get('schema')!r}; this "
            f"build reads {SCHEMA!r}"
        )
    return doc


__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "FingerprintMismatch",
    "SnapshotError",
    "SnapshotVersionError",
    "TornSnapshotError",
    "canonical_json",
    "fingerprint_digest",
    "latest_snapshot",
    "list_snapshots",
    "prune_snapshots",
    "read_manifest",
    "read_snapshot",
    "snapshot_path",
    "write_manifest",
    "write_snapshot",
]
