"""Deterministic checkpoint/resume for long simulated runs.

Two modes share one snapshot format (:mod:`repro.ckpt.format`):

- **Legacy / replay-token** (:mod:`repro.ckpt.runner`): the pinned
  E1–E8 scenarios run unmodified; snapshots record a spill cursor plus
  state fingerprints, and resume re-executes deterministically from
  t=0, verifying the surviving prefix byte-for-byte and the component
  fingerprints at the snapshot instant.
- **Native / state-restore** (:mod:`repro.ckpt.native`): workloads
  built from registered process factories snapshot explicit state
  dicts and resume by re-entering the factories in a fresh kernel at
  the snapshot instant — no replay, constant resume cost.

Crash-injection proof lives in ``tests/chaos`` and the ``ckpt-smoke``
CI job; the format and invariants are documented in
``docs/CHECKPOINT.md``.
"""

from repro.ckpt.format import (
    SCHEMA,
    SCHEMA_VERSION,
    FingerprintMismatch,
    SnapshotError,
    SnapshotVersionError,
    TornSnapshotError,
    canonical_json,
    fingerprint_digest,
    latest_snapshot,
    list_snapshots,
    prune_snapshots,
    read_manifest,
    read_snapshot,
    write_manifest,
    write_snapshot,
)
from repro.ckpt.coordinator import (
    CheckpointCoordinator,
    SnapshotTrigger,
    collect_fingerprints,
    verify_fingerprints,
)
from repro.ckpt.runner import (
    CkptResult,
    DEFAULT_CADENCE,
    baseline_digest,
    resume,
    run_checkpointed,
    trace_digest_from_spill,
    trace_digest_from_tracer,
    verdict_digest,
)
from repro.ckpt.native import resume_native, run_native
from repro.ckpt.workload import WorkloadConfig

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "CheckpointCoordinator",
    "CkptResult",
    "DEFAULT_CADENCE",
    "FingerprintMismatch",
    "SnapshotError",
    "SnapshotTrigger",
    "SnapshotVersionError",
    "TornSnapshotError",
    "baseline_digest",
    "canonical_json",
    "collect_fingerprints",
    "fingerprint_digest",
    "latest_snapshot",
    "list_snapshots",
    "prune_snapshots",
    "read_manifest",
    "read_snapshot",
    "resume",
    "resume_native",
    "run_checkpointed",
    "run_native",
    "WorkloadConfig",
    "trace_digest_from_spill",
    "trace_digest_from_tracer",
    "verdict_digest",
    "verify_fingerprints",
    "write_manifest",
    "write_snapshot",
]
