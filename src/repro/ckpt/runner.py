"""Checkpointed execution and resume of the E1–E8 report scenarios.

The scenarios were written long before this layer existed, and their
golden trace digests are pinned — so this runner snapshots them
**without touching their code**: a :func:`repro.obs.tracing_hook`
intercepts the builder's own ``enable_tracing(env)`` call and swaps in
a ``TeeSink(InMemorySink, JsonlSpillSink, SnapshotTrigger)``.  The
in-memory leg keeps ``tracer.spans`` (and hence the report verdicts)
byte-identical to an unhooked run; the spill leg persists every record
crash-safely; the trigger leg fires snapshots when the record stream
crosses the cadence grid.

Because the kernel's calendar holds live Python continuations, a
snapshot does not pickle frames.  It records a **replay token**: the
spill cursor (how many records are already durable) plus sha256
fingerprints of every registered component probe.  ``resume()``
re-executes the scenario deterministically from t=0 with the reopened
spill sink in *suppress-and-verify* mode — the surviving prefix is
hash-compared instead of re-written, appending continues mid-segment,
and when the run crosses the loaded snapshot's index the live
fingerprints must equal the recorded ones (:class:`FingerprintMismatch`
otherwise).  The final trace digest is computed from the spill
segments, so a kill-resume run is byte-comparable to an uninterrupted
one.

For workloads built checkpoint-aware (true state restore, no replay),
see :mod:`repro.ckpt.native`.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.export import to_jsonl
from repro.obs.stream import (
    JsonlSpillSink,
    SpillResumeMismatch,
    TeeSink,
    tracer_from_segments,
)
from repro.obs.tracer import InMemorySink, tracing_hook

from repro.ckpt.coordinator import (
    SnapshotTrigger,
    collect_fingerprints,
    verify_fingerprints,
)
from repro.ckpt.format import (
    FingerprintMismatch,
    SnapshotError,
    canonical_json,
    latest_snapshot,
    read_manifest,
    write_manifest,
    write_snapshot,
)

#: Default snapshot cadence in simulated seconds.  The reduced-scale
#: scenarios span a few simulated hours, so this yields a handful of
#: snapshots per run; week-long full-scale runs get ~1000.
DEFAULT_CADENCE = 600.0

SPILL_DIR = "spill"


@dataclass
class CkptResult:
    """Outcome of one checkpointed run (or resume)."""

    bench_id: str
    directory: str
    #: sha256 over the canonical final trace (spill reload → to_jsonl),
    #: or over the canonical verdict for untraced scenarios (E8).
    digest: str
    report: object = None
    #: Snapshot indices written during this invocation.
    snapshots: list = field(default_factory=list)
    #: Snapshot index the resume verified against (None = cold rerun).
    resumed_from: Optional[int] = None
    #: True when the loaded snapshot's fingerprints were checked live.
    verified: bool = False
    #: Torn bytes repaired off the spill tail during reopen.
    repaired_tail_bytes: int = 0
    #: True when the manifest already said the run finished — nothing
    #: was re-executed.
    already_complete: bool = False

    @property
    def ok(self) -> bool:
        report = self.report
        return bool(report.ok) if report is not None else True


def trace_digest_from_spill(spill_dir) -> str:
    """Canonical digest of a spilled trace (same bytes the golden
    digests pin: ``to_jsonl(tracer, include_metrics=True)``)."""
    tracer = tracer_from_segments(spill_dir)
    return hashlib.sha256(to_jsonl(tracer, include_metrics=True).encode()).hexdigest()


def trace_digest_from_tracer(tracer) -> str:
    return hashlib.sha256(to_jsonl(tracer, include_metrics=True).encode()).hexdigest()


def verdict_digest(report) -> str:
    """Digest for scenarios that produce no trace (E8: scalar SLOs)."""
    return hashlib.sha256(canonical_json(report.to_verdict()).encode()).hexdigest()


def baseline_digest(bench_id: str, full: bool = False) -> str:
    """Digest of an uninterrupted, un-checkpointed run — the golden
    value kill/resume runs must reproduce byte-for-byte."""
    from repro.report.scenarios import run_scenario

    state: dict = {}

    def hook(env, sink):
        state["env"] = env
        return None  # keep the scenario's own sink

    with tracing_hook(hook):
        report = run_scenario(bench_id.upper(), full=full)
    env = state.get("env")
    if env is None:
        return verdict_digest(report)
    return trace_digest_from_tracer(env.tracer)


def run_checkpointed(
    bench_id: str,
    directory,
    cadence: float = DEFAULT_CADENCE,
    full: bool = False,
    segment_records: int = 2000,
    extra_sinks: tuple = (),
) -> CkptResult:
    """Run scenario ``bench_id`` with periodic snapshots into ``directory``.

    The directory must be fresh (no manifest) — an interrupted run is
    continued with :func:`resume`, never by re-running this.
    """
    directory = str(directory)
    os.makedirs(directory, exist_ok=True)
    if read_manifest(directory) is not None:
        raise SnapshotError(
            f"{directory!r} already holds a checkpointed run; use "
            "resume() to continue it or point at a fresh directory"
        )
    manifest = {
        "kind": "scenario",
        "bench": bench_id.upper(),
        "cadence": float(cadence),
        "full": bool(full),
        "segment_records": int(segment_records),
        "completed": False,
    }
    write_manifest(directory, manifest)
    return _execute(directory, manifest, loaded=None, extra_sinks=extra_sinks)


def resume(directory, extra_sinks: tuple = ()) -> CkptResult:
    """Continue an interrupted checkpointed run to completion.

    Loads the newest valid snapshot (skipping a torn last one),
    re-executes the scenario deterministically with the spill prefix in
    suppress-and-verify mode, checks state fingerprints at the loaded
    snapshot's trigger index, and finishes the run.  Raises
    :class:`FingerprintMismatch` / ``SpillResumeMismatch`` when the
    re-execution does not reproduce what is on disk.
    """
    directory = str(directory)
    manifest = read_manifest(directory)
    if manifest is None:
        raise SnapshotError(f"{directory!r} has no checkpoint manifest")
    if manifest.get("completed"):
        spill_dir = os.path.join(directory, SPILL_DIR)
        digest = manifest.get("digest", "")
        if manifest.get("traced", True) and os.path.isdir(spill_dir):
            digest = trace_digest_from_spill(spill_dir)
        return CkptResult(
            bench_id=manifest["bench"],
            directory=directory,
            digest=digest,
            already_complete=True,
        )
    found = latest_snapshot(directory)
    loaded = found[1] if found is not None else None
    return _execute(directory, manifest, loaded=loaded, extra_sinks=extra_sinks)


def _execute(
    directory: str, manifest: dict, loaded: Optional[dict], extra_sinks: tuple
) -> CkptResult:
    from repro.report.scenarios import run_scenario

    bench = manifest["bench"]
    cadence = float(manifest["cadence"])
    spill_dir = os.path.join(directory, SPILL_DIR)
    resuming = loaded is not None or os.path.isdir(spill_dir)
    loaded_index = int(loaded["index"]) if loaded is not None else -1

    state: dict = {"env": None, "spill": None, "trigger": None}
    written: list = []
    verified: list = []

    def on_trigger(index: int) -> None:
        env, spill = state["env"], state["spill"]
        if index < loaded_index:
            return
        fingerprints = collect_fingerprints(env)
        if index == loaded_index:
            verify_fingerprints(
                loaded["fingerprints"],
                fingerprints,
                where=f"snapshot index {index} (t={env.now})",
            )
            if loaded["spill"]["records"] > spill.total_records:
                raise FingerprintMismatch(
                    f"snapshot {index} counts "
                    f"{loaded['spill']['records']} spill records but the "
                    f"resumed run has only {spill.total_records} at its "
                    "trigger — the spill directory does not match"
                )
            verified.append(index)
            return
        spill.sync()
        write_snapshot(
            directory,
            {
                "kind": "scenario",
                "bench": bench,
                "index": index,
                "sim_time": state["env"].now,
                "cadence": cadence,
                "spill": spill.cursor(),
                "fingerprints": fingerprints,
            },
        )
        written.append(index)

    def hook(env, sink):
        if state["env"] is not None:
            raise SnapshotError(
                "scenario enabled tracing on a second environment; the "
                "checkpoint runner supports exactly one traced env per run"
            )
        if resuming:
            spill = JsonlSpillSink.reopen(
                spill_dir, segment_records=int(manifest["segment_records"])
            )
        else:
            spill = JsonlSpillSink(
                spill_dir, segment_records=int(manifest["segment_records"])
            )
        trigger = SnapshotTrigger(cadence, on_trigger)
        state["env"], state["spill"], state["trigger"] = env, spill, trigger
        return TeeSink(InMemorySink(), spill, trigger, *extra_sinks)

    try:
        with tracing_hook(hook):
            report = run_scenario(bench, full=bool(manifest["full"]))
    except (SnapshotError, SpillResumeMismatch):
        raise
    except Exception as exc:
        # A trigger/sink failure mid-dispatch arrives wrapped in the
        # kernel's SimulationError; surface the checkpoint error itself.
        cause = exc.__cause__
        while cause is not None:
            if isinstance(cause, (SnapshotError, SpillResumeMismatch)):
                raise cause from exc
            cause = cause.__cause__
        raise

    env = state.get("env")
    if env is None:
        # Untraced scenario (E8): nothing to snapshot or spill; the
        # deterministic verdict document is the resumable artifact.
        digest = verdict_digest(report)
        final = dict(manifest)
        final.update(
            completed=True,
            traced=False,
            digest=digest,
            snapshots=[],
            verdict=report.to_verdict(),
        )
        write_manifest(directory, final)
        return CkptResult(
            bench_id=bench,
            directory=directory,
            digest=digest,
            report=report,
            resumed_from=loaded_index if loaded is not None else None,
        )

    env.tracer.close()
    spill = state["spill"]
    if loaded is not None and not verified:
        raise FingerprintMismatch(
            f"resumed run never crossed snapshot index {loaded_index} "
            f"(cadence {cadence}); the snapshot does not belong to this "
            "scenario/scale"
        )
    digest = trace_digest_from_spill(spill_dir)
    final = dict(manifest)
    final.update(
        completed=True,
        traced=True,
        digest=digest,
        records=spill.total_records,
        snapshots=sorted(set(manifest.get("snapshots", [])) | set(written)),
        verdict=report.to_verdict(),
    )
    write_manifest(directory, final)
    return CkptResult(
        bench_id=bench,
        directory=directory,
        digest=digest,
        report=report,
        snapshots=written,
        resumed_from=loaded_index if loaded is not None else None,
        verified=bool(verified),
        repaired_tail_bytes=spill.repaired_tail_bytes,
    )


__all__ = [
    "CkptResult",
    "DEFAULT_CADENCE",
    "SPILL_DIR",
    "baseline_digest",
    "resume",
    "run_checkpointed",
    "trace_digest_from_spill",
    "trace_digest_from_tracer",
    "verdict_digest",
]
