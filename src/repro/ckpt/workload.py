"""The checkpoint-native reference workload: producer → Store → consumers.

This is the workload family the *native* (state-restore) checkpoint
mode is proven on.  It follows four disciplines that make true restore
— re-entering registered factories in a fresh kernel at the snapshot
instant, no replay — byte-deterministic:

1. **Explicit state dicts.**  Every process keeps its whole resumable
   position in a JSON-safe dict (``ctx.states[name]``), updated
   *before* each blocking yield.  The generator's local variables are
   derived from the dict, never the other way round — so re-entering
   the factory with the dict reconstructs the continuation exactly.
2. **Absolute-time waits.**  All sleeps go through
   ``env.timeout_at(t)`` so a restored run re-arms bit-identical
   instants (``now + delta`` re-quantizes; see ``schedule_at``).
3. **Off-grid event times.**  Every workload event lands on ``x.125``
   instants (integer durations over a ``0.125`` epoch offset) while the
   snapshot cadence grid is integral — the coordinator can never
   collide with workload events, so each snapshot sees a quiescent
   kernel.
4. **op_seq ordering.**  A program-level counter stamps every blocking
   operation; restore re-creates processes sorted by their pending
   op_seq, which reproduces the original global insertion order — and
   therefore same-instant dispatch order and Store getter FIFO order.

Spans are recorded retrospectively (``start(t=t_begin)`` +
``finish()`` both at the work-end instant), so no span is ever open
across a snapshot and the tracer's only resumable state is its id
counter.
"""

from __future__ import annotations

import copy
from dataclasses import asdict, dataclass

from repro.simkernel import Environment
from repro.simkernel.resources import Store

#: All workload events happen at ``integer + EPOCH`` instants.
EPOCH = 0.125

#: Sentinel item telling a consumer to shut down.
POISON = -1


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one producer/consumers run (JSON round-trippable)."""

    n_items: int = 120
    n_consumers: int = 4
    #: Coordinator retirement time; must exceed the workload makespan.
    horizon: float = 10_000.0

    def __post_init__(self):
        if self.n_items < 1:
            raise ValueError("n_items must be >= 1")
        if self.n_consumers < 1:
            raise ValueError("n_consumers must be >= 1")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "WorkloadConfig":
        return cls(**doc)


def produce_gap(i: int) -> float:
    """Integer seconds between item ``i-1`` and item ``i``."""
    return float(1 + (i * 31) % 7)


def work_duration(item: int, k: int) -> float:
    """Integer service seconds for ``item`` on consumer ``k``."""
    return float(3 + (item * 7919 + k * 104729) % 13)


class WorkloadContext:
    """Shared plumbing: the store, the state registry, the op counter."""

    def __init__(self, env: Environment, config: WorkloadConfig):
        self.env = env
        self.config = config
        self.store = Store(env)
        #: name -> live state dict (the processes mutate these in place;
        #: a snapshot deep-copies the non-terminated ones).
        self.states: dict[str, dict] = {}
        self._op_seq = 0

    def next_op(self) -> int:
        self._op_seq += 1
        return self._op_seq

    def restore_op_counter(self, states: dict) -> None:
        """Continue the op counter past every restored stamp."""
        self._op_seq = max(
            (s.get("op_seq", 0) for s in states.values()), default=0
        )

    def snapshot_states(self) -> dict:
        """Deep-copied states of every still-live process."""
        return {
            name: copy.deepcopy(state)
            for name, state in self.states.items()
            if not state.get("terminated")
        }


# -- process bodies ----------------------------------------------------------
#
# Each body takes (env, ctx, state) where ``state`` is either the fresh
# dict built by ``build_workload`` or a restored snapshot payload; the
# body resumes from whatever position the dict describes.


def producer_body(env: Environment, ctx: WorkloadContext, state: dict):
    config = ctx.config
    total = config.n_items + config.n_consumers  # items + poison pills
    while state["next_item"] < total:
        state["op_seq"] = ctx.next_op()
        yield env.timeout_at(state["t_next"])
        i = state["next_item"]
        ctx.store.put(POISON if i >= config.n_items else i)
        state["next_item"] = i + 1
        state["t_next"] = state["t_next"] + produce_gap(i + 1)
    state["terminated"] = True


def consumer_body(env: Environment, ctx: WorkloadContext, state: dict):
    k = state["k"]
    while True:
        if state["phase"] == "get":
            state["op_seq"] = ctx.next_op()
            item = yield ctx.store.get()
            if item == POISON:
                break
            t_begin = env.now
            state.update(
                phase="work",
                item=item,
                t_begin=t_begin,
                t_end=t_begin + work_duration(item, k),
            )
        state["op_seq"] = ctx.next_op()
        yield env.timeout_at(state["t_end"])
        # Retrospective span: opened and closed at the work-end instant,
        # so no span is ever open when a snapshot fires.
        span = env.tracer.start(
            f"item-{state['item']}",
            category="work",
            component=f"consumer-{k}",
            tags={"n": state["done"]},
            t=state["t_begin"],
        )
        span.finish()
        state["done"] += 1
        state.update(phase="get", item=None, t_begin=None, t_end=None)
    state["terminated"] = True


#: factory name -> body; :mod:`repro.ckpt.native` re-enters processes
#: through this registry by the name stored in their state dict —
#: the checkpoint-safe alternative to pickling generator frames.
FACTORIES = {
    "ckpt.workload.producer": producer_body,
    "ckpt.workload.consumer": consumer_body,
}


def build_workload(env: Environment, ctx: WorkloadContext) -> None:
    """Create the fresh (t=0) process population."""
    producer_state = {
        "factory": "ckpt.workload.producer",
        "next_item": 0,
        "t_next": EPOCH,
        "op_seq": 0,
    }
    ctx.states["producer"] = producer_state
    env.process(
        producer_body(env, ctx, producer_state), name="ckpt-producer"
    )
    for k in range(ctx.config.n_consumers):
        state = {
            "factory": "ckpt.workload.consumer",
            "k": k,
            "phase": "get",
            "item": None,
            "t_begin": None,
            "t_end": None,
            "done": 0,
            "op_seq": 0,
        }
        ctx.states[f"consumer-{k}"] = state
        env.process(consumer_body(env, ctx, state), name=f"ckpt-consumer-{k}")


def restore_workload(env: Environment, ctx: WorkloadContext, states: dict) -> None:
    """Re-enter every checkpointed process from its state dict.

    Creation order follows each process's pending ``op_seq`` stamp —
    the order the original run issued the now-pending blocking ops —
    which reproduces same-instant dispatch order and Store getter FIFO
    order in the restored kernel.
    """
    ctx.restore_op_counter(states)
    for name in sorted(states, key=lambda n: states[n].get("op_seq", 0)):
        state = dict(states[name])
        body = FACTORIES[state["factory"]]
        ctx.states[name] = state
        env.process(body(env, ctx, state), name=f"ckpt-{name}")


__all__ = [
    "EPOCH",
    "FACTORIES",
    "POISON",
    "WorkloadConfig",
    "WorkloadContext",
    "build_workload",
    "consumer_body",
    "produce_gap",
    "producer_body",
    "restore_workload",
    "work_duration",
]
