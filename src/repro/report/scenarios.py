"""Named E1–E8 benchmark scenarios for ``python -m repro.report``.

Each scenario replays one paper experiment (the same code paths the
``benchmarks/bench_*.py`` suite drives) with tracing enabled, at a
reduced scale that finishes in seconds, and packages the outcome as a
:class:`~repro.report.RunReport` with scenario-appropriate SLO rules.
``full=True`` switches to the paper-scale parameters the slow
benchmarks use.

The rule sets are the benchmarks' shape assertions restated as SLOs:
a ``critical`` rule firing at the end of the run fails the report (and
the CI smoke job); ``warning`` rules flag paper-number drift without
failing anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.obs import enable_tracing
from repro.obs.alerts import Rule
from repro.report import RunReport, build_report
from repro.simkernel import Environment


@dataclass(frozen=True)
class Scenario:
    """One runnable benchmark scenario."""

    bench_id: str
    title: str
    build: Callable[[bool, bool], RunReport]
    #: What the paper figure/table this regenerates says.
    figure: str = ""

    def run(self, full: bool = False, stream: bool = False) -> RunReport:
        return self.build(full, stream)


# -- SLO rule sets ---------------------------------------------------------------
#
# The benchmarks' shape assertions restated as alert rules, shared
# between the scenario builders here and the bench_*.py suite (which
# runs the same experiments at paper scale and attaches the same rules
# to its verdicts).


def e1_rules() -> list:
    return [
        Rule("rank_mean_reduction >= 0.05", severity="critical", name="rank-wins"),
        Rule(
            "filesize_mean_reduction >= 0.05",
            severity="critical",
            name="filesize-wins",
        ),
        Rule("rank_mean_reduction <= 0.30", severity="warning", name="paper-band"),
    ]


def e2_rules(nodes: int) -> list:
    return [
        Rule("ovh_s <= 100", severity="critical", name="bootstrap-overhead"),
        Rule("core_utilization >= 0.85", severity="critical", name="utilization"),
        Rule("failed_tasks <= 0", severity="critical", name="no-failures"),
        Rule(
            f"series(entk-pilot-0/executing) <= {nodes // 8}",
            severity="critical",
            name="capacity-respected",
        ),
        Rule("p99(entk.exec) <= 1800", severity="warning", name="exec-p99"),
    ]


def e3_rules(nodes: int) -> list:
    return [
        Rule(
            "scheduling_throughput >= 100",
            severity="critical",
            name="scheduling-rate",
        ),
        Rule("launch_throughput >= 30", severity="critical", name="launch-rate"),
        Rule(
            f"peak_concurrency <= {nodes // 8}",
            severity="critical",
            name="plateau-at-capacity",
        ),
        Rule("scheduling_throughput <= 280", severity="warning", name="paper-269"),
        Rule("launch_throughput <= 60", severity="warning", name="paper-51"),
    ]


def e4_rules(n_tasks: int) -> list:
    return [
        # Node-failure casualties all recover; only the two numerical
        # failures stay failed, so done = submitted - 2.
        Rule(
            f"tasks_done >= {n_tasks - 2}",
            severity="critical",
            name="recovery-complete",
        ),
        Rule("permanently_failed <= 2", severity="critical", name="accepted-losses"),
        # Paper: 10 failure events (8 node + 2 numerical); retries of
        # the numerical tasks add a few more attempts.
        Rule(
            "task_failure_events <= 16", severity="warning", name="failure-events"
        ),
    ]


def e5_rules() -> list:
    return [
        Rule("failures <= 0", severity="critical", name="zero-failures"),
        Rule(
            "salmon_cpu_mean_pct >= 85",
            severity="critical",
            name="salmon-cpu-bound",
        ),
        Rule("salmon_mem_max_mb <= 4000", severity="critical", name="fits-in-ram"),
        Rule(
            "fasterq_iowait_mean_pct >= 15",
            severity="warning",
            name="fasterq-io-bound",
        ),
    ]


def e6_rules() -> list:
    return [
        # The paper's per-step directions: prefetch slower on HPC, the
        # compute steps faster or equal.
        Rule(
            "prefetch_hpc_rel_diff >= 0.3",
            severity="critical",
            name="prefetch-slower-on-hpc",
        ),
        Rule(
            "fasterq_hpc_rel_diff <= -0.1",
            severity="critical",
            name="fasterq-faster-on-hpc",
        ),
        Rule(
            "salmon_hpc_rel_diff <= -0.05",
            severity="critical",
            name="salmon-faster-on-hpc",
        ),
        Rule("hpc_job_efficiency >= 0.6", severity="warning", name="efficiency-72"),
    ]


def e7_rules() -> list:
    return [
        Rule("shard_cut >= 0.7", severity="critical", name="shards-cut"),
        Rule("time_cut >= 0.5", severity="critical", name="time-cut"),
        Rule("time_cut <= 0.85", severity="warning", name="paper-70pct"),
    ]


def e8_rules() -> list:
    return [
        Rule("steps_in_order >= 1", severity="critical", name="pipeline-order"),
        Rule("api_calls <= 5", severity="critical", name="one-call-per-step"),
        Rule("n_clones >= 3", severity="critical", name="clones-recovered"),
        Rule("confidence >= 0.5", severity="critical", name="phylogeny-confident"),
        Rule("recovered_n_clones >= 3", severity="critical", name="error-recovery"),
    ]


# -- E2/E3/E4: EnTK UQ Stage 3 on the simulated Frontier -------------------------


def _stage3_run(
    n_tasks: int,
    nodes: int,
    seed: int = 42,
    agent=None,
    extra_tasks=(),
    fault_at: Optional[float] = None,
):
    from repro.entk import (
        AppManager,
        Pipeline,
        ResourceDescription,
        Stage,
    )
    from repro.entk.platforms import platform_cluster
    from repro.exaam import frontier_stage3_tasks
    from repro.rm import BatchScheduler

    env = Environment()
    tracer = enable_tracing(env)
    cluster = platform_cluster(env, "frontier", nodes=nodes)
    batch = BatchScheduler(env, cluster, backfill=False)
    rd_kwargs = {"nodes": nodes, "walltime_s": 24 * 3600}
    if agent is not None:
        rd_kwargs.update(agent=agent, max_jobs=1)
    am = AppManager(env, batch, ResourceDescription(**rd_kwargs))
    tasks = frontier_stage3_tasks(
        n_tasks - len(extra_tasks), rng=np.random.default_rng(seed)
    )
    tasks += list(extra_tasks)
    pipeline = Pipeline(name="uq-stage3")
    stage = Stage(name="exaconstit")
    stage.add_tasks(tasks)
    pipeline.add_stage(stage)
    result = am.run([pipeline])
    if fault_at is not None:
        from repro.cluster import FaultInjector

        victim = cluster.nodes[nodes // 2].id
        FaultInjector(env, cluster, schedule=[(fault_at, victim)], downtime=None)
    env.run(until=result.done)
    return result, tracer


def _e2(full: bool, stream: bool = False) -> RunReport:
    n_tasks, nodes = (7875, 8000) if full else (400, 400)
    result, tracer = _stage3_run(n_tasks, nodes)
    prof = result.profiles[0]
    headline = {
        "tasks_done": prof.tasks_done,
        "core_utilization": prof.core_utilization,
        "gpu_utilization": prof.gpu_utilization,
        "ovh_s": prof.ovh,
        "ttx_s": prof.ttx,
        "job_runtime_s": prof.job_runtime,
    }
    return build_report(
        "E2",
        tracer,
        title="Fig 4 — EnTK resource utilization on Frontier",
        headline=headline,
        rules=e2_rules(nodes),
        component="entk-pilot-0",
        straggler_category="entk.exec",
        idle_metric=("entk-pilot-0", "cores"),
        notes=[
            f"{n_tasks} tasks on {nodes} nodes"
            + ("" if full else " (reduced scale; paper: 7875/8000)"),
            "paper: utilization 90%, OVH 85 s, OVH/runtime ~1%",
        ],
        stream=stream,
    )


def _e3(full: bool, stream: bool = False) -> RunReport:
    n_tasks, nodes = (7875, 8000) if full else (400, 400)
    result, tracer = _stage3_run(n_tasks, nodes)
    prof = result.profiles[0]
    headline = {
        "scheduling_throughput": prof.scheduling_throughput,
        "launch_throughput": prof.launch_throughput,
        "peak_concurrency": prof.peak_concurrency,
        "tasks_done": prof.tasks_done,
    }
    return build_report(
        "E3",
        tracer,
        title="Fig 5 — EnTK task-state concurrency curves",
        headline=headline,
        rules=e3_rules(nodes),
        component="entk-pilot-0",
        straggler_category="entk.exec",
        notes=[
            "paper: scheduling 269 tasks/s, launching 51 tasks/s, "
            f"plateau at {nodes // 8} concurrent tasks",
        ],
        stream=stream,
    )


def _e4(full: bool, stream: bool = False) -> RunReport:
    from repro.entk import AgentConfig, EnTask, TaskState

    def numerical_failure_task(name: str, duration: float) -> EnTask:
        def work(env, task, nodes):
            yield env.timeout(duration * 0.95)
            raise RuntimeError(
                "time step too large for this loading condition and RVE"
            )

        return EnTask(
            work=work, nodes=8, cores_per_node=56, gpus_per_node=8, name=name
        )

    n_tasks, nodes = (790, 800)  # the benchmark's 1/10-scale scenario
    agent = AgentConfig(node_strikes=8, fail_detect_s=15.0, max_task_retries=2)
    extra = [
        numerical_failure_task("constit-diverge-0", 900.0),
        numerical_failure_task("constit-diverge-1", 1100.0),
    ]
    result, tracer = _stage3_run(
        n_tasks, nodes, agent=agent, extra_tasks=extra, fault_at=2000.0
    )
    prof = result.profiles[0]
    permanently_failed = [
        t
        for pl in result.pipelines
        for t in pl.all_tasks()
        if t.state == TaskState.FAILED
    ]
    headline = {
        "tasks_done": result.tasks_done(),
        "task_failure_events": prof.tasks_failed_events,
        "permanently_failed": len(permanently_failed),
    }
    return build_report(
        "E4",
        tracer,
        title="EnTK fault tolerance under a node failure",
        headline=headline,
        rules=e4_rules(n_tasks),
        component="entk-pilot-0",
        straggler_category="entk.exec",
        notes=[
            "one node killed at t=2000 s with delayed detection; "
            "paper: 8 tasks killed and resubmitted OK, 2 numerical failures",
        ],
        stream=stream,
    )


# -- E1: CWS workflow-aware scheduling -------------------------------------------


def _e1(full: bool, stream: bool = False) -> RunReport:
    from repro.cws.experiment import makespan_experiment, run_workflow_once, summarize
    from repro.workloads import workflow_mix

    seeds = (0, 1, 2) if full else (0,)
    rows = makespan_experiment(seeds=seeds)
    summary = summarize(rows)
    headline = {
        f"{strategy}_mean_reduction": stats["mean_reduction"]
        for strategy, stats in summary["per_strategy"].items()
    }
    headline.update(
        {
            f"{strategy}_max_reduction": stats["max_reduction"]
            for strategy, stats in summary["per_strategy"].items()
        }
    )

    # One traced run (largest workflow of the mix under "rank") so the
    # report can show where a scheduled workflow's makespan goes.
    env = Environment()
    tracer = enable_tracing(env)
    mix = workflow_mix(seed=seeds[0])
    wf = max(mix, key=lambda w: len(w.graph))
    headline["traced_workflow_makespan_s"] = run_workflow_once(wf, "rank", env=env)

    return build_report(
        "E1",
        tracer,
        title="CWS workflow-aware scheduling vs FIFO",
        headline=headline,
        rules=e1_rules(),
        notes=[
            f"mix x strategies over seeds {seeds}; trace: "
            f"{wf.name!r} under 'rank'",
            "paper: avg 10.8% makespan reduction, up to 25%",
        ],
        stream=stream,
    )


# -- E5/E6: ATLAS sequencing pipeline, cloud vs HPC ------------------------------


def _e5(full: bool, stream: bool = False) -> RunReport:
    from repro.atlas import run_experiment, table1

    n_files = 99 if full else 24
    env = Environment()
    tracer = enable_tracing(env)
    result = run_experiment(
        "cloud", n_files=n_files, seed=0, max_instances=12, env=env
    )
    rows = table1(result.records)
    by_step = {r.step: r for r in rows}
    headline = {
        "files": len(result.records),
        "failures": result.failures,
        "makespan_h": result.makespan / 3600,
        "salmon_cpu_mean_pct": by_step["salmon"].cpu_mean_pct,
        "salmon_mem_max_mb": by_step["salmon"].mem_max_mb,
        "fasterq_iowait_mean_pct": by_step["fasterq_dump"].iowait_mean_pct,
    }
    return build_report(
        "E5",
        tracer,
        title="Table 1 — per-step instance metrics, cloud run",
        headline=headline,
        rules=e5_rules(),
        straggler_category="atlas.step",
        notes=[
            f"{n_files} SRA files"
            + ("" if full else " (reduced scale; paper: 99)"),
            "paper: Salmon CPU 94%/100%, fasterq-dump iowait 26% mean, "
            "batch ~2.7 h, 0 failures",
        ],
        stream=stream,
    )


def _e6(full: bool, stream: bool = False) -> RunReport:
    from repro.atlas import compare_cloud_hpc, run_experiment

    n_files = 99 if full else 24
    cloud = run_experiment("cloud", n_files=n_files, seed=0, max_instances=12)
    env = Environment()
    tracer = enable_tracing(env)
    hpc = run_experiment("hpc", n_files=n_files, seed=0, slots=12, env=env)
    rows = compare_cloud_hpc(cloud.records, hpc.records)
    by_step = {r.step: r for r in rows}
    headline = {
        "cloud_makespan_h": cloud.makespan / 3600,
        "hpc_makespan_h": hpc.makespan / 3600,
        "hpc_job_efficiency": hpc.job_efficiency(),
        "prefetch_hpc_rel_diff": by_step["prefetch"].hpc_relative_diff,
        "fasterq_hpc_rel_diff": by_step["fasterq_dump"].hpc_relative_diff,
        "salmon_hpc_rel_diff": by_step["salmon"].hpc_relative_diff,
        "deseq2_hpc_rel_diff": by_step["deseq2"].hpc_relative_diff,
    }
    return build_report(
        "E6",
        tracer,
        title="Table 2 — cloud vs HPC per-step execution times",
        headline=headline,
        rules=e6_rules(),
        straggler_category="atlas.step",
        notes=[
            f"{n_files} files per environment; trace covers the HPC run",
            "paper: prefetch 87% slower on HPC, fasterq 30% / salmon 19% "
            "faster, DESeq2 no difference",
        ],
        stream=stream,
    )


# -- E7: JAWS task fusion --------------------------------------------------------


def _e7(full: bool, stream: bool = False) -> RunReport:
    from repro.cluster import Cluster, NodeSpec
    from repro.jaws import (
        CromwellEngine,
        EngineOptions,
        fuse_linear_chains,
        parse_wdl,
    )
    from repro.rm import BatchScheduler

    # Local import: the WDL text generator lives with the benchmark's
    # cost-model narrative, but the workflow shape is simple enough to
    # restate here at parametric sample count.
    def jgi_workflow(samples: int) -> str:
        names = ", ".join(f'"s{i}.fq"' for i in range(samples))
        return f"""
        version 1.0
        task qc {{
            input {{ File reads }}
            command <<< run_qc >>>
            output {{ File cleaned = "cleaned.fq" }}
            runtime {{ cpu: 2, runtime_minutes: 1, docker: "jgi/qc@sha256:aa" }}
        }}
        task trim {{
            input {{ File cleaned }}
            command <<< run_trim >>>
            output {{ File trimmed = "trimmed.fq" }}
            runtime {{ cpu: 2, runtime_minutes: 1, docker: "jgi/qc@sha256:aa" }}
        }}
        task align {{
            input {{ File trimmed }}
            command <<< run_align >>>
            output {{ File bam = "out.bam" }}
            runtime {{ cpu: 4, runtime_minutes: 2, docker: "jgi/align@sha256:bb" }}
        }}
        task stats {{
            input {{ File bam }}
            command <<< run_stats >>>
            output {{ File report = "stats.txt" }}
            runtime {{ cpu: 1, runtime_minutes: 1, docker: "jgi/qc@sha256:aa" }}
        }}
        workflow sample_qc {{
            input {{ Array[File] samples = [{names}] }}
            scatter (s in samples) {{
                call qc {{ input: reads = s }}
                call trim {{ input: cleaned = qc.cleaned }}
                call align {{ input: trimmed = trim.trimmed }}
                call stats {{ input: bam = align.bam }}
            }}
        }}
        """

    options = EngineOptions(container_start_s=45.0, stage_overhead_s=420.0)
    samples = 25 if full else 8

    def execute(doc, env=None):
        env = env if env is not None else Environment()
        cluster = Cluster(
            env, pools=[(NodeSpec("c", cores=16, memory_gb=128), 32)]
        )
        engine = CromwellEngine(env, BatchScheduler(env, cluster), options)
        result = engine.run(doc)
        env.run(until=result.done)
        assert result.succeeded, result.error
        return result

    baseline = execute(parse_wdl(jgi_workflow(samples)))
    fused_doc, fusions = fuse_linear_chains(parse_wdl(jgi_workflow(samples)))
    env = Environment()
    tracer = enable_tracing(env)
    fused = execute(fused_doc, env=env)

    time_cut = 1 - fused.makespan / baseline.makespan
    shard_cut = 1 - fused.shard_count / baseline.shard_count
    headline = {
        "baseline_makespan_s": baseline.makespan,
        "fused_makespan_s": fused.makespan,
        "time_cut": time_cut,
        "baseline_shards": baseline.shard_count,
        "fused_shards": fused.shard_count,
        "shard_cut": shard_cut,
        "chain_length": len(list(fusions.values())[0]),
    }
    return build_report(
        "E7",
        tracer,
        title="JGI task fusion: 4-task QC chain -> 1",
        headline=headline,
        rules=e7_rules(),
        straggler_category="jaws.call",
        notes=[
            f"{samples}-sample scatter"
            + ("" if full else " (reduced scale; paper anecdote: 25)"),
            "trace covers the fused run; paper: -70% time, -71% shards",
        ],
        stream=stream,
    )


# -- E8: LLM-driven Phyloflow (no discrete-event trace) --------------------------


def _e8(full: bool, stream: bool = False) -> RunReport:
    from repro.llm import (
        ChatWorkflowDriver,
        MockFunctionCallingLLM,
        PhyloflowAdapters,
        make_synthetic_vcf,
    )

    instruction = (
        "Run the full phyloflow pipeline on tumor.vcf: transform the VCF, "
        "cluster the mutations into 3 clusters, and build the phylogeny."
    )
    pipeline_order = [
        "vcf_transform_from_file",
        "pyclone_vi_from_futures",
        "spruce_format_from_futures",
        "spruce_phylogeny_from_futures",
    ]
    vcf = make_synthetic_vcf(n_mutations=90, n_clones=3, depth=500, seed=11)
    adapters = PhyloflowAdapters(files={"tumor.vcf": vcf})
    driver = ChatWorkflowDriver(MockFunctionCallingLLM(), adapters)
    result = driver.run(instruction)
    tree = driver.final_value(result)

    adapters2 = PhyloflowAdapters(files={"tumor.vcf": vcf})
    adapters2.inject_failure("pyclone_vi_from_futures", times=1)
    driver2 = ChatWorkflowDriver(MockFunctionCallingLLM(), adapters2)
    recovery = driver2.run(instruction)
    tree2 = driver2.final_value(recovery)

    headline = {
        "api_calls": result.api_calls,
        "steps_in_order": int(result.calls_made() == pipeline_order),
        "futures_registered": len(result.future_ids),
        "n_clones": tree["n_clones"],
        "confidence": tree["confidence"],
        "errors_forwarded": len(recovery.errors),
        "recovered_n_clones": tree2["n_clones"],
    }
    # No simulated environment here: the LLM loop is synchronous, so
    # the report is metrics-only (rules evaluate on the scalars).
    return build_report(
        "E8",
        tracer=None,
        title="NL-driven Phyloflow execution via function calling",
        headline=headline,
        rules=e8_rules(),
        notes=["no discrete-event trace; scalar SLOs only"],
        stream=stream,
    )


SCENARIOS = {
    "E1": Scenario("E1", "CWS makespan reduction (§3.5)", _e1, "makespan table"),
    "E2": Scenario("E2", "EnTK utilization (§4.3, Fig 4)", _e2, "Fig 4"),
    "E3": Scenario("E3", "EnTK concurrency (§4.3, Fig 5)", _e3, "Fig 5"),
    "E4": Scenario("E4", "EnTK fault tolerance (§4.3)", _e4, "failure table"),
    "E5": Scenario("E5", "ATLAS cloud metrics (§5.2.1, Table 1)", _e5, "Table 1"),
    "E6": Scenario("E6", "ATLAS cloud vs HPC (§5.2.1, Table 2)", _e6, "Table 2"),
    "E7": Scenario("E7", "JAWS task fusion (§6.1)", _e7, "fusion table"),
    "E8": Scenario("E8", "LLM Phyloflow (§2.1)", _e8, "pipeline demo"),
}


def run_scenario(
    bench_id: str, full: bool = False, stream: bool = False
) -> RunReport:
    """Run one named scenario and return its report.

    ``stream=True`` routes the analyses through the constant-memory
    :class:`~repro.obs.stream.StubTrace` pass; verdicts are identical
    to the batch path (asserted in ``tests/report/test_stream_mode.py``).
    """
    key = bench_id.upper()
    if key not in SCENARIOS:
        raise KeyError(
            f"unknown benchmark {bench_id!r}; choose from {sorted(SCENARIOS)}"
        )
    return SCENARIOS[key].run(full=full, stream=stream)


__all__ = ["SCENARIOS", "Scenario", "run_scenario"]
