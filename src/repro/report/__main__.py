"""``python -m repro.report`` — unified run-report CLI.

Two input modes:

- a JSONL trace file written by :func:`repro.obs.export.write_jsonl`::

      python -m repro.report run.trace.jsonl --rule "utilization >= 0.85"

- a named benchmark scenario (reduced scale by default)::

      python -m repro.report --bench E2
      python -m repro.report --bench E2 --full   # paper-scale parameters

Either way the tool prints the ASCII report, writes the
machine-readable ``BENCH_<id>.json`` verdict under ``--out``, and
exits non-zero when a ``severity=critical`` SLO rule is still firing
at the end of the run — the contract the CI smoke job relies on.

``--stream`` routes either mode through the constant-memory streaming
pass (:mod:`repro.obs.stream`): trace files are parsed line by line
into compact span stubs instead of full spans, and scenario runs are
analyzed over the stub store.  Verdicts are identical to the batch
path.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.obs.alerts import Rule, RuleError
from repro.report import build_report, write_verdict
from repro.report.scenarios import SCENARIOS, run_scenario


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Analyze a JSONL trace or run a named benchmark and "
        "emit a unified run report (ASCII + JSON verdict).",
    )
    parser.add_argument(
        "trace",
        nargs="?",
        help="JSONL trace file (from repro.obs.export.write_jsonl)",
    )
    parser.add_argument(
        "--bench",
        choices=sorted(SCENARIOS),
        help="run a named benchmark scenario instead of reading a trace",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the scenario at paper scale (slow) instead of reduced",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="use the constant-memory streaming pass (identical verdicts)",
    )
    parser.add_argument(
        "--resume",
        metavar="CKPT_DIR",
        help="continue an interrupted checkpointed run (see repro.ckpt) "
        "and report it; verdicts and exit code are identical to an "
        "uninterrupted batch run",
    )
    parser.add_argument(
        "--out",
        default="benchmarks/results",
        help="directory for the BENCH_<id>.json verdict (default: %(default)s)",
    )
    parser.add_argument(
        "--name",
        help="bench id for trace-file mode (default: the file stem)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=[],
        metavar="EXPR",
        help='critical SLO rule, e.g. "utilization >= 0.85" (repeatable)',
    )
    parser.add_argument(
        "--warn",
        action="append",
        default=[],
        metavar="EXPR",
        help="warning-severity SLO rule (repeatable)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the JSON verdict to stdout instead of the ASCII report",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the available benchmark scenarios and exit",
    )
    return parser.parse_args(argv)


def _extra_rules(args) -> list:
    rules = []
    for expr in args.rule:
        rules.append(Rule(expr, severity="critical"))
    for expr in args.warn:
        rules.append(Rule(expr, severity="warning"))
    return rules


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])

    if args.list:
        for bench_id in sorted(SCENARIOS):
            s = SCENARIOS[bench_id]
            print(f"{bench_id}  {s.title}")
        return 0

    try:
        extra = _extra_rules(args)
    except RuleError as exc:
        print(f"error: bad rule: {exc}", file=sys.stderr)
        return 2

    if args.bench and args.trace:
        print("error: pass a trace file OR --bench, not both", file=sys.stderr)
        return 2

    if args.resume:
        if args.bench or args.trace:
            print(
                "error: --resume takes its scenario from the checkpoint "
                "manifest; don't combine it with --bench or a trace file",
                file=sys.stderr,
            )
            return 2
        from repro.ckpt import SnapshotError
        from repro.ckpt import resume as ckpt_resume
        from repro.ckpt.format import read_manifest

        try:
            result = ckpt_resume(args.resume)
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if result.report is None:
            # The run already completed in a previous invocation; the
            # manifest carries its verdict document verbatim.
            manifest = read_manifest(args.resume) or {}
            verdict = manifest.get("verdict")
            if verdict is None:
                print(
                    f"error: {args.resume!r} finished without a stored "
                    "verdict (pre-verdict checkpoint layout?)",
                    file=sys.stderr,
                )
                return 2
            print(json.dumps(verdict, indent=2, sort_keys=True))
            return 0 if verdict.get("status") == "pass" else 1
        report = result.report
    elif args.bench:
        report = run_scenario(args.bench, full=args.full, stream=args.stream)
        if extra:
            # User-supplied rules join the scenario's own; the tracer is
            # not retained on the report, so they evaluate against the
            # headline scalars.
            from repro.obs.alerts import evaluate_rules

            extra_report = evaluate_rules(
                extra, trace=None, context=report.headline, record=False
            )
            if report.alert_report is None:
                report.alert_report = extra_report
            else:
                report.alert_report.outcomes.extend(extra_report.outcomes)
    elif args.trace:
        path = pathlib.Path(args.trace)
        if not path.exists():
            print(f"error: no such trace file: {path}", file=sys.stderr)
            return 2
        try:
            if args.stream:
                from repro.report import stream_report_from_jsonl

                report = stream_report_from_jsonl(
                    path,
                    bench_id=args.name or path.stem.split(".")[0],
                    title=f"trace {path.name}",
                    rules=extra,
                )
            else:
                from repro.obs.export import read_jsonl

                tracer = read_jsonl(path)
                report = build_report(
                    args.name or path.stem.split(".")[0],
                    tracer,
                    title=f"trace {path.name}",
                    rules=extra,
                )
        except RuleError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        print("error: pass a trace file or --bench (see --help)", file=sys.stderr)
        return 2

    verdict_path = write_verdict(report, args.out)
    if args.json:
        print(json.dumps(report.to_verdict(), indent=2, sort_keys=True))
    else:
        print(report.render_ascii())
        print(f"\n[verdict written to {verdict_path}]")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
