"""Unified run reports: one trace in, ASCII + JSON verdict out.

A :class:`RunReport` bundles everything a benchmark needs to explain
its own figure:

- headline scalar metrics (the numbers the paper's tables print),
- the critical-path phase decomposition (:mod:`repro.obs.analyze`),
- the EnTK OVH/TTX overhead split when the trace has a pilot,
- stragglers and idle gaps,
- SLO rule outcomes (:mod:`repro.obs.alerts`).

:func:`build_report` assembles one from a tracer (or from bare
scalars when a scenario has no discrete-event trace, like the LLM
pipeline), :meth:`RunReport.render_ascii` renders it with
:mod:`repro.viz.ascii_charts`, and :func:`write_verdict` emits the
machine-readable ``BENCH_<id>.json`` that CI consumes — WfBench's
"benchmarks must produce machine-readable verdicts" made concrete.

``python -m repro.report`` (see :mod:`repro.report.__main__`) drives
the same machinery from the command line over a JSONL trace or a
named E1–E8 benchmark scenario.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.obs.alerts import AlertReport, Rule, evaluate_rules
from repro.obs.analyze import (
    CriticalPath,
    OverheadDecomposition,
    critical_path,
    decompose_overheads,
    find_idle_gaps,
    find_stragglers,
    pilot_components,
)
from repro.obs.query import TraceQuery
from repro.obs.tracer import Tracer
from repro.resilience.slo import resilience_context, stock_resilience_rules
from repro.viz import render_stacked_bar, render_table

#: Schema version of the BENCH_<id>.json verdict documents.
VERDICT_VERSION = 1


@dataclass
class RunReport:
    """Everything one benchmark run says about itself."""

    bench_id: str
    title: str = ""
    headline: dict = field(default_factory=dict)
    critical_path: Optional[CriticalPath] = None
    overheads: Optional[OverheadDecomposition] = None
    stragglers: list = field(default_factory=list)
    idle_gaps: list = field(default_factory=list)
    alert_report: Optional[AlertReport] = None
    window: Optional[tuple] = None  # (t0, t1) the analyses cover
    notes: list = field(default_factory=list)

    # -- verdict --------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """False only when a critical alert is left firing."""
        return self.alert_report is None or self.alert_report.ok

    @property
    def status(self) -> str:
        return "pass" if self.ok else "fail"

    def to_verdict(self) -> dict:
        """The machine-readable ``BENCH_<id>.json`` document."""
        doc = {
            "version": VERDICT_VERSION,
            "bench": self.bench_id,
            "title": self.title,
            "status": self.status,
            "headline": _json_scalars(self.headline),
            "alerts": (
                self.alert_report.to_dict()
                if self.alert_report is not None
                else {"ok": True, "rules": []}
            ),
        }
        if self.window is not None:
            doc["window"] = list(self.window)
        if self.critical_path is not None:
            cp = self.critical_path
            doc["critical_path"] = {
                "makespan": cp.makespan,
                "phase_totals": cp.phase_totals(),
                "blame": cp.blame(),
                "segments": len(cp.segments),
                "longest": [s.to_dict() for s in cp.longest_segments(5)],
            }
        if self.overheads is not None:
            doc["overheads"] = self.overheads.to_dict()
        if self.stragglers:
            doc["stragglers"] = [s.to_dict() for s in self.stragglers[:10]]
            doc["straggler_count"] = len(self.stragglers)
        if self.idle_gaps:
            doc["idle_gaps"] = [g.to_dict() for g in self.idle_gaps[:10]]
            doc["idle_total_s"] = sum(g.duration for g in self.idle_gaps)
        if self.notes:
            doc["notes"] = list(self.notes)
        return doc

    # -- rendering ------------------------------------------------------------

    def render_ascii(self) -> str:
        """Terminal rendering: headline, phases, overheads, alerts."""
        blocks = []
        header = f"run report — {self.bench_id}"
        if self.title:
            header += f": {self.title}"
        blocks.append(header)
        blocks.append("=" * min(len(header), 78))

        if self.headline:
            rows = [[k, _fmt(v)] for k, v in self.headline.items()]
            blocks.append("headline metrics:\n" + render_table(["metric", "value"], rows))

        if self.critical_path is not None:
            cp = self.critical_path
            totals = cp.phase_totals()
            if totals and cp.makespan > 0:
                rows = [
                    [phase, f"{seconds:,.1f} s", f"{cp.blame()[phase] * 100:5.1f} %"]
                    for phase, seconds in totals.items()
                ]
                blocks.append(
                    "critical path — where the makespan went "
                    f"({cp.makespan:,.1f} s over {len(cp.segments)} segments):\n"
                    + render_table(["phase", "time", "blame"], rows)
                    + "\n"
                    + render_stacked_bar(list(totals.items()), total=cp.makespan)
                )

        if self.overheads is not None:
            od = self.overheads
            rows = [
                ["job runtime", f"{od.job_runtime:,.1f} s"],
                ["OVH (bootstrap)", f"{od.ovh:,.1f} s"],
                ["TTX", f"{od.ttx:,.1f} s"],
                ["ramp-up", f"{od.ramp_up:,.1f} s"],
                ["steady state", f"{od.steady:,.1f} s"],
                ["drain", f"{od.drain:,.1f} s"],
                ["shutdown", f"{od.shutdown:,.1f} s"],
                ["mean schedule wait", f"{od.mean_schedule_wait:,.2f} s"],
                ["mean launch wait", f"{od.mean_launch_wait:,.2f} s"],
                ["mean exec", f"{od.mean_exec:,.1f} s"],
            ]
            block = f"overhead decomposition ({od.component}):\n" + render_table(
                ["slice", "value"], rows
            )
            if od.job_runtime > 0:
                block += "\n" + render_stacked_bar(od.slices(), total=od.job_runtime)
            blocks.append(block)

        if self.stragglers:
            rows = [
                [
                    s.name,
                    s.category,
                    f"{s.duration:,.1f} s",
                    f"{s.median:,.1f} s",
                    "inf" if s.score == float("inf") else f"{s.score:.1f}",
                ]
                for s in self.stragglers[:8]
            ]
            blocks.append(
                f"stragglers ({len(self.stragglers)} flagged):\n"
                + render_table(["span", "category", "duration", "sibling median", "score"], rows)
            )

        if self.idle_gaps:
            total = sum(g.duration for g in self.idle_gaps)
            rows = [
                [f"{g.t0:,.1f}", f"{g.t1:,.1f}", f"{g.duration:,.1f} s"]
                for g in self.idle_gaps[:8]
            ]
            blocks.append(
                f"idle gaps ({len(self.idle_gaps)}, {total:,.1f} s total):\n"
                + render_table(["from", "to", "duration"], rows)
            )

        if self.alert_report is not None:
            blocks.append(
                "SLO rules:\n"
                + render_table(
                    ["rule", "severity", "verdict", "value", "expr"],
                    self.alert_report.summary_rows(),
                )
            )

        blocks.append(f"verdict: {self.status.upper()}")
        return "\n\n".join(blocks)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:,.4g}"
    return str(value)


def _json_scalars(mapping: dict) -> dict:
    out = {}
    for k, v in mapping.items():
        if hasattr(v, "item"):  # numpy scalar
            v = v.item()
        out[str(k)] = v
    return out


def build_report(
    bench_id: str,
    tracer: Optional[Tracer] = None,
    title: str = "",
    headline: Optional[dict] = None,
    rules: Sequence[Rule] = (),
    window: Optional[tuple] = None,
    component: Optional[str] = None,
    phase_of: Optional[Callable] = None,
    deps: Optional[dict] = None,
    straggler_category: Optional[str] = None,
    idle_metric: Optional[tuple] = None,
    record_alerts: bool = True,
    notes: Sequence[str] = (),
    stream: bool = False,
) -> RunReport:
    """Assemble a :class:`RunReport`.

    With a ``tracer``, the critical path is extracted over ``window``
    (default: the pilot job's interval when there is exactly one,
    otherwise the whole trace), overheads are decomposed when an EnTK
    pilot is present, stragglers are hunted in ``straggler_category``
    (default: the busiest leaf category), idle gaps are read from the
    registry metric named by ``idle_metric=(component, name)`` when
    given, and ``rules`` are evaluated on simulated time with the
    headline scalars as context.  Without a tracer, only headline
    metrics and scalar rules are evaluated.

    ``stream=True`` runs the identical analyses over a compact
    :class:`~repro.obs.stream.StubTrace` span store instead of full
    spans — same code, same values, byte-identical verdicts — either
    converting the given tracer or accepting a ``StubTrace`` directly
    (see :func:`stream_report_from_jsonl`).  Dependency-aware critical
    paths (``deps``) need the full span tags and are rejected in
    stream mode.
    """
    if stream and tracer is not None:
        if deps is not None:
            raise ValueError(
                "stream mode drops span tags; dependency-aware critical "
                "paths (deps=...) need the batch path"
            )
        from repro.obs.stream import StubTrace

        if not isinstance(tracer, StubTrace):
            tracer = StubTrace.from_tracer(tracer)
    headline = dict(headline or {})
    query = TraceQuery(tracer) if tracer is not None else None

    cp = None
    overheads = None
    stragglers: list = []
    idle_gaps: list = []

    if query is not None:
        if window is None:
            jobs = [
                s
                for s in query.spans(category="rm.job")
                if s.end is not None
            ]
            if component is not None:
                jobs = [s for s in jobs if s.name == component]
            if len(jobs) == 1:
                window = (jobs[0].start, jobs[0].end)
        cp = critical_path(
            query,
            t0=window[0] if window else None,
            t1=window[1] if window else None,
            phase_of=phase_of,
            deps=deps,
        )
        window = (cp.t0, cp.t1)

        pilots = pilot_components(query)
        target = component if component is not None else (
            pilots[0] if len(pilots) == 1 else None
        )
        if target is not None and target in pilots:
            overheads = decompose_overheads(query, component=target)
            headline.setdefault("ovh_s", overheads.ovh)
            headline.setdefault("ttx_s", overheads.ttx)
            headline.setdefault("job_runtime_s", overheads.job_runtime)
            # The agent's capacity trackers ride along in the registry;
            # surface them as scalars so utilization rules work on a
            # bare reloaded trace.
            for metric_name, key in (
                ("cores", "core_utilization"),
                ("gpus", "gpu_utilization"),
            ):
                try:
                    util = tracer.metrics.get(metric_name, component=target)
                except KeyError:
                    continue
                headline.setdefault(
                    key,
                    util.utilization(overheads.job_start, overheads.job_end),
                )

        if straggler_category is None:
            leaf_counts = query.category_counts(
                exclude=("rm.job", "kernel.process", "obs.alert")
            )
            if leaf_counts:
                straggler_category = max(
                    sorted(leaf_counts), key=lambda c: leaf_counts[c]
                )
        if straggler_category:
            stragglers = find_stragglers(query, category=straggler_category)

        if idle_metric is not None:
            comp, name = idle_metric
            try:
                metric = tracer.metrics.get(name, component=comp)
            except KeyError:
                metric = None
            if metric is not None:
                idle_gaps = find_idle_gaps(
                    metric,
                    t0=window[0] if window else None,
                    t1=window[1] if window else None,
                )

    alert_report = None
    if rules:
        alert_report = evaluate_rules(
            list(rules),
            trace=tracer,
            context=headline,
            record=record_alerts,
        )

    return RunReport(
        bench_id=bench_id,
        title=title,
        headline=headline,
        critical_path=cp,
        overheads=overheads,
        stragglers=stragglers,
        idle_gaps=idle_gaps,
        alert_report=alert_report,
        window=window,
        notes=list(notes),
    )


def stream_report_from_jsonl(
    path: Union[str, pathlib.Path],
    bench_id: Optional[str] = None,
    **kwargs,
) -> RunReport:
    """Build a report from a JSONL trace without materializing spans.

    The file is stream-parsed line by line into a
    :class:`~repro.obs.stream.StubTrace` (compact stubs + metric
    registry; tags, events and instants are never held), then
    :func:`build_report` runs the unchanged analyses over it.  Output
    is byte-identical to loading the full trace and reporting on it.
    """
    from repro.obs.stream import StubTrace

    trace = StubTrace.from_jsonl_path(path)
    if bench_id is None:
        bench_id = pathlib.Path(path).stem.split(".")[0]
    return build_report(bench_id, trace, stream=True, **kwargs)


def write_verdict(
    report: RunReport, out_dir: Union[str, pathlib.Path]
) -> pathlib.Path:
    """Write ``BENCH_<id>.json`` under ``out_dir``; returns the path."""
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{report.bench_id}.json"
    path.write_text(
        json.dumps(report.to_verdict(), indent=2, sort_keys=True) + "\n"
    )
    return path


__all__ = [
    "RunReport",
    "build_report",
    "resilience_context",
    "stock_resilience_rules",
    "stream_report_from_jsonl",
    "write_verdict",
    "Rule",
    "VERDICT_VERSION",
]
