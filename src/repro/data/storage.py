"""Storage sites: bandwidth-limited endpoints with capacity."""

from __future__ import annotations

from typing import Optional

from repro.simkernel import Container, Environment


class StorageError(RuntimeError):
    """Capacity exceeded or unknown storage operation."""


class StorageSite:
    """A named storage endpoint (S3 bucket, scratch FS, NCBI mirror).

    Bandwidth is modelled as fair sharing: a site with ``egress_mbps``
    total read bandwidth serving ``k`` concurrent streams gives each
    stream ``egress_mbps / k``.  The implementation approximates fair
    sharing conservatively with a fixed per-stream share and a
    concurrency cap (``max_streams``): stream time = size / min(share,
    total/streams).  This keeps the event count linear in transfers
    while preserving the contention behaviour that distinguishes the
    paper's cloud-vs-HPC results (E6: prefetch fast from S3-internal,
    slow over the public internet).

    Parameters
    ----------
    env: simulation environment.
    name: unique site name used by :class:`~repro.data.files.FileCatalog`.
    egress_mbps / ingress_mbps:
        Total read/write bandwidth in MB/s.
    latency_s:
        Fixed per-operation setup latency (request round-trip, metadata).
    capacity_bytes:
        Optional storage capacity; writes beyond it raise
        :class:`StorageError` (scratch quota behaviour).
    max_streams:
        Concurrent stream cap; additional operations queue FIFO.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        egress_mbps: float = 1000.0,
        ingress_mbps: float = 1000.0,
        latency_s: float = 0.05,
        capacity_bytes: Optional[int] = None,
        max_streams: int = 64,
    ):
        if egress_mbps <= 0 or ingress_mbps <= 0:
            raise ValueError("bandwidths must be positive")
        if max_streams <= 0:
            raise ValueError("max_streams must be positive")
        self.env = env
        self.name = name
        self.egress_mbps = egress_mbps
        self.ingress_mbps = ingress_mbps
        self.latency_s = latency_s
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0
        self._streams = Container(env, capacity=max_streams, init=0)
        self.max_streams = max_streams
        #: Completed operation counters (provenance).
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- capacity -----------------------------------------------------------

    def reserve(self, size_bytes: int) -> None:
        """Account for ``size_bytes`` stored here; enforces quota."""
        if self.capacity_bytes is not None and self.used_bytes + size_bytes > self.capacity_bytes:
            raise StorageError(
                f"{self.name}: write of {size_bytes:,}B exceeds capacity "
                f"({self.used_bytes:,}/{self.capacity_bytes:,}B used)"
            )
        self.used_bytes += size_bytes

    def free(self, size_bytes: int) -> None:
        self.used_bytes = max(0, self.used_bytes - size_bytes)

    # -- bandwidth model --------------------------------------------------------

    def _stream_seconds(self, size_bytes: int, total_mbps: float) -> float:
        """Transfer seconds for one stream at its fair share.

        Called after the stream slot is acquired, so ``level`` already
        includes this stream.
        """
        share = total_mbps / max(self._streams.level, 1)
        return size_bytes / 1e6 / share

    def read(self, size_bytes: int):
        """Process generator: read ``size_bytes`` from this site."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        yield self._streams.put(1)
        try:
            yield self.env.timeout(
                self.latency_s + self._stream_seconds(size_bytes, self.egress_mbps)
            )
            self.reads += 1
            self.bytes_read += size_bytes
        finally:
            yield self._streams.get(1)

    def write(self, size_bytes: int):
        """Process generator: write ``size_bytes`` to this site."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        self.reserve(size_bytes)
        yield self._streams.put(1)
        try:
            yield self.env.timeout(
                self.latency_s + self._stream_seconds(size_bytes, self.ingress_mbps)
            )
            self.writes += 1
            self.bytes_written += size_bytes
        finally:
            yield self._streams.get(1)

    @property
    def active_streams(self) -> int:
        return int(self._streams.level)

    def __repr__(self) -> str:
        return (
            f"<StorageSite {self.name} egress={self.egress_mbps}MB/s "
            f"streams={self.active_streams}/{self.max_streams}>"
        )
