"""Managed inter-site transfers (the Globus role in JAWS, §6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simkernel import Environment, Resource
from repro.data.files import File, FileCatalog
from repro.data.storage import StorageSite


@dataclass(frozen=True)
class TransferRecord:
    """Provenance record of one completed transfer."""

    file_name: str
    size_bytes: int
    src: str
    dst: str
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def effective_mbps(self) -> float:
        return self.size_bytes / 1e6 / self.duration if self.duration > 0 else float("inf")


class TransferService:
    """Moves files between storage sites, updating the catalog.

    Mirrors the Globus model JAWS relies on: a managed service with a
    bounded number of concurrent transfer jobs; each transfer pays both
    the source's egress and the destination's ingress costs (sequential
    read-then-write approximation of a pipelined stream: the slower of
    the two dominates, plus one latency each — a deliberate,
    conservative simplification).

    The catalog is updated *after* the bytes land, so readers polling
    :meth:`FileCatalog.present_at` see consistent state.
    """

    def __init__(
        self,
        env: Environment,
        catalog: FileCatalog,
        sites: dict[str, StorageSite],
        max_concurrent: int = 16,
    ):
        self.env = env
        self.catalog = catalog
        self.sites = dict(sites)
        self._slots = Resource(env, capacity=max_concurrent)
        #: Completed transfers, chronological.
        self.log: list[TransferRecord] = []

    def add_site(self, site: StorageSite) -> None:
        self.sites[site.name] = site

    def transfer(self, file: File, src: str, dst: str):
        """Process generator: replicate ``file`` from ``src`` to ``dst``.

        No-op (still yields once) when the file is already at ``dst``.
        Raises ``KeyError`` for unknown sites and ``ValueError`` when the
        source holds no replica.
        """
        if src not in self.sites:
            raise KeyError(f"Unknown source site {src!r}")
        if dst not in self.sites:
            raise KeyError(f"Unknown destination site {dst!r}")
        if file.name not in self.catalog:
            self.catalog.register(file, src)
        if not self.catalog.present_at(file.name, src):
            raise ValueError(f"{file.name!r} has no replica at {src!r}")
        if self.catalog.present_at(file.name, dst):
            yield self.env.timeout(0)
            return

        t_start = self.env.now
        span = self.env.tracer.start(
            file.name,
            category="data.transfer",
            component="transfer",
            tags={"src": src, "dst": dst, "bytes": file.size_bytes},
        )
        with self._slots.request() as slot:
            yield slot
            span.event("slot_acquired")
            yield self.env.process(self.sites[src].read(file.size_bytes))
            yield self.env.process(self.sites[dst].write(file.size_bytes))
        span.finish()
        self.catalog.add_replica(file.name, dst)
        self.log.append(
            TransferRecord(
                file_name=file.name,
                size_bytes=file.size_bytes,
                src=src,
                dst=dst,
                t_start=t_start,
                t_end=self.env.now,
            )
        )

    def stage_in(self, files: list[File], dst: str, prefer: Optional[str] = None):
        """Process generator: ensure every file has a replica at ``dst``.

        Source selection: ``prefer`` if it holds the file, else the
        lexicographically first replica site (deterministic).
        """
        for f in files:
            if self.catalog.present_at(f.name, dst):
                continue
            replicas = sorted(self.catalog.replicas(f.name))
            if not replicas:
                raise ValueError(f"{f.name!r} has no replicas anywhere")
            src = prefer if prefer in replicas else replicas[0]
            yield self.env.process(self.transfer(f, src, dst))
        yield self.env.timeout(0)

    def total_bytes_moved(self) -> int:
        return sum(r.size_bytes for r in self.log)
