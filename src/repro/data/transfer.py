"""Managed inter-site transfers (the Globus role in JAWS, §6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.simkernel import Environment, Resource
from repro.data.files import File, FileCatalog
from repro.data.storage import StorageSite


@dataclass(frozen=True)
class TransferRecord:
    """Provenance record of one completed transfer."""

    file_name: str
    size_bytes: int
    src: str
    dst: str
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def effective_mbps(self) -> float:
        return self.size_bytes / 1e6 / self.duration if self.duration > 0 else float("inf")


class TransferError(RuntimeError):
    """A transfer died mid-flight (WAN flap, endpoint restart).

    Marked ``transient`` so :func:`repro.resilience.classify_failure`
    sends it down the retry path rather than the abort path.
    """

    transient = True

    def __init__(self, file_name: str, src: str, dst: str,
                 reason: str = "transfer-fault"):
        super().__init__(
            f"transfer of {file_name!r} {src}->{dst} failed: {reason}"
        )
        self.file_name = file_name
        self.src = src
        self.dst = dst
        self.reason = reason


class TransferFaults:
    """Schedulable gray failures on the transfer fabric.

    - ``degraded=[(start, duration, factor), ...]`` — wall-clock windows
      in which every in-window transfer takes ``factor`` times longer
      (a congested or de-prioritised WAN link).
    - ``fail_transfers={2, 5}`` — exact transfer indices (submission
      order, 0-based) that die with :class:`TransferError`.
    - ``fail_rate=0.05`` — each transfer independently dies with this
      probability, drawn from the seeded generator.

    Deterministic by construction: same schedule + seed → same faults.
    """

    def __init__(
        self,
        env: Environment,
        degraded: Sequence[tuple] = (),
        fail_transfers: Sequence[int] = (),
        fail_rate: float = 0.0,
        fail_after_s: float = 5.0,
        seed: int = 0,
    ):
        if not 0.0 <= fail_rate < 1.0:
            raise ValueError("fail_rate must be in [0, 1)")
        if fail_after_s < 0:
            raise ValueError("fail_after_s must be non-negative")
        for window in degraded:
            if len(window) != 3:
                raise ValueError(
                    f"degraded window {window!r} must be (start, duration, factor)"
                )
            start, duration, factor = window
            if start < 0 or duration <= 0:
                raise ValueError(f"bad degraded window {window!r}")
            if factor <= 1.0:
                raise ValueError(
                    f"degradation factor must exceed 1.0, got {factor}"
                )
        for idx in fail_transfers:
            if idx < 0:
                raise ValueError(f"bad transfer index {idx}")
        self.env = env
        self.degraded = [tuple(w) for w in degraded]
        self.fail_transfers = set(fail_transfers)
        self.fail_rate = fail_rate
        #: Seconds a doomed transfer burns before erroring out.
        self.fail_after_s = fail_after_s
        self.rng = np.random.default_rng(seed)
        self._index = 0
        #: Count of injected failures (observability input).
        self.injected_failures = 0

    def slowdown_at(self, t: float) -> float:
        """Combined degradation factor at time ``t`` (1.0 = healthy)."""
        factor = 1.0
        for start, duration, window_factor in self.degraded:
            if start <= t < start + duration:
                factor *= window_factor
        return factor

    def take_failure(self) -> bool:
        """Whether the next transfer (by submission order) should die."""
        idx = self._index
        self._index += 1
        doomed = idx in self.fail_transfers or (
            self.fail_rate > 0.0 and self.rng.random() < self.fail_rate
        )
        if doomed:
            self.injected_failures += 1
        return doomed


class TransferService:
    """Moves files between storage sites, updating the catalog.

    Mirrors the Globus model JAWS relies on: a managed service with a
    bounded number of concurrent transfer jobs; each transfer pays both
    the source's egress and the destination's ingress costs (sequential
    read-then-write approximation of a pipelined stream: the slower of
    the two dominates, plus one latency each — a deliberate,
    conservative simplification).

    The catalog is updated *after* the bytes land, so readers polling
    :meth:`FileCatalog.present_at` see consistent state.
    """

    def __init__(
        self,
        env: Environment,
        catalog: FileCatalog,
        sites: dict[str, StorageSite],
        max_concurrent: int = 16,
        faults: Optional[TransferFaults] = None,
    ):
        self.env = env
        self.catalog = catalog
        self.sites = dict(sites)
        self._slots = Resource(env, capacity=max_concurrent)
        #: Optional gray-failure model; ``None`` = a perfect fabric.
        self.faults = faults
        #: Completed transfers, chronological.
        self.log: list[TransferRecord] = []
        #: Failed transfer attempts ``(time, file_name, src, dst)``.
        self.failed: list[tuple] = []

    def add_site(self, site: StorageSite) -> None:
        self.sites[site.name] = site

    def transfer(self, file: File, src: str, dst: str):
        """Process generator: replicate ``file`` from ``src`` to ``dst``.

        No-op (still yields once) when the file is already at ``dst``.
        Raises ``KeyError`` for unknown sites and ``ValueError`` when the
        source holds no replica.
        """
        if src not in self.sites:
            raise KeyError(f"Unknown source site {src!r}")
        if dst not in self.sites:
            raise KeyError(f"Unknown destination site {dst!r}")
        if file.name not in self.catalog:
            self.catalog.register(file, src)
        if not self.catalog.present_at(file.name, src):
            raise ValueError(f"{file.name!r} has no replica at {src!r}")
        if self.catalog.present_at(file.name, dst):
            yield self.env.timeout(0)
            return

        t_start = self.env.now
        span = self.env.tracer.start(
            file.name,
            category="data.transfer",
            component="transfer",
            tags={"src": src, "dst": dst, "bytes": file.size_bytes},
        )
        with self._slots.request() as slot:
            yield slot
            span.event("slot_acquired")
            if self.faults is not None and self.faults.take_failure():
                if self.faults.fail_after_s > 0:
                    yield self.env.timeout(self.faults.fail_after_s)
                self.failed.append((self.env.now, file.name, src, dst))
                span.tag(state="failed").finish()
                raise TransferError(file.name, src, dst)
            t_moving = self.env.now
            yield self.env.process(self.sites[src].read(file.size_bytes))
            yield self.env.process(self.sites[dst].write(file.size_bytes))
            if self.faults is not None:
                # Degraded-bandwidth window: stretch the transfer by the
                # factor in force when the bytes started moving.
                factor = self.faults.slowdown_at(t_moving)
                if factor > 1.0:
                    yield self.env.timeout(
                        (self.env.now - t_moving) * (factor - 1.0)
                    )
        span.finish()
        self.catalog.add_replica(file.name, dst)
        self.log.append(
            TransferRecord(
                file_name=file.name,
                size_bytes=file.size_bytes,
                src=src,
                dst=dst,
                t_start=t_start,
                t_end=self.env.now,
            )
        )

    def transfer_with_retry(self, file: File, src: str, dst: str, policy):
        """Process generator: :meth:`transfer` with policy-driven retry.

        Retries :class:`TransferError` per the
        :class:`~repro.resilience.RetryPolicy` (it classifies as
        transient); exhausting the budget re-raises the last error.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                yield self.env.process(self.transfer(file, src, dst))
                return
            except TransferError as exc:
                if not policy.should_retry(attempts, exc):
                    raise
                delay = policy.backoff_s(attempts, key=file.name)
                if delay > 0:
                    yield self.env.timeout(delay)

    def stage_in(self, files: list[File], dst: str, prefer: Optional[str] = None):
        """Process generator: ensure every file has a replica at ``dst``.

        Source selection: ``prefer`` if it holds the file, else the
        lexicographically first replica site (deterministic).
        """
        for f in files:
            if self.catalog.present_at(f.name, dst):
                continue
            replicas = sorted(self.catalog.replicas(f.name))
            if not replicas:
                raise ValueError(f"{f.name!r} has no replicas anywhere")
            src = prefer if prefer in replicas else replicas[0]
            yield self.env.process(self.transfer(f, src, dst))
        yield self.env.timeout(0)

    def total_bytes_moved(self) -> int:
        return sum(r.size_bytes for r in self.log)
