"""Simulated data layer: files, storage sites, and transfers.

The paper's systems move a lot of bytes: the Transcriptomics Atlas
pulls 8.6 TB of SRA files from NCBI/S3 (§5), JAWS moves inputs between
DOE sites with Globus (§6), and CWS scheduling strategies rank tasks by
input file size (§3).  This package models that world:

- :class:`File` / :class:`FileCatalog` — logical files with sizes and
  replica locations.
- :class:`StorageSite` — a named endpoint with ingress/egress bandwidth
  and per-operation latency (an S3 bucket, a scratch filesystem, an
  NCBI mirror).
- :class:`TransferService` — Globus-like managed transfers between
  sites with fair bandwidth sharing across concurrent streams.

All byte counts are plain integers; all durations derive from the
bandwidth model so experiments are deterministic.
"""

from repro.data.files import File, FileCatalog
from repro.data.storage import StorageSite, StorageError
from repro.data.transfer import (
    TransferError,
    TransferFaults,
    TransferRecord,
    TransferService,
)

__all__ = [
    "File",
    "FileCatalog",
    "StorageError",
    "StorageSite",
    "TransferError",
    "TransferFaults",
    "TransferRecord",
    "TransferService",
]

#: Convenience byte-size constants.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000
