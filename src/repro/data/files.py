"""Logical files and the catalog tracking their replicas."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional


@dataclass(frozen=True)
class File:
    """A logical file: name + size + arbitrary metadata.

    Files are immutable value objects; *where* a file lives is tracked
    by :class:`FileCatalog` (replica sets), matching how workflow
    systems separate logical data from physical location.
    """

    name: str
    size_bytes: int
    metadata: tuple = ()

    def __post_init__(self):
        if not self.name:
            raise ValueError("File name must be non-empty")
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")

    @property
    def size_gb(self) -> float:
        return self.size_bytes / 1e9

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 1e6

    def with_suffix(self, suffix: str, size_bytes: Optional[int] = None) -> "File":
        """Derive an output file name from this one (e.g. ``.fastq``)."""
        base = self.name.rsplit(".", 1)[0]
        return File(base + suffix, self.size_bytes if size_bytes is None else size_bytes)

    def __repr__(self) -> str:
        return f"File({self.name!r}, {self.size_bytes:,}B)"


class FileCatalog:
    """Maps logical files to the storage sites holding replicas.

    The catalog is the source of truth workflow engines consult to
    decide whether an input must be staged (JAWS, §6) and what the
    total input size of a task is (CWS ``filesize`` strategy, §3).
    """

    def __init__(self):
        self._files: Dict[str, File] = {}
        self._replicas: Dict[str, set] = {}

    def register(self, file: File, site: Optional[str] = None) -> File:
        """Add a file (idempotent if identical) and optionally a replica."""
        existing = self._files.get(file.name)
        if existing is not None and existing != file:
            raise ValueError(
                f"Conflicting registration for {file.name!r}: "
                f"{existing.size_bytes} vs {file.size_bytes} bytes"
            )
        self._files[file.name] = file
        self._replicas.setdefault(file.name, set())
        if site is not None:
            self._replicas[file.name].add(site)
        return file

    def add_replica(self, name: str, site: str) -> None:
        if name not in self._files:
            raise KeyError(f"Unknown file {name!r}")
        self._replicas[name].add(site)

    def drop_replica(self, name: str, site: str) -> None:
        self._replicas.get(name, set()).discard(site)

    def lookup(self, name: str) -> File:
        return self._files[name]

    def __contains__(self, name: str) -> bool:
        return name in self._files

    def __len__(self) -> int:
        return len(self._files)

    def replicas(self, name: str) -> frozenset:
        """Sites currently holding the file."""
        return frozenset(self._replicas.get(name, ()))

    def present_at(self, name: str, site: str) -> bool:
        return site in self._replicas.get(name, ())

    def total_size(self, names: Iterable[str]) -> int:
        """Sum of sizes for a set of logical names (task input sizing)."""
        return sum(self._files[n].size_bytes for n in names)

    def files_at(self, site: str) -> list:
        """All files with a replica at ``site``."""
        return [
            self._files[name]
            for name, sites in self._replicas.items()
            if site in sites
        ]
