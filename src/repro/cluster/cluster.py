"""Cluster: a named collection of heterogeneous nodes."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.simkernel import Environment, UtilizationTracker
from repro.cluster.node import Node, NodeSpec


class ClusterCapacityError(RuntimeError):
    """A request can never be satisfied by the cluster (even when empty)."""


class Cluster:
    """A heterogeneous pool of nodes bound to a simulation environment.

    Build clusters from ``(spec, count)`` pools::

        cluster = Cluster(env, name="testbed", pools=[
            (NodeSpec("a1", cores=8, memory_gb=32, speed=1.0), 2),
            (NodeSpec("n1", cores=16, memory_gb=64, speed=1.6), 4),
        ])

    The cluster records core/GPU occupancy over time via
    :class:`UtilizationTracker` so experiments can report Fig-4-style
    utilization numbers without extra plumbing.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "cluster",
        pools: Optional[Sequence[tuple[NodeSpec, int]]] = None,
    ):
        self.env = env
        self.name = name
        self.nodes: list[Node] = []
        self._by_id: dict[str, Node] = {}
        if pools:
            for spec, count in pools:
                self.add_pool(spec, count)
        self._core_tracker: Optional[UtilizationTracker] = None
        self._gpu_tracker: Optional[UtilizationTracker] = None

    # -- construction -------------------------------------------------------

    def add_pool(self, spec: NodeSpec, count: int) -> list[Node]:
        """Append ``count`` identical nodes of ``spec``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        created = []
        start = len([n for n in self.nodes if n.spec.name == spec.name])
        for i in range(count):
            node = Node(f"{spec.name}-{start + i:05d}", spec)
            self.nodes.append(node)
            self._by_id[node.id] = node
            created.append(node)
        return created

    def enable_tracking(self) -> None:
        """Start recording cluster-wide core/GPU busy time.

        Call after all pools are added and before work starts.
        """
        self._core_tracker = UtilizationTracker(
            capacity=self.total_cores, name=f"{self.name}.cores", t0=self.env.now
        )
        if self.total_gpus:
            self._gpu_tracker = UtilizationTracker(
                capacity=self.total_gpus, name=f"{self.name}.gpus", t0=self.env.now
            )
        # Adopt the trackers into the trace's metrics registry (no-op
        # when tracing is disabled) so exported traces carry the same
        # occupancy series core_utilization() reports — one recorder,
        # two views.
        registry = self.env.tracer.metrics
        registry.register(self._core_tracker, component=self.name)
        if self._gpu_tracker is not None:
            registry.register(self._gpu_tracker, component=self.name)

    # -- lookup & aggregate capacity ------------------------------------------

    def node(self, node_id: str) -> Node:
        return self._by_id[node_id]

    @property
    def up_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.is_up]

    @property
    def total_cores(self) -> int:
        return sum(n.spec.cores for n in self.nodes)

    @property
    def total_gpus(self) -> int:
        return sum(n.spec.gpus for n in self.nodes)

    @property
    def total_memory_gb(self) -> float:
        return sum(n.spec.memory_gb for n in self.nodes)

    @property
    def free_cores(self) -> int:
        return sum(n.free_cores for n in self.up_nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- allocation helpers ------------------------------------------------------

    def find_nodes(
        self,
        cores: int = 0,
        gpus: int = 0,
        memory_gb: float = 0.0,
        count: int = 1,
        predicate: Optional[Callable[[Node], bool]] = None,
    ) -> Optional[list[Node]]:
        """First-fit search for ``count`` up-nodes each fitting a request.

        Returns ``None`` when not currently satisfiable.  Raises
        :class:`ClusterCapacityError` when no subset of the cluster's
        nodes could *ever* satisfy it (so callers don't wait forever).
        """
        eligible_specs = [
            n
            for n in self.nodes
            if n.spec.cores >= cores
            and n.spec.gpus >= gpus
            and n.spec.memory_gb >= memory_gb - 1e-9
            and (predicate is None or predicate(n))
        ]
        if len(eligible_specs) < count:
            raise ClusterCapacityError(
                f"{self.name}: request (count={count}, cores={cores}, "
                f"gpus={gpus}, mem={memory_gb}GiB) exceeds cluster capacity"
            )
        found = []
        for node in self.nodes:
            if predicate is not None and not predicate(node):
                continue
            if node.fits(cores, gpus, memory_gb):
                found.append(node)
                if len(found) == count:
                    return found
        return None

    def track_acquire(self, cores: int = 0, gpus: int = 0) -> None:
        """Record resources going busy (called by resource managers)."""
        if self._core_tracker and cores:
            self._core_tracker.acquire(self.env.now, cores)
        if self._gpu_tracker and gpus:
            self._gpu_tracker.acquire(self.env.now, gpus)

    def track_release(self, cores: int = 0, gpus: int = 0) -> None:
        """Record resources going free (called by resource managers)."""
        if self._core_tracker and cores:
            self._core_tracker.release(self.env.now, cores)
        if self._gpu_tracker and gpus:
            self._gpu_tracker.release(self.env.now, gpus)

    def core_utilization(self, t_start=None, t_end=None) -> float:
        """Time-averaged fraction of cluster cores in use."""
        if self._core_tracker is None:
            raise RuntimeError("enable_tracking() was never called")
        return self._core_tracker.utilization(t_start, t_end)

    def gpu_utilization(self, t_start=None, t_end=None) -> float:
        """Time-averaged fraction of cluster GPUs in use."""
        if self._gpu_tracker is None:
            raise RuntimeError("no GPUs tracked")
        return self._gpu_tracker.utilization(t_start, t_end)

    # -- heterogeneity metrics ------------------------------------------------------

    def speed_range(self) -> tuple[float, float]:
        """(slowest, fastest) node speed factors — heterogeneity spread."""
        speeds = [n.spec.speed for n in self.nodes]
        return min(speeds), max(speeds)

    def __repr__(self) -> str:
        kinds = sorted({n.spec.name for n in self.nodes})
        return (
            f"<Cluster {self.name}: {len(self.nodes)} nodes "
            f"({', '.join(kinds)}), {self.total_cores} cores, "
            f"{self.total_gpus} gpus>"
        )
