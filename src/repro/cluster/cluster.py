"""Cluster: a named collection of heterogeneous nodes."""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Callable, Iterator, Optional, Sequence

from repro.sanitizer import hooks
from repro.simkernel import Environment, UtilizationTracker, register_ckpt_probe
from repro.cluster.node import Node, NodeSpec


class ClusterCapacityError(RuntimeError):
    """A request can never be satisfied by the cluster (even when empty)."""


class FreeNodePool:
    """Incremental index of whole-node-idle nodes, bucketed by spec class.

    Tracks every node that is UP with zero allocations — the "free"
    predicate the batch scheduler's whole-node grants use — by
    subscribing to node idle transitions, so membership updates ride
    along with ``allocate``/``release``/``fail``/``recover`` instead of
    being recomputed by scanning the cluster on every scheduling pass.

    Each spec class keeps its free members as a bisect-sorted list of
    *global insertion indices*; a query merges the buckets eligible for
    a request with :func:`heapq.merge`, which reproduces the original
    linear scan over ``cluster.nodes`` exactly (pools of the same or
    different specs may be interleaved across ``add_pool`` calls, so
    per-bucket order alone would not be enough).

    Maintenance is *batched*: a node turning free is recorded in O(1)
    (set insert + pending append) and the sorted buckets are only
    repaired in a single :meth:`_flush` step on the next query.  N
    same-instant job completions therefore cost one maintenance pass,
    not N bucket insertions.  This is exact because every read of the
    buckets (``iter_matching``/``first_fit``) flushes first, and
    ``__len__`` reads ``_free_ids``, which is always current.

    :attr:`version` counts capacity *gains* — a node turning free,
    recovering, or registering.  It never moves on a loss, so a
    scheduler that observed "no fit for class C at version v" may skip
    re-scanning C until the version changes: free capacity only
    shrinks in between, and shrinking cannot create a fit.
    """

    def __init__(self) -> None:
        self._node_at: list[Node] = []  # global insertion index -> node
        self._index: dict[str, int] = {}  # node.id -> global index
        self._buckets: dict[NodeSpec, list[int]] = {}  # spec -> sorted free
        self._free_ids: set[int] = set()
        self._eligible_cache: dict[tuple, tuple[list[int], ...]] = {}
        self._pending: list[int] = []  # frees awaiting bucket insertion
        self._pending_set: set[int] = set()
        #: Monotone count of capacity gains (free/recover/register);
        #: invalidation key for the schedulers' negative-fit memos.
        self.version = 0

    def __len__(self) -> int:
        """Number of currently free (idle, up) nodes."""
        return len(self._free_ids)

    def register(self, node: Node) -> None:
        """Start tracking ``node`` (called once, at cluster add time)."""
        idx = len(self._node_at)
        self._node_at.append(node)
        self._index[node.id] = idx
        if node.spec not in self._buckets:
            self._buckets[node.spec] = []
            self._eligible_cache.clear()  # a new spec class may match
        if node.is_up and not node.allocations:
            self._free_ids.add(idx)
            self._buckets[node.spec].append(idx)  # idx is the max so far
            self.version += 1
        node._idle_watchers.append(self._on_idle_changed)

    def _on_idle_changed(self, node: Node, idle: bool) -> None:
        if hooks.ACTIVE is not None:
            # simsan: free-pool membership is per-node state; two batch
            # units flipping the same node the same way is idempotent,
            # opposite ways is order-sensitive.
            hooks.ACTIVE.record(self, node.id, "w", value=idle)
        idx = self._index[node.id]
        if idle:
            if idx not in self._free_ids:
                self._free_ids.add(idx)
                self.version += 1
                if idx not in self._pending_set:
                    self._pending.append(idx)
                    self._pending_set.add(idx)
        elif idx in self._free_ids:
            self._free_ids.remove(idx)
            if idx in self._pending_set:
                # Never reached a bucket; drop it from the deferred
                # batch instead (the stale list entry is skipped at
                # flush time because it left the pending set).
                self._pending_set.remove(idx)
            else:
                bucket = self._buckets[node.spec]
                del bucket[bisect_left(bucket, idx)]

    def _flush(self) -> None:
        """Apply deferred frees to the sorted buckets in one batch."""
        pending_set = self._pending_set
        if not pending_set:
            if self._pending:
                self._pending.clear()
            return
        node_at = self._node_at
        by_spec: dict[NodeSpec, list[int]] = {}
        for idx in self._pending:
            # A stale entry (went busy again, or a duplicate append) is
            # no longer in the set; the first live occurrence wins.
            if idx in pending_set:
                pending_set.remove(idx)
                by_spec.setdefault(node_at[idx].spec, []).append(idx)
        self._pending.clear()
        for spec, indices in by_spec.items():
            bucket = self._buckets[spec]
            if len(indices) == 1:
                insort(bucket, indices[0])
            else:
                bucket.extend(indices)
                bucket.sort()

    def _eligible(
        self, cores: int, gpus: int, memory_gb: float
    ) -> tuple[list[int], ...]:
        key = (cores, gpus, memory_gb)
        buckets = self._eligible_cache.get(key)
        if buckets is None:
            buckets = tuple(
                bucket
                for spec, bucket in self._buckets.items()
                if spec.cores >= cores
                and spec.gpus >= gpus
                and spec.memory_gb >= memory_gb - 1e-9
            )
            self._eligible_cache[key] = buckets
        return buckets

    def iter_matching(
        self, cores: int, gpus: int, memory_gb: float
    ) -> Iterator[Node]:
        """Free nodes whose spec satisfies the per-node request, in
        cluster insertion order.

        Not a generator: deferred maintenance is flushed at *call*
        time, so the returned iterator reflects the pool as of this
        call even if the caller holds it across an inspection.
        """
        self._flush()
        buckets = self._eligible(cores, gpus, memory_gb)
        if not buckets:
            return iter(())
        indices = buckets[0] if len(buckets) == 1 else heapq.merge(*buckets)
        return map(self._node_at.__getitem__, indices)

    def first_fit(
        self,
        cores: int,
        gpus: int,
        memory_gb: float,
        count: int,
        exclude=(),
    ) -> Optional[list[Node]]:
        """First ``count`` matching free nodes in insertion order, or
        ``None`` if fewer are free (same contract as the scan-based
        ``_free_nodes_for`` this replaces)."""
        found = []
        for node in self.iter_matching(cores, gpus, memory_gb):
            if node in exclude:
                continue
            found.append(node)
            if len(found) == count:
                return found
        return None


class Cluster:
    """A heterogeneous pool of nodes bound to a simulation environment.

    Build clusters from ``(spec, count)`` pools::

        cluster = Cluster(env, name="testbed", pools=[
            (NodeSpec("a1", cores=8, memory_gb=32, speed=1.0), 2),
            (NodeSpec("n1", cores=16, memory_gb=64, speed=1.6), 4),
        ])

    The cluster records core/GPU occupancy over time via
    :class:`UtilizationTracker` so experiments can report Fig-4-style
    utilization numbers without extra plumbing.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "cluster",
        pools: Optional[Sequence[tuple[NodeSpec, int]]] = None,
    ):
        self.env = env
        self.name = name
        self.nodes: list[Node] = []
        self._by_id: dict[str, Node] = {}
        #: Incremental whole-node-idle index used by the batch scheduler.
        self.free_pool = FreeNodePool()
        if pools:
            for spec, count in pools:
                self.add_pool(spec, count)
        self._core_tracker: Optional[UtilizationTracker] = None
        self._gpu_tracker: Optional[UtilizationTracker] = None
        register_ckpt_probe(env, f"cluster.{name}", self.ckpt_fingerprint)

    def ckpt_fingerprint(self) -> dict:
        """Semantic occupancy state for checkpoint verification.

        Node *identities* are per-cluster deterministic (spec-derived
        ids), so including the down-node set is safe; the free pool is
        summarized by its length and version (the sorted buckets are a
        rebuildable index, not state).
        """
        return {
            "nodes": len(self.nodes),
            "down": sorted(n.id for n in self.nodes if not n.is_up),
            "allocations": sum(len(n.allocations) for n in self.nodes),
            "free": len(self.free_pool),
            "pool_version": self.free_pool.version,
        }

    # -- construction -------------------------------------------------------

    def add_pool(self, spec: NodeSpec, count: int) -> list[Node]:
        """Append ``count`` identical nodes of ``spec``."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        created = []
        start = len([n for n in self.nodes if n.spec.name == spec.name])
        for i in range(count):
            node = Node(f"{spec.name}-{start + i:05d}", spec)
            self.nodes.append(node)
            self._by_id[node.id] = node
            self.free_pool.register(node)
            created.append(node)
        return created

    def enable_tracking(self) -> None:
        """Start recording cluster-wide core/GPU busy time.

        Call after all pools are added and before work starts.
        """
        self._core_tracker = UtilizationTracker(
            capacity=self.total_cores, name=f"{self.name}.cores", t0=self.env.now
        )
        if self.total_gpus:
            self._gpu_tracker = UtilizationTracker(
                capacity=self.total_gpus, name=f"{self.name}.gpus", t0=self.env.now
            )
        # Adopt the trackers into the trace's metrics registry (no-op
        # when tracing is disabled) so exported traces carry the same
        # occupancy series core_utilization() reports — one recorder,
        # two views.
        registry = self.env.tracer.metrics
        registry.register(self._core_tracker, component=self.name)
        if self._gpu_tracker is not None:
            registry.register(self._gpu_tracker, component=self.name)

    # -- lookup & aggregate capacity ------------------------------------------

    def node(self, node_id: str) -> Node:
        return self._by_id[node_id]

    @property
    def up_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.is_up]

    @property
    def total_cores(self) -> int:
        return sum(n.spec.cores for n in self.nodes)

    @property
    def total_gpus(self) -> int:
        return sum(n.spec.gpus for n in self.nodes)

    @property
    def total_memory_gb(self) -> float:
        return sum(n.spec.memory_gb for n in self.nodes)

    @property
    def free_cores(self) -> int:
        return sum(n.free_cores for n in self.up_nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- allocation helpers ------------------------------------------------------

    def find_nodes(
        self,
        cores: int = 0,
        gpus: int = 0,
        memory_gb: float = 0.0,
        count: int = 1,
        predicate: Optional[Callable[[Node], bool]] = None,
    ) -> Optional[list[Node]]:
        """First-fit search for ``count`` up-nodes each fitting a request.

        Returns ``None`` when not currently satisfiable.  Raises
        :class:`ClusterCapacityError` when no subset of the cluster's
        nodes could *ever* satisfy it (so callers don't wait forever).
        """
        eligible_specs = [
            n
            for n in self.nodes
            if n.spec.cores >= cores
            and n.spec.gpus >= gpus
            and n.spec.memory_gb >= memory_gb - 1e-9
            and (predicate is None or predicate(n))
        ]
        if len(eligible_specs) < count:
            raise ClusterCapacityError(
                f"{self.name}: request (count={count}, cores={cores}, "
                f"gpus={gpus}, mem={memory_gb}GiB) exceeds cluster capacity"
            )
        found = []
        for node in self.nodes:
            if predicate is not None and not predicate(node):
                continue
            if node.fits(cores, gpus, memory_gb):
                found.append(node)
                if len(found) == count:
                    return found
        return None

    def track_acquire(self, cores: int = 0, gpus: int = 0) -> None:
        """Record resources going busy (called by resource managers)."""
        if self._core_tracker and cores:
            self._core_tracker.acquire(self.env.now, cores)
        if self._gpu_tracker and gpus:
            self._gpu_tracker.acquire(self.env.now, gpus)

    def track_release(self, cores: int = 0, gpus: int = 0) -> None:
        """Record resources going free (called by resource managers)."""
        if self._core_tracker and cores:
            self._core_tracker.release(self.env.now, cores)
        if self._gpu_tracker and gpus:
            self._gpu_tracker.release(self.env.now, gpus)

    def core_utilization(self, t_start=None, t_end=None) -> float:
        """Time-averaged fraction of cluster cores in use."""
        if self._core_tracker is None:
            raise RuntimeError("enable_tracking() was never called")
        return self._core_tracker.utilization(t_start, t_end)

    def gpu_utilization(self, t_start=None, t_end=None) -> float:
        """Time-averaged fraction of cluster GPUs in use."""
        if self._gpu_tracker is None:
            raise RuntimeError("no GPUs tracked")
        return self._gpu_tracker.utilization(t_start, t_end)

    # -- heterogeneity metrics ------------------------------------------------------

    def speed_range(self) -> tuple[float, float]:
        """(slowest, fastest) node speed factors — heterogeneity spread."""
        speeds = [n.spec.speed for n in self.nodes]
        return min(speeds), max(speeds)

    def __repr__(self) -> str:
        kinds = sorted({n.spec.name for n in self.nodes})
        return (
            f"<Cluster {self.name}: {len(self.nodes)} nodes "
            f"({', '.join(kinds)}), {self.total_cores} cores, "
            f"{self.total_gpus} gpus>"
        )
