"""Heterogeneous cluster model.

Models the machines the paper's systems run on — from a 6-node
Kubernetes testbed (§3) to Frontier's 9408 nodes (§4) — as collections
of :class:`Node` objects with cores, GPUs, memory, and a relative
*speed factor* expressing hardware heterogeneity (the "hyper-
heterogeneous" in the paper's title).

Nodes are passive resource holders; scheduling policy lives in
:mod:`repro.rm`.  Failures are injected by :class:`FaultInjector`,
which flips nodes down/up and interrupts the registered occupant
processes — the mechanism behind the EnTK fault-tolerance
reproduction (E4).
"""

from repro.cluster.node import Allocation, Node, NodeSpec, NodeState
from repro.cluster.cluster import Cluster, ClusterCapacityError, FreeNodePool
from repro.cluster.faults import FaultInjector, GrayFault, NodeFailure

__all__ = [
    "Allocation",
    "Cluster",
    "ClusterCapacityError",
    "FaultInjector",
    "FreeNodePool",
    "GrayFault",
    "Node",
    "NodeFailure",
    "NodeSpec",
    "NodeState",
]
