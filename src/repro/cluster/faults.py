"""Fault injection: node crashes, recoveries, and gray failures.

The EnTK section of the paper (§4.3) reports that a single node failure
on Frontier killed eight tasks, all of which EnTK automatically
resubmitted.  :class:`FaultInjector` reproduces that scenario: it is a
kernel process that takes nodes down on a schedule (deterministic) or
stochastically (seeded RNG), interrupting whatever runs there, and
optionally brings them back after a downtime.

Beyond clean crashes it also injects the *gray* failures production
systems actually see — node slowdowns (``slowdowns=``): the node stays
up but its effective speed drops by a factor for a window, so work
placed there straggles instead of dying.  Degraded transfers and site
outages live with their substrates (:mod:`repro.data.transfer`,
:mod:`repro.jaws.service`); everything is seeded and schedulable.

Schedules are validated at construction time: unknown node ids and
times in the past raise :class:`ValueError` immediately instead of
killing the simulation obscurely from inside a kernel process mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.simkernel import Environment, register_ckpt_probe
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node


@dataclass(frozen=True)
class NodeFailure:
    """Record of one injected failure."""

    time: float
    node_id: str
    victims: int
    recovered_at: Optional[float] = None


@dataclass(frozen=True)
class GrayFault:
    """Record of one injected slowdown window."""

    time: float
    node_id: str
    factor: float
    until: Optional[float] = None  # None = degraded forever


class FaultInjector:
    """Injects node failures and gray faults into a cluster.

    Modes, combinable:

    - **Scheduled crashes**: ``schedule=[(time, node_id), ...]`` fails
      exactly those nodes at those times (used to reproduce E4's
      single-node failure deterministically).
    - **Stochastic crashes**: ``mtbf`` (mean time between failures
      across the whole cluster) draws exponential inter-failure times
      and uniform node choices from the seeded generator.
    - **Scheduled slowdowns**: ``slowdowns=[(time, node_id, factor,
      duration), ...]`` degrades a node's effective speed by ``factor``
      for ``duration`` seconds (``None`` = forever).  The node stays UP;
      already-running work is unaffected (the sim commits to a runtime
      at task start) but everything placed there afterwards straggles.

    Failed nodes recover after ``downtime`` simulated seconds (set
    ``downtime=None`` to keep them down forever).

    ``observe=True`` records ``fault.node`` / ``fault.slowdown`` spans
    and a ``<cluster>/nodes_down`` gauge into the environment's tracer.
    It defaults off so fault-injecting runs recorded before this layer
    existed keep byte-identical traces.
    """

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        schedule: Optional[Sequence[tuple[float, str]]] = None,
        mtbf: Optional[float] = None,
        downtime: Optional[float] = 600.0,
        rng: Optional[np.random.Generator] = None,
        slowdowns: Optional[Sequence[tuple]] = None,
        observe: bool = False,
    ):
        if mtbf is not None and mtbf <= 0:
            raise ValueError("mtbf must be positive")
        self.env = env
        self.cluster = cluster
        self.downtime = downtime
        self.observe = observe
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: Chronological log of injected failures.
        self.failures: list[NodeFailure] = []
        #: Chronological log of injected slowdowns.
        self.gray_faults: list[GrayFault] = []
        self._recovery_times: dict[str, float] = {}
        self._down_gauge = (
            env.tracer.metrics.gauge(
                "nodes_down", component=cluster.name, t0=env.now
            )
            if observe
            else None
        )
        for time, node_id in self._validated(schedule or (), arity=2):
            env.process(
                self._scheduled_failure(time, node_id),
                name=f"fault@{time}:{node_id}",
            )
        for entry in self._validated(slowdowns or (), arity=4):
            time, node_id, factor, duration = entry
            if factor <= 1.0:
                raise ValueError(
                    f"slowdown factor must exceed 1.0, got {factor}"
                )
            if duration is not None and duration <= 0:
                raise ValueError("slowdown duration must be positive (or None)")
            env.process(
                self._scheduled_slowdown(time, node_id, factor, duration),
                name=f"gray@{time}:{node_id}",
            )
        if mtbf is not None:
            env.process(self._stochastic_failures(mtbf), name="fault-injector")
        register_ckpt_probe(env, f"faults.{cluster.name}", self.ckpt_fingerprint)

    def ckpt_fingerprint(self) -> dict:
        """Injection history + RNG stream position for verification.

        The RNG stream *is* the remaining fault schedule in stochastic
        mode, so its bit-generator state (hashed — the raw 128-bit
        integers are not float-safe JSON) must agree between the
        recorded run and the resumed one at the same instant.
        """
        import hashlib
        import json as _json

        state = _json.dumps(
            self.rng.bit_generator.state, sort_keys=True, default=str
        )
        return {
            "failures": len(self.failures),
            "gray_faults": len(self.gray_faults),
            "pending_recoveries": sorted(self._recovery_times),
            "rng_sha": hashlib.sha256(state.encode()).hexdigest(),
        }

    def _validated(self, entries: Sequence, arity: int) -> list:
        """Constructor-time schedule validation: reject past times and
        unknown node ids before any kernel process exists."""
        out = []
        for entry in entries:
            if len(entry) != arity:
                raise ValueError(
                    f"schedule entry {entry!r} must have {arity} fields"
                )
            time, node_id = entry[0], entry[1]
            if time < self.env.now:
                raise ValueError(
                    f"failure time {time} is in the past (now={self.env.now})"
                )
            try:
                self.cluster.node(node_id)
            except KeyError:
                raise ValueError(
                    f"unknown node id {node_id!r} in fault schedule"
                ) from None
            out.append(tuple(entry))
        return out

    # -- crash injection -----------------------------------------------------

    def _scheduled_failure(self, time: float, node_id: str):
        yield self.env.timeout(time - self.env.now)
        self._fail_node(self.cluster.node(node_id))

    def _stochastic_failures(self, mtbf: float):
        while True:
            yield self.env.timeout(float(self.rng.exponential(mtbf)))
            candidates = self.cluster.up_nodes
            if not candidates:
                continue
            node = candidates[int(self.rng.integers(len(candidates)))]
            self._fail_node(node)

    def _fail_node(self, node: Node) -> None:
        if not node.is_up:
            return
        victims = node.fail()
        recovered_at = (
            self.env.now + self.downtime if self.downtime is not None else None
        )
        self.failures.append(
            NodeFailure(
                time=self.env.now,
                node_id=node.id,
                victims=len(victims),
                recovered_at=recovered_at,
            )
        )
        if self.observe:
            self.env.tracer.instant(
                "node-down",
                category="fault.node",
                component=self.cluster.name,
                tags={"node": node.id, "victims": len(victims)},
            )
            self._down_gauge.increment(self.env.now, +1)
        if self.downtime is not None:
            self.env.process(self._recover_later(node), name=f"recover:{node.id}")

    def _recover_later(self, node: Node):
        yield self.env.timeout(self.downtime)
        node.recover()
        if self.observe:
            self.env.tracer.instant(
                "node-up",
                category="fault.node",
                component=self.cluster.name,
                tags={"node": node.id},
            )
            self._down_gauge.increment(self.env.now, -1)

    # -- gray injection ------------------------------------------------------

    def _scheduled_slowdown(
        self, time: float, node_id: str, factor: float, duration: Optional[float]
    ):
        yield self.env.timeout(time - self.env.now)
        node = self.cluster.node(node_id)
        node.slowdown = factor
        until = self.env.now + duration if duration is not None else None
        self.gray_faults.append(
            GrayFault(time=self.env.now, node_id=node_id, factor=factor, until=until)
        )
        span = None
        if self.observe:
            span = self.env.tracer.start(
                node_id,
                category="fault.slowdown",
                component=self.cluster.name,
                tags={"factor": factor},
            )
        if duration is not None:
            yield self.env.timeout(duration)
            # Only lift our own degradation (a crash/recovery in the
            # window already reset the node to full speed).
            if node.slowdown == factor:
                node.slowdown = 1.0
        if span is not None:
            span.finish()

    # -- accounting ----------------------------------------------------------

    @property
    def failure_count(self) -> int:
        return len(self.failures)

    def total_victims(self) -> int:
        """Total processes interrupted across all failures."""
        return sum(f.victims for f in self.failures)
